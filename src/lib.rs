//! **fastlsa** — a reproduction of *"FastLSA: A Fast, Linear-Space,
//! Parallel and Sequential Algorithm for Sequence Alignment"* (Driga, Lu,
//! Schaeffer, Szafron, Charter, Parsons; ICPP 2003).
//!
//! This facade crate re-exports the whole workspace so downstream users
//! depend on one crate:
//!
//! * [`core`] ([`fastlsa_core`]) — FastLSA itself, sequential and parallel;
//! * [`fullmatrix`] — Needleman–Wunsch / Smith–Waterman / Gotoh baselines;
//! * [`hirschberg`] — the linear-space baseline;
//! * [`seq`] — alphabets, sequences, FASTA, synthetic workloads;
//! * [`scoring`] — substitution matrices and gap models;
//! * [`dp`] — the shared DP kernels, paths and metrics;
//! * [`wavefront`] — the wavefront scheduling substrate;
//! * [`cachesim`] — the cache-hierarchy simulator behind experiment E10;
//! * [`trace`] — the execution-trace recorder, analysis and exporters
//!   behind `flsa align --trace` / `flsa report`;
//! * [`metrics`] — the low-overhead counters/gauges/histograms behind
//!   `flsa align --metrics` / `--progress` (DESIGN.md §12);
//! * [`serve`] — the fault-tolerant alignment daemon behind `flsa serve`
//!   (admission control, deadlines, bounded retry, crash-safe spool;
//!   DESIGN.md §14).
//!
//! # Example
//!
//! ```
//! use fastlsa::prelude::*;
//!
//! let scheme = ScoringScheme::dna_default();
//! let a = Sequence::from_str("a", scheme.alphabet(), "ACGTACGTTACG").unwrap();
//! let b = Sequence::from_str("b", scheme.alphabet(), "ACGTCGTTAACG").unwrap();
//! let metrics = Metrics::new();
//! let result = fastlsa::align(&a, &b, &scheme, &metrics).unwrap();
//! assert_eq!(result.path.score(&a, &b, &scheme), result.score);
//! ```
//!
//! The `align*` entry points are fallible: they return
//! [`AlignError`] instead of panicking, degrade gracefully under a byte
//! budget ([`AlignOptions::budget_bytes`]), and honor cancellation
//! ([`CancelToken`]):
//!
//! ```
//! use fastlsa::prelude::*;
//! use std::time::Duration;
//!
//! let scheme = ScoringScheme::dna_default();
//! let a = Sequence::from_str("a", scheme.alphabet(), "ACGTACGTTACG").unwrap();
//! let b = Sequence::from_str("b", scheme.alphabet(), "ACGTCGTTAACG").unwrap();
//! let opts = AlignOptions {
//!     cancel: Some(CancelToken::with_deadline(Duration::ZERO)),
//!     ..AlignOptions::default()
//! };
//! let err = fastlsa::align_opts(
//!     &a, &b, &scheme, FastLsaConfig::default(), &opts, &Metrics::new(),
//! ).unwrap_err();
//! assert_eq!(err, AlignError::Cancelled);
//! ```
#![forbid(unsafe_code)]

pub use fastlsa_core as core;
pub use flsa_cachesim as cachesim;
pub use flsa_dp as dp;
pub use flsa_fullmatrix as fullmatrix;
pub use flsa_hirschberg as hirschberg;
pub use flsa_metrics as metrics;
pub use flsa_msa as msa;
pub use flsa_scoring as scoring;
pub use flsa_seq as seq;
pub use flsa_serve as serve;
pub use flsa_shard as shard;
pub use flsa_trace as trace;
pub use flsa_wavefront as wavefront;

pub use fastlsa_core::{
    align, align_batch, align_opts, align_traced, align_with, degradation_ladder, AlignError,
    AlignOptions, CancelToken, ConfigError, FastLsaConfig, FaultHooks, MemoryGovernor,
    ParallelConfig,
};

/// The names most programs need.
pub mod prelude {
    pub use crate::core::{
        AlignError, AlignOptions, CancelToken, ConfigError, FastLsaConfig, ParallelConfig,
    };
    pub use crate::dp::{AlignResult, Alignment, BatchJob, BatchKernel, Metrics, Move, Path};
    pub use crate::scoring::{GapModel, ScoringScheme, SubstitutionMatrix};
    pub use crate::seq::{fasta, generate, workload, Alphabet, Sequence};
}

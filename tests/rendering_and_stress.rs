//! Golden-output rendering checks and cross-crate stress tests.

use fastlsa::prelude::*;

#[test]
fn alignment_rendering_golden() {
    let scheme = ScoringScheme::paper_example();
    let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
    let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
    let metrics = Metrics::new();
    let r = fastlsa::align(&a, &b, &scheme, &metrics).unwrap();
    let al = Alignment::from_path(&a, &b, &r.path, &scheme);
    assert_eq!(format!("{al}"), "TLDKLLK-D\n* * |** *\nT-D-VLKAD\n");
}

#[test]
fn msa_rendering_golden() {
    let m = fastlsa::msa::Msa::new(
        vec!["seq1".into(), "s2".into()],
        vec!["AC-GT".into(), "ACCGT".into()],
    );
    assert_eq!(format!("{m}"), "seq1  AC-GT\ns2    ACCGT\n");
}

#[test]
fn fasta_fastq_interop() {
    // The same read parsed from both formats aligns identically.
    let scheme = ScoringScheme::dna_default();
    let fa = fastlsa::seq::fasta::parse_str(">r\nACGTACGT\n", scheme.alphabet()).unwrap();
    let fq =
        fastlsa::seq::fastq::parse_str("@r\nACGTACGT\n+\nIIIIIIII\n", scheme.alphabet()).unwrap();
    assert_eq!(fa[0].codes(), fq[0].seq.codes());
    let metrics = Metrics::new();
    let r = fastlsa::align(&fa[0], &fq[0].seq, &scheme, &metrics).unwrap();
    assert_eq!(r.score, 8 * 5);
}

#[test]
fn metrics_are_consistent_under_parallel_fills() {
    // Parallel runs must report exactly the same cell counts as
    // sequential (work is partitioned, not duplicated), with counters
    // bumped from many threads.
    let scheme = ScoringScheme::dna_default();
    let (a, b) = generate::homologous_pair("t", scheme.alphabet(), 2000, 0.8, 55).unwrap();
    let cfg = FastLsaConfig::new(8, 1 << 14);
    let m_seq = Metrics::new();
    fastlsa::align_with(&a, &b, &scheme, cfg, &m_seq).unwrap();
    let m_par = Metrics::new();
    fastlsa::align_with(&a, &b, &scheme, cfg.with_threads(4), &m_par).unwrap();
    assert_eq!(
        m_seq.snapshot().cells_computed,
        m_par.snapshot().cells_computed
    );
    assert_eq!(
        m_seq.snapshot().traceback_steps,
        m_par.snapshot().traceback_steps
    );
}

#[test]
fn repeated_runs_reuse_allocations_without_leaking_accounting() {
    // After every run the tracked byte count must return to zero (peak
    // persists). Exercised across algorithms and configs.
    let scheme = ScoringScheme::dna_default();
    let (a, b) = generate::homologous_pair("t", scheme.alphabet(), 400, 0.8, 66).unwrap();
    let metrics = Metrics::new();
    for k in [2usize, 4, 8] {
        fastlsa::align_with(&a, &b, &scheme, FastLsaConfig::new(k, 512), &metrics).unwrap();
        fastlsa::fullmatrix::needleman_wunsch(&a, &b, &scheme, &metrics);
        fastlsa::hirschberg::hirschberg(&a, &b, &scheme, &metrics);
    }
    // track_alloc guards all dropped: a fresh small allocation must set
    // current usage from zero, i.e. peak only moves if it exceeds the old
    // peak, and a tiny guard cannot.
    let peak_before = metrics.snapshot().peak_bytes;
    let _g = metrics.track_alloc(16);
    assert_eq!(metrics.snapshot().peak_bytes, peak_before);
}

#[test]
fn workload_statistics_validate_the_suite() {
    // The Table 3 stand-in argument requires realistic composition.
    use fastlsa::seq::stats::{gc_content, kmer_diversity, SeqStats};
    for spec in fastlsa::seq::workload::up_to(16_000) {
        let (a, _) = spec.generate();
        let st = SeqStats::of(&a);
        let min_entropy = match spec.kind {
            fastlsa::seq::workload::WorkloadKind::Dna => 1.95,
            fastlsa::seq::workload::WorkloadKind::Protein => 4.1,
        };
        assert!(
            st.entropy_bits > min_entropy,
            "{}: entropy {}",
            spec.name,
            st.entropy_bits
        );
        if spec.kind == fastlsa::seq::workload::WorkloadKind::Dna {
            let gc = gc_content(&a).unwrap();
            assert!((0.45..0.55).contains(&gc), "{}: gc {gc}", spec.name);
            // k = 10: the 4^10 k-mer space dwarfs the window count, so a
            // random sequence shows near-total diversity.
            assert!(kmer_diversity(&a, 10) > 0.8, "{}", spec.name);
        }
    }
}

#[test]
fn very_skewed_aspect_ratios() {
    // 1 x 10_000 and 10_000 x 1 shaped problems across every algorithm.
    let scheme = ScoringScheme::dna_default();
    let long = Sequence::from_str("l", scheme.alphabet(), &"ACGT".repeat(2500)).unwrap();
    let short = Sequence::from_str("s", scheme.alphabet(), "TACG").unwrap();
    let metrics = Metrics::new();
    let expect = fastlsa::fullmatrix::nw_score_only(&long, &short, &scheme, &metrics);
    for (x, y) in [(&long, &short), (&short, &long)] {
        assert_eq!(
            fastlsa::align(x, y, &scheme, &metrics).unwrap().score,
            expect
        );
        assert_eq!(
            fastlsa::hirschberg::hirschberg(x, y, &scheme, &metrics).score,
            expect
        );
        let cfg = FastLsaConfig::new(4, 64).with_threads(3);
        assert_eq!(
            fastlsa::align_with(x, y, &scheme, cfg, &metrics)
                .unwrap()
                .score,
            expect
        );
    }
}

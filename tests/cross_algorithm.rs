//! Property-based cross-algorithm agreement: the paper's algorithms
//! "produce exactly the same optimal alignment for a given scoring
//! function … differing only in the space and time required" (§2.1).

use fastlsa::prelude::*;
use proptest::prelude::*;

fn dna_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 0..max_len)
}

fn to_seq(codes: &[u8]) -> Sequence {
    Sequence::from_codes("s", &Alphabet::dna(), codes.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All four global aligners report one optimal score, and every
    /// reported path re-scores to it.
    #[test]
    fn scores_agree_across_algorithms(
        a in dna_seq(120),
        b in dna_seq(120),
        k in 2usize..9,
        base in 16usize..4000,
    ) {
        let scheme = ScoringScheme::dna_default();
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();

        let nw = fastlsa::fullmatrix::needleman_wunsch(&sa, &sb, &scheme, &metrics);
        let packed = fastlsa::fullmatrix::needleman_wunsch_packed(&sa, &sb, &scheme, &metrics);
        let hb = fastlsa::hirschberg::hirschberg(&sa, &sb, &scheme, &metrics);
        let fl = fastlsa::align_with(&sa, &sb, &scheme, FastLsaConfig::new(k, base), &metrics).unwrap();

        prop_assert_eq!(nw.score, packed.score);
        prop_assert_eq!(nw.score, hb.score);
        prop_assert_eq!(nw.score, fl.score);

        for r in [&nw, &packed, &hb, &fl] {
            prop_assert!(r.path.is_global(sa.len(), sb.len()));
            prop_assert_eq!(r.path.score(&sa, &sb, &scheme), nw.score);
        }
        // Traceback-based aligners share the canonical tie-break.
        prop_assert_eq!(&nw.path, &packed.path);
        prop_assert_eq!(&nw.path, &fl.path);
    }

    /// Parallel FastLSA is bit-identical to sequential FastLSA.
    #[test]
    fn parallel_equals_sequential(
        a in dna_seq(150),
        b in dna_seq(150),
        k in 2usize..7,
        threads in 2usize..5,
    ) {
        let scheme = ScoringScheme::dna_default();
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();
        let seq = fastlsa::align_with(&sa, &sb, &scheme, FastLsaConfig::new(k, 64), &metrics).unwrap();
        let par = fastlsa::align_with(
            &sa, &sb, &scheme,
            FastLsaConfig::new(k, 64).with_threads(threads),
            &metrics,
        ).unwrap();
        prop_assert_eq!(seq.score, par.score);
        prop_assert_eq!(seq.path, par.path);
    }

    /// Alignment score is symmetric for symmetric matrices.
    #[test]
    fn score_is_symmetric(a in dna_seq(80), b in dna_seq(80)) {
        let scheme = ScoringScheme::dna_default();
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();
        let ab = fastlsa::align(&sa, &sb, &scheme, &metrics).unwrap().score;
        let ba = fastlsa::align(&sb, &sa, &scheme, &metrics).unwrap().score;
        prop_assert_eq!(ab, ba);
    }

    /// Aligning a sequence against itself scores the diagonal sum and
    /// yields the all-diagonal path.
    #[test]
    fn self_alignment_is_identity(a in dna_seq(100)) {
        let scheme = ScoringScheme::dna_default();
        let sa = to_seq(&a);
        let metrics = Metrics::new();
        let r = fastlsa::align_with(&sa, &sa, &scheme, FastLsaConfig::new(3, 32), &metrics).unwrap();
        let expect: i64 = a.iter().map(|&c| scheme.sub(c, c) as i64).sum();
        prop_assert_eq!(r.score, expect);
        prop_assert!(r.path.moves().iter().all(|&m| m == Move::Diag));
    }

    /// Appending one residue changes the optimum by a bounded amount
    /// (Lipschitz property of the DP).
    #[test]
    fn appending_residue_changes_score_boundedly(a in dna_seq(60), b in dna_seq(60), extra in 0u8..4) {
        let scheme = ScoringScheme::dna_default();
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let mut b2 = b.clone();
        b2.push(extra);
        let sb2 = to_seq(&b2);
        let metrics = Metrics::new();
        let before = fastlsa::align(&sa, &sb, &scheme, &metrics).unwrap().score;
        let after = fastlsa::align(&sa, &sb2, &scheme, &metrics).unwrap().score;
        let max_gain = scheme.matrix().max_score() as i64 - scheme.gap().linear_penalty() as i64;
        prop_assert!(after >= before + scheme.gap().linear_penalty() as i64);
        prop_assert!(after <= before + max_gain);
    }

    /// The LCS scheme reduces every aligner to longest-common-subsequence.
    #[test]
    fn lcs_reduction_consistent(a in dna_seq(60), b in dna_seq(60)) {
        let scheme = ScoringScheme::lcs(Alphabet::dna());
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();
        let fl = fastlsa::align_with(&sa, &sb, &scheme, FastLsaConfig::new(2, 32), &metrics).unwrap();
        let hb = fastlsa::hirschberg::hirschberg(&sa, &sb, &scheme, &metrics);
        prop_assert_eq!(fl.score, hb.score);
        // LCS length is at most min(m, n).
        prop_assert!(fl.score <= a.len().min(b.len()) as i64);
    }
}

//! Integration test for the paper's worked example (Table 1, Figure 1):
//! every algorithm in the workspace must reproduce it exactly.

use fastlsa::prelude::*;

fn paper_pair() -> (Sequence, Sequence, ScoringScheme) {
    let scheme = ScoringScheme::paper_example();
    let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
    let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
    (a, b, scheme)
}

#[test]
fn every_algorithm_reports_82() {
    let (a, b, scheme) = paper_pair();
    let metrics = Metrics::new();
    assert_eq!(
        fastlsa::fullmatrix::needleman_wunsch(&a, &b, &scheme, &metrics).score,
        82
    );
    assert_eq!(
        fastlsa::fullmatrix::needleman_wunsch_packed(&a, &b, &scheme, &metrics).score,
        82
    );
    assert_eq!(
        fastlsa::hirschberg::hirschberg(&a, &b, &scheme, &metrics).score,
        82
    );
    for k in 2..=5 {
        for base in [16usize, 30, 1000] {
            let cfg = FastLsaConfig::new(k, base);
            assert_eq!(
                fastlsa::align_with(&a, &b, &scheme, cfg, &metrics)
                    .unwrap()
                    .score,
                82
            );
        }
    }
}

#[test]
fn figure_1_matrix_values() {
    // Figure 1 orientation: TDVLKAD down the side, TLDKLLKD across the top.
    let scheme = ScoringScheme::paper_example();
    let rows = Sequence::from_str("r", scheme.alphabet(), "TDVLKAD").unwrap();
    let cols = Sequence::from_str("c", scheme.alphabet(), "TLDKLLKD").unwrap();
    let metrics = Metrics::new();
    let bound = fastlsa::dp::Boundary::global(rows.len(), cols.len(), -10);
    let m = fastlsa::dp::kernel::fill_full(
        rows.codes(),
        cols.codes(),
        &bound.top,
        &bound.left,
        &scheme,
        &metrics,
    );
    // Values quoted in the paper's prose walk-through of Figure 1.
    assert_eq!(m.get(1, 1), 20, "[T,T]");
    assert_eq!(m.get(1, 2), 10, "[T,L]");
    assert_eq!(m.get(6, 7), 62, "[A,K]");
    assert_eq!(m.get(6, 8), 72, "[A,D]");
    assert_eq!(m.get(7, 7), 52, "[D,K]");
    assert_eq!(m.get(7, 8), 82, "bottom-right optimal score");
    // Margins: 0, -10, ..., -80 along the top; 0..-70 down the side.
    assert_eq!(m.get(0, 8), -80);
    assert_eq!(m.get(7, 0), -70);
}

#[test]
fn both_paper_alignments_have_five_identities() {
    // The intro: two ways of aligning with 5 identical letters; the
    // second (with L/V) is the optimal one at score 82, the first scores 70.
    let (a, b, scheme) = paper_pair();
    use Move::*;
    let first = Path::new(
        (0, 0),
        vec![Diag, Up, Diag, Diag, Diag, Up, Diag, Left, Diag],
    );
    let second = Path::new(
        (0, 0),
        vec![Diag, Up, Diag, Up, Diag, Diag, Diag, Left, Diag],
    );
    assert_eq!(first.score(&a, &b, &scheme), 70);
    assert_eq!(second.score(&a, &b, &scheme), 82);
    for p in [&first, &second] {
        let al = Alignment::from_path(&a, &b, p, &scheme);
        assert_eq!(al.markers.matches('*').count(), 5);
    }
}

#[test]
fn canonical_alignment_rendering_matches_paper() {
    let (a, b, scheme) = paper_pair();
    let metrics = Metrics::new();
    let r = fastlsa::align_with(&a, &b, &scheme, FastLsaConfig::new(2, 16), &metrics).unwrap();
    let al = Alignment::from_path(&a, &b, &r.path, &scheme);
    assert_eq!(al.aligned_a, "TLDKLLK-D");
    assert_eq!(al.aligned_b, "T-D-VLKAD");
}

#[test]
fn mdm_fragment_scores_match_table_1() {
    let scheme = ScoringScheme::paper_example();
    let m = scheme.matrix();
    assert_eq!(m.score_chars('A', 'A'), Some(16));
    assert_eq!(m.score_chars('L', 'V'), Some(12));
    assert_eq!(m.score_chars('K', 'L'), Some(0));
    assert_eq!(scheme.gap().linear_penalty(), -10);
}

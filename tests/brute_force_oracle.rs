//! Differential testing against an exhaustive oracle: for tiny inputs,
//! enumerate *every* possible alignment recursively (no dynamic
//! programming, no shared code with the implementations under test) and
//! confirm that every aligner finds the true optimum.

use fastlsa::prelude::*;
use proptest::prelude::*;

/// Exhaustive maximum alignment score of `a[i..]` vs `b[j..]`:
/// a direct transcription of the alignment definition, exponential on
/// purpose so it shares no structure with the DP implementations.
fn brute_force(a: &[u8], b: &[u8], scheme: &ScoringScheme) -> i64 {
    fn rec(a: &[u8], b: &[u8], scheme: &ScoringScheme, gap: i64) -> i64 {
        match (a, b) {
            ([], rest) => gap * rest.len() as i64,
            (rest, []) => gap * rest.len() as i64,
            _ => {
                let diag = scheme.sub(a[0], b[0]) as i64 + rec(&a[1..], &b[1..], scheme, gap);
                let up = gap + rec(&a[1..], b, scheme, gap);
                let left = gap + rec(a, &b[1..], scheme, gap);
                diag.max(up).max(left)
            }
        }
    }
    rec(a, b, scheme, scheme.gap().linear_penalty() as i64)
}

fn to_seq(codes: &[u8]) -> Sequence {
    Sequence::from_codes("s", &Alphabet::dna(), codes.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn all_aligners_match_the_exhaustive_optimum(
        a in prop::collection::vec(0u8..4, 0..8),
        b in prop::collection::vec(0u8..4, 0..8),
        k in 2usize..5,
    ) {
        let scheme = ScoringScheme::dna_default();
        let oracle = brute_force(&a, &b, &scheme);
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();

        prop_assert_eq!(
            fastlsa::fullmatrix::needleman_wunsch(&sa, &sb, &scheme, &metrics).score,
            oracle
        );
        prop_assert_eq!(
            fastlsa::hirschberg::hirschberg(&sa, &sb, &scheme, &metrics).score,
            oracle
        );
        prop_assert_eq!(
            fastlsa::align_with(&sa, &sb, &scheme, FastLsaConfig::new(k, 9), &metrics).unwrap().score,
            oracle
        );
    }

    #[test]
    fn oracle_agrees_under_the_paper_scheme(
        a in prop::collection::vec(0u8..6, 0..7),
        b in prop::collection::vec(0u8..6, 0..7),
    ) {
        // Table 1 fragment scoring (6-letter alphabet) and gap -10.
        let scheme = ScoringScheme::paper_example();
        let sa = Sequence::from_codes("a", scheme.alphabet(), a.clone());
        let sb = Sequence::from_codes("b", scheme.alphabet(), b.clone());
        let oracle = brute_force(&a, &b, &scheme);
        let metrics = Metrics::new();
        prop_assert_eq!(fastlsa::align(&sa, &sb, &scheme, &metrics).unwrap().score, oracle);
    }
}

#[test]
fn oracle_reproduces_the_paper_example() {
    let scheme = ScoringScheme::paper_example();
    let a: Vec<u8> = scheme.alphabet().encode_str("TLDKLLKD").unwrap();
    let b: Vec<u8> = scheme.alphabet().encode_str("TDVLKAD").unwrap();
    assert_eq!(brute_force(&a, &b, &scheme), 82);
}

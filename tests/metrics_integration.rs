//! Metrics ↔ trace agreement on a real parallel FastLSA run.
//!
//! The trace recorder and the metrics registry observe the same kernel
//! call sites through mirrored sinks (DESIGN.md §12), so their numbers
//! must agree *exactly* — total cells, kernel calls, and the per-backend
//! split — not merely approximately. The same snapshot must also survive
//! both export formats round-trip, because `flsa resume --metrics` seeds
//! a fresh registry from whichever file the killed run left behind.

use std::sync::Arc;

use fastlsa::metrics::{names, MetricsSnapshot, Registry};
use fastlsa::prelude::*;
use fastlsa::trace::{analyze, Recorder};

fn metered_traced_run(threads: usize) -> (Registry, fastlsa::trace::Trace) {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = generate::homologous_pair("m", &Alphabet::dna(), 2000, 0.85, 23).unwrap();
    let recorder = Arc::new(Recorder::new());
    let registry = Registry::new();
    let metrics = Metrics::with_recorder(Arc::clone(&recorder)).with_registry(&registry);
    // Same shape rationale as tests/trace_integration.rs: base = 2^17
    // keeps the k=8 sub-blocks large enough for the parallel tiled fill.
    let cfg = FastLsaConfig::new(8, 1 << 17).with_threads(threads);
    let opts = AlignOptions {
        registry: Some(Arc::new(Registry::new())),
        ..AlignOptions::default()
    };
    // The engine-level registry (opts.registry) and the kernel-level one
    // (metrics.with_registry) are deliberately distinct here: this test
    // pins the kernel-side mirror against the trace.
    let result = fastlsa::align_opts(&a, &b, &scheme, cfg, &opts, &metrics).unwrap();
    assert_eq!(result.path.score(&a, &b, &scheme), result.score);
    (registry, recorder.snapshot())
}

#[test]
fn per_backend_cell_counts_match_the_trace_exactly() {
    for threads in [1, 4] {
        let (registry, trace) = metered_traced_run(threads);
        let snap = registry.snapshot();
        let analysis = analyze(&trace);

        assert_eq!(
            snap.counter(names::CELLS_TOTAL),
            Some(analysis.kernel_cells),
            "threads={threads}: total cells"
        );
        assert_eq!(
            snap.counter(names::KERNEL_CALLS_TOTAL),
            Some(analysis.kernel_events as u64),
            "threads={threads}: kernel calls"
        );

        // The per-backend split: every backend the trace saw must have a
        // matching counter, and the named-backend counters must sum to
        // the total (nothing leaked into the "other" bucket).
        assert!(!analysis.kernel_backends.is_empty());
        let mut split_sum = 0u64;
        for b in &analysis.kernel_backends {
            let metric = names::cells_for_backend(b.backend);
            assert_eq!(
                snap.counter(metric),
                Some(b.cells),
                "threads={threads}: cells[{}]",
                b.backend
            );
            split_sum += b.cells;
        }
        assert_eq!(split_sum, analysis.kernel_cells, "threads={threads}");
        assert_eq!(
            snap.counter(names::CELLS_BACKEND_OTHER_TOTAL).unwrap_or(0),
            0,
            "threads={threads}: no cells may land in the unnamed-backend bucket"
        );
    }
}

#[test]
fn snapshot_survives_both_export_formats() {
    let (registry, _) = metered_traced_run(2);
    let snap = registry.snapshot();

    let from_prom = MetricsSnapshot::parse(&snap.to_prometheus()).unwrap();
    let from_json = MetricsSnapshot::parse(&snap.to_json()).unwrap();
    for back in [&from_prom, &from_json] {
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms.len(), snap.histograms.len());
        for (h0, h1) in snap.histograms.iter().zip(&back.histograms) {
            assert_eq!(h0.name, h1.name);
            assert_eq!(h0.count, h1.count);
            assert_eq!(h0.sum, h1.sum);
            assert_eq!(h0.buckets, h1.buckets);
        }
    }
}

#[test]
fn seeding_a_registry_composes_counters_across_restarts() {
    // A resumed run folds the killed run's export into a fresh registry;
    // counters must add and gauges must carry, and the composed snapshot
    // must again survive an export round-trip.
    let (first, _) = metered_traced_run(1);
    let exported = first.snapshot();

    let resumed = Registry::new();
    resumed.seed(&exported);
    resumed.counter(names::CELLS_TOTAL).add(100);

    let snap = resumed.snapshot();
    assert_eq!(
        snap.counter(names::CELLS_TOTAL),
        exported.counter(names::CELLS_TOTAL).map(|c| c + 100)
    );
    assert_eq!(
        snap.gauge(names::KERNEL_BACKEND),
        exported.gauge(names::KERNEL_BACKEND)
    );
    let back = MetricsSnapshot::parse(&snap.to_prometheus()).unwrap();
    assert_eq!(back.counters, snap.counters);
}

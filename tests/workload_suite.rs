//! End-to-end runs over the workload suite (the Table 3 stand-in):
//! FastLSA vs the baselines on realistic homologous pairs, plus FASTA
//! round-trips of the generated data.

use fastlsa::prelude::*;

#[test]
fn suite_mid_sizes_agree_with_hirschberg() {
    for name in ["prot-0.3k", "prot-1k", "dna-1k", "dna-4k"] {
        let spec = workload::by_name(name).unwrap();
        let (a, b) = spec.generate();
        let scheme = match spec.kind {
            workload::WorkloadKind::Protein => ScoringScheme::protein_default(),
            workload::WorkloadKind::Dna => ScoringScheme::dna_default(),
        };
        let metrics = Metrics::new();
        let hb = fastlsa::hirschberg::hirschberg(&a, &b, &scheme, &metrics);
        let fl =
            fastlsa::align_with(&a, &b, &scheme, FastLsaConfig::new(8, 1 << 14), &metrics).unwrap();
        assert_eq!(hb.score, fl.score, "{name}");
        assert!(fl.path.is_global(a.len(), b.len()), "{name}");
    }
}

#[test]
fn aligned_identity_tracks_workload_target() {
    // The mutation model should produce pairs whose *aligned* identity is
    // near the requested identity (substitutions dominate, indels dilute).
    let spec = workload::by_name("dna-4k").unwrap();
    let (a, b) = spec.generate();
    let scheme = ScoringScheme::dna_default();
    let metrics = Metrics::new();
    let r = fastlsa::align(&a, &b, &scheme, &metrics).unwrap();
    let al = Alignment::from_path(&a, &b, &r.path, &scheme);
    let identity = al.identity();
    assert!(
        (spec.identity - 0.1..=spec.identity + 0.1).contains(&identity),
        "target {} vs aligned {identity}",
        spec.identity
    );
}

#[test]
fn generated_pairs_survive_fasta_round_trip() {
    let spec = workload::by_name("dna-1k").unwrap();
    let (a, b) = spec.generate();
    let text = fasta::to_string(&[a.clone(), b.clone()]);
    let back = fasta::parse_str(&text, a.alphabet()).unwrap();
    assert_eq!(back.len(), 2);
    assert_eq!(back[0].codes(), a.codes());
    assert_eq!(back[1].codes(), b.codes());
}

#[test]
fn path_move_counts_account_for_both_sequences() {
    let spec = workload::by_name("dna-1k").unwrap();
    let (a, b) = spec.generate();
    let scheme = ScoringScheme::dna_default();
    let metrics = Metrics::new();
    let r = fastlsa::align(&a, &b, &scheme, &metrics).unwrap();
    let (d, u, l) = r.path.move_counts();
    assert_eq!(d + u, a.len(), "vertical residues consumed");
    assert_eq!(d + l, b.len(), "horizontal residues consumed");
}

#[test]
fn local_alignment_of_homologs_is_most_of_the_sequence() {
    let spec = workload::by_name("dna-1k").unwrap();
    let (a, b) = spec.generate();
    let scheme = ScoringScheme::dna_default();
    let metrics = Metrics::new();
    let local = fastlsa::fullmatrix::smith_waterman(&a, &b, &scheme, &metrics);
    // 90%-identity homologs: the best local alignment spans nearly all of
    // both sequences.
    assert!(local.a_range().len() > a.len() * 8 / 10);
    assert!(local.score > 0);
}

#[test]
fn memory_adaptive_config_handles_the_suite() {
    let spec = workload::by_name("dna-4k").unwrap();
    let (a, b) = spec.generate();
    let scheme = ScoringScheme::dna_default();
    let mut scores = Vec::new();
    for budget in [512usize << 10, 4 << 20, 128 << 20] {
        let cfg = FastLsaConfig::for_memory(budget, a.len(), b.len());
        let metrics = Metrics::new();
        scores.push(
            fastlsa::align_with(&a, &b, &scheme, cfg, &metrics)
                .unwrap()
                .score,
        );
    }
    assert!(scores.windows(2).all(|w| w[0] == w[1]), "{scores:?}");
}

//! Differential testing under *arbitrary* scoring schemes: the agreement
//! between algorithms must hold for any symmetric substitution table and
//! any non-positive gap penalty, not just the shipped matrices (scheme-
//! dependent traceback bugs hide behind "nice" scores like +5/−4).

use fastlsa::prelude::*;
use proptest::prelude::*;

/// A random symmetric 4×4 substitution table over the DNA alphabet
/// (embedded into its 5-code space with N rows zeroed).
fn random_matrix(entries: [i32; 10]) -> SubstitutionMatrix {
    let alpha = Alphabet::dna();
    let n = alpha.len();
    let mut table = vec![0i32; n * n];
    let mut it = entries.iter();
    for i in 0..4 {
        for j in i..4 {
            let v = *it.next().unwrap();
            table[i * n + j] = v;
            table[j * n + i] = v;
        }
    }
    SubstitutionMatrix::from_table("random", alpha, table)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_aligners_agree_under_random_schemes(
        entries in prop::array::uniform10(-15i32..=15),
        gap in -20i32..=0,
        a in prop::collection::vec(0u8..4, 0..70),
        b in prop::collection::vec(0u8..4, 0..70),
        k in 2usize..6,
        base in 12usize..600,
    ) {
        let scheme = ScoringScheme::new(random_matrix(entries), GapModel::linear(gap));
        let sa = Sequence::from_codes("a", &Alphabet::dna(), a.clone());
        let sb = Sequence::from_codes("b", &Alphabet::dna(), b.clone());
        let metrics = Metrics::new();

        let nw = fastlsa::fullmatrix::needleman_wunsch(&sa, &sb, &scheme, &metrics);
        let packed = fastlsa::fullmatrix::needleman_wunsch_packed(&sa, &sb, &scheme, &metrics);
        let hb = fastlsa::hirschberg::hirschberg(&sa, &sb, &scheme, &metrics);
        let fl = fastlsa::align_with(&sa, &sb, &scheme, FastLsaConfig::new(k, base), &metrics).unwrap();
        let flp = fastlsa::align_with(
            &sa, &sb, &scheme, FastLsaConfig::new(k, base).with_threads(3), &metrics,
        ).unwrap();

        prop_assert_eq!(nw.score, packed.score);
        prop_assert_eq!(nw.score, hb.score);
        prop_assert_eq!(nw.score, fl.score);
        prop_assert_eq!(nw.score, flp.score);
        prop_assert_eq!(&fl.path, &nw.path, "canonical tie-break");
        prop_assert_eq!(&flp.path, &nw.path, "parallel determinism");
        prop_assert_eq!(fl.path.score(&sa, &sb, &scheme), fl.score);
    }

    /// Score-only evaluation and scaling sanity: doubling every table
    /// entry and the gap doubles the optimal score.
    #[test]
    fn score_scales_linearly_with_scheme(
        entries in prop::array::uniform10(-10i32..=10),
        gap in -10i32..=0,
        a in prop::collection::vec(0u8..4, 0..50),
        b in prop::collection::vec(0u8..4, 0..50),
    ) {
        let scheme1 = ScoringScheme::new(random_matrix(entries), GapModel::linear(gap));
        let doubled: [i32; 10] = entries.map(|v| v * 2);
        let scheme2 = ScoringScheme::new(random_matrix(doubled), GapModel::linear(gap * 2));
        let sa = Sequence::from_codes("a", &Alphabet::dna(), a.clone());
        let sb = Sequence::from_codes("b", &Alphabet::dna(), b.clone());
        let metrics = Metrics::new();
        let s1 = fastlsa::fullmatrix::nw_score_only(&sa, &sb, &scheme1, &metrics);
        let s2 = fastlsa::fullmatrix::nw_score_only(&sa, &sb, &scheme2, &metrics);
        prop_assert_eq!(s2, 2 * s1);
    }

    /// Semi-global with all ends free never scores below Smith-Waterman's
    /// local optimum minus the cost of spanning the rest... simpler exact
    /// relationship: ends-free >= global, and local >= 0 >= nothing.
    #[test]
    fn mode_ordering_holds(
        a in prop::collection::vec(0u8..4, 1..50),
        b in prop::collection::vec(0u8..4, 1..50),
    ) {
        let scheme = ScoringScheme::dna_default();
        let sa = Sequence::from_codes("a", &Alphabet::dna(), a.clone());
        let sb = Sequence::from_codes("b", &Alphabet::dna(), b.clone());
        let metrics = Metrics::new();
        let global = fastlsa::fullmatrix::needleman_wunsch(&sa, &sb, &scheme, &metrics).score;
        let ends = fastlsa::fullmatrix::EndsFree {
            b_prefix: true, a_prefix: true, b_suffix: true, a_suffix: true,
        };
        let semi = fastlsa::fullmatrix::semiglobal(&sa, &sb, &scheme, ends, &metrics).score;
        let local = fastlsa::fullmatrix::smith_waterman(&sa, &sb, &scheme, &metrics).score;
        prop_assert!(semi >= global);
        prop_assert!(local >= semi, "local ({local}) can skip both ends AND interior ({semi})");
        prop_assert!(local >= 0);
    }
}

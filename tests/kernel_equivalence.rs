//! Differential suite: every DP kernel backend must be **bit-identical**
//! to the scalar reference — same scores, same [`Metrics`] cell counts,
//! same tracebacks — on randomized sequences, schemes, and boundaries.
//!
//! This is the contract that makes backend selection transparent: a run
//! on AVX2 and a run on a scalar-only machine must produce byte-identical
//! output. The SIMD kernels use an exact algebraic reformulation of the
//! recurrence (prefix-max scan), so equality here is integer equality,
//! not approximation.
//!
//! The inter-sequence [`BatchKernel`] is under the same contract: a batch
//! of independent pairs must return exactly the results of aligning each
//! pair alone on the scalar kernel, including when `i16` saturation
//! forces per-lane fallback.
//!
//! Set `FLSA_KERNEL_FORCE=scalar` (comma-separated backend names) to
//! restrict the swept set — CI uses this to exercise the portable
//! backends on machines whose SIMD features it cannot assume (a
//! scalar-forced kernel also pins the batch kernel to its portable
//! striped path).

use fastlsa_core::{align_opts, AlignOptions, FastLsaConfig};
use flsa_dp::kernel::{fill_dir, fill_full, fill_last_row_col};
use flsa_dp::{BatchJob, BatchKernel, Boundary, Kernel, KernelBackend, Metrics};
use flsa_fullmatrix::{needleman_wunsch, needleman_wunsch_kernel};
use flsa_hirschberg::{hirschberg_kernel, HirschbergConfig};
use flsa_scoring::{tables, GapModel, ScoringScheme};
use flsa_seq::{Alphabet, Sequence};

/// Deterministic xorshift64* — no external RNG dependency.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform in `[lo, hi]`.
    fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        lo + self.below((hi - lo + 1) as u64) as i32
    }
}

/// Backends under test: `FLSA_KERNEL_FORCE` (comma-separated names) when
/// set, every CPU-supported backend otherwise. Scalar is always included
/// as the reference.
fn backends() -> Vec<KernelBackend> {
    let mut set = match std::env::var("FLSA_KERNEL_FORCE") {
        Ok(csv) => csv
            .split(',')
            .map(|name| {
                KernelBackend::parse(name)
                    .unwrap_or_else(|| panic!("FLSA_KERNEL_FORCE: unknown backend {name:?}"))
            })
            .collect(),
        Err(_) => KernelBackend::available(),
    };
    if !set.contains(&KernelBackend::Scalar) {
        set.insert(0, KernelBackend::Scalar);
    }
    for b in &set {
        assert!(b.is_available(), "backend {b} is not available on this CPU");
    }
    set
}

fn random_codes(rng: &mut Rng, len: usize, alphabet_size: u8) -> Vec<u8> {
    (0..len)
        .map(|_| rng.below(alphabet_size as u64) as u8)
        .collect()
}

/// A random but *consistent* boundary: arbitrary values with the shared
/// corner, exercising the kernels away from the global gap ramp (inside
/// FastLSA, boundaries are grid-cache slices of arbitrary shape).
fn random_boundary(rng: &mut Rng, rows: usize, cols: usize) -> Boundary {
    let corner = rng.range_i32(-50, 50);
    let mut top = vec![corner];
    let mut left = vec![corner];
    for _ in 0..cols {
        let prev = *top.last().unwrap();
        top.push(prev + rng.range_i32(-12, 6));
    }
    for _ in 0..rows {
        let prev = *left.last().unwrap();
        left.push(prev + rng.range_i32(-12, 6));
    }
    Boundary::new(top, left)
}

fn schemes() -> Vec<ScoringScheme> {
    vec![
        ScoringScheme::dna_default(),
        ScoringScheme::new(tables::dna_default(), GapModel::linear(-3)),
        ScoringScheme::new(tables::identity(Alphabet::dna()), GapModel::linear(-1)),
        ScoringScheme::new(tables::blosum62(), GapModel::linear(-8)),
        ScoringScheme::paper_example(),
    ]
}

#[test]
fn fill_kernels_match_scalar_on_random_rectangles() {
    let mut rng = Rng::new(0xd1ff);
    let schemes = schemes();
    for case in 0..60 {
        let scheme = &schemes[case % schemes.len()];
        let codes = scheme.matrix().alphabet().len() as u8;
        // Skew toward widths that cross the vectorization cutoff and the
        // lane width, including degenerate 0/1-sized rectangles.
        let rows = rng.below(40) as usize;
        let cols = match case % 4 {
            0 => rng.below(8) as usize,
            1 => 8 + rng.below(16) as usize,
            _ => 16 + rng.below(120) as usize,
        };
        let a = random_codes(&mut rng, rows, codes);
        let b = random_codes(&mut rng, cols, codes);
        let bound = random_boundary(&mut rng, rows, cols);

        let m_ref = Metrics::new();
        let full_ref = fill_full(&a, &b, &bound.top, &bound.left, scheme, &m_ref);
        let mut bottom_ref = vec![0i32; cols + 1];
        let mut right_ref = vec![0i32; rows + 1];
        fill_last_row_col(
            &a,
            &b,
            &bound.top,
            &bound.left,
            scheme,
            &mut bottom_ref,
            Some(&mut right_ref),
            &m_ref,
        );
        let (dirs_ref, last_ref) = fill_dir(&a, &b, &bound.top, &bound.left, scheme, &m_ref);

        for backend in backends() {
            let kernel = Kernel::try_new(backend).unwrap();
            let m = Metrics::new();
            let full = kernel.fill_full(&a, &b, &bound.top, &bound.left, scheme, &m);
            assert_eq!(full, full_ref, "case {case} backend {backend}: fill_full");

            let mut bottom = vec![0i32; cols + 1];
            let mut right = vec![0i32; rows + 1];
            kernel.fill_last_row_col(
                &a,
                &b,
                &bound.top,
                &bound.left,
                scheme,
                &mut bottom,
                Some(&mut right),
                &m,
            );
            assert_eq!(bottom, bottom_ref, "case {case} backend {backend}: bottom");
            assert_eq!(right, right_ref, "case {case} backend {backend}: right");

            let (dirs, last) = kernel.fill_dir(&a, &b, &bound.top, &bound.left, scheme, &m);
            assert_eq!(
                last, last_ref,
                "case {case} backend {backend}: dir last row"
            );
            for i in 0..=rows {
                for j in 0..=cols {
                    assert_eq!(
                        dirs.get(i, j),
                        dirs_ref.get(i, j),
                        "case {case} backend {backend}: dir ({i},{j})"
                    );
                }
            }
            // Identical work accounting: cells_computed must not depend
            // on the backend.
            assert_eq!(
                m.snapshot().cells_computed,
                m_ref.snapshot().cells_computed,
                "case {case} backend {backend}: cells_computed"
            );
        }
    }
}

#[test]
fn full_pipeline_matches_scalar_per_backend() {
    let mut rng = Rng::new(0xa11);
    let scheme = ScoringScheme::dna_default();
    let alphabet = Alphabet::dna();
    for case in 0..8 {
        let la = 40 + rng.below(260) as usize;
        let lb = 40 + rng.below(260) as usize;
        let a = Sequence::from_codes(
            "a",
            &alphabet,
            random_codes(&mut rng, la, alphabet.len() as u8),
        );
        let b = Sequence::from_codes(
            "b",
            &alphabet,
            random_codes(&mut rng, lb, alphabet.len() as u8),
        );

        let m_ref = Metrics::new();
        let nw_ref = needleman_wunsch(&a, &b, &scheme, &m_ref);
        let cfg = FastLsaConfig::new(4, 256);
        let fl_ref = align_opts(
            &a,
            &b,
            &scheme,
            cfg,
            &AlignOptions {
                kernel: Some(KernelBackend::Scalar),
                ..AlignOptions::default()
            },
            &m_ref,
        )
        .unwrap();

        for backend in backends() {
            let kernel = Kernel::try_new(backend).unwrap();
            let m = Metrics::new();

            let nw = needleman_wunsch_kernel(&a, &b, &scheme, &kernel, &m);
            assert_eq!(
                nw.score, nw_ref.score,
                "case {case} backend {backend}: nw score"
            );
            assert_eq!(
                nw.path, nw_ref.path,
                "case {case} backend {backend}: nw path"
            );

            let h = hirschberg_kernel(
                &a,
                &b,
                &scheme,
                HirschbergConfig { base_cells: 128 },
                &kernel,
                &m,
            );
            assert_eq!(
                h.score, nw_ref.score,
                "case {case} backend {backend}: hirschberg"
            );

            let fl = align_opts(
                &a,
                &b,
                &scheme,
                cfg,
                &AlignOptions {
                    kernel: Some(backend),
                    ..AlignOptions::default()
                },
                &m,
            )
            .unwrap();
            assert_eq!(
                fl.score, fl_ref.score,
                "case {case} backend {backend}: fastlsa score"
            );
            assert_eq!(
                fl.path, fl_ref.path,
                "case {case} backend {backend}: fastlsa path"
            );
        }
    }
}

#[test]
fn paper_worked_example_scores_82_on_every_backend() {
    let scheme = ScoringScheme::paper_example();
    let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
    let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
    for backend in backends() {
        let kernel = Kernel::try_new(backend).unwrap();
        let metrics = Metrics::new();
        let r = needleman_wunsch_kernel(&a, &b, &scheme, &kernel, &metrics);
        assert_eq!(r.score, 82, "backend {backend}");
        let h = hirschberg_kernel(
            &a,
            &b,
            &scheme,
            HirschbergConfig { base_cells: 16 },
            &kernel,
            &metrics,
        );
        assert_eq!(h.score, 82, "backend {backend} (hirschberg)");
        let fl = align_opts(
            &a,
            &b,
            &scheme,
            FastLsaConfig::new(2, 16),
            &AlignOptions {
                kernel: Some(backend),
                ..AlignOptions::default()
            },
            &metrics,
        )
        .unwrap();
        assert_eq!(fl.score, 82, "backend {backend} (fastlsa)");
    }
}

#[test]
fn unavailable_or_unknown_backends_are_rejected_cleanly() {
    assert!(KernelBackend::parse("no-such-simd").is_none());
    assert!(KernelBackend::parse("lanes").is_none(), "lanes backend is gone");
    // Whatever this CPU supports, requesting it through AlignOptions
    // must validate; the scalar fallback must always exist.
    assert!(KernelBackend::Scalar.is_available());
    assert!(Kernel::try_new(KernelBackend::Scalar).is_ok());
}

/// The scalar reference for one batch job: single-pair packed-direction
/// fill + canonical traceback on the scalar kernel.
fn single_reference(job: &BatchJob<'_>, metrics: &Metrics) -> flsa_dp::AlignResult {
    let batch = BatchKernel::new(Kernel::scalar());
    let mut r = batch.align_batch(std::slice::from_ref(job), metrics);
    assert_eq!(r.len(), 1);
    r.remove(0)
}

#[test]
fn batch_kernel_matches_sequential_scalar_on_random_pair_sets() {
    let mut rng = Rng::new(0xba7c);
    let schemes = schemes();
    for backend in backends() {
        let kernel = Kernel::try_new(backend).unwrap();
        let batch = BatchKernel::new(kernel);
        for round in 0..4 {
            // Pair counts straddling the lane width, with empty and
            // length-1 sequences mixed in.
            let n_jobs = 1 + rng.below(40) as usize;
            let pairs: Vec<(Vec<u8>, Vec<u8>, usize)> = (0..n_jobs)
                .map(|_| {
                    let s = rng.below(schemes.len() as u64) as usize;
                    let codes = schemes[s].matrix().alphabet().len() as u8;
                    let la = rng.below(60) as usize;
                    let lb = rng.below(60) as usize;
                    (
                        random_codes(&mut rng, la, codes),
                        random_codes(&mut rng, lb, codes),
                        s,
                    )
                })
                .collect();
            let jobs: Vec<BatchJob<'_>> = pairs
                .iter()
                .map(|(a, b, s)| BatchJob {
                    a,
                    b,
                    scheme: &schemes[*s],
                })
                .collect();
            let got = batch.align_batch(&jobs, &Metrics::new());
            assert_eq!(got.len(), jobs.len());
            for (k, (job, r)) in jobs.iter().zip(got.iter()).enumerate() {
                let want = single_reference(job, &Metrics::new());
                assert_eq!(
                    r, &want,
                    "backend {backend} round {round} job {k}: batch diverged"
                );
            }
        }
    }
}

#[test]
fn batch_kernel_saturating_scores_force_exact_fallback() {
    // +2000/−2000 climbs out of the i16 safe zone within ~16 matched
    // residues: admitted upfront, flagged by the runtime min/max tracker,
    // recomputed exactly. Results must still match the scalar single path.
    let m = flsa_scoring::SubstitutionMatrix::match_mismatch(
        "sat",
        Alphabet::dna(),
        2000,
        -2000,
    );
    let scheme = ScoringScheme::new(m, GapModel::linear(-2));
    let mut rng = Rng::new(0x5a7);
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..12)
        .map(|k| {
            if k % 3 == 0 {
                // Identical pair: monotone climb, guaranteed saturation.
                let a = random_codes(&mut rng, 40 + k, 4);
                (a.clone(), a)
            } else {
                (
                    random_codes(&mut rng, 30 + k, 4),
                    random_codes(&mut rng, 25 + k, 4),
                )
            }
        })
        .collect();
    let jobs: Vec<BatchJob<'_>> = pairs
        .iter()
        .map(|(a, b)| BatchJob {
            a,
            b,
            scheme: &scheme,
        })
        .collect();
    for backend in backends() {
        let batch = BatchKernel::new(Kernel::try_new(backend).unwrap());
        let got = batch.align_batch(&jobs, &Metrics::new());
        for (k, (job, r)) in jobs.iter().zip(got.iter()).enumerate() {
            let want = single_reference(job, &Metrics::new());
            assert_eq!(r, &want, "backend {backend} job {k}: saturating batch");
        }
    }
}

#[test]
fn paper_worked_example_scores_82_in_a_batch() {
    let scheme = ScoringScheme::paper_example();
    let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
    let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
    // The paper pair in every lane of a full chunk plus a ragged tail.
    let jobs = vec![
        BatchJob {
            a: a.codes(),
            b: b.codes(),
            scheme: &scheme,
        };
        21
    ];
    for backend in backends() {
        let batch = BatchKernel::new(Kernel::try_new(backend).unwrap());
        for (k, r) in batch
            .align_batch(&jobs, &Metrics::new())
            .iter()
            .enumerate()
        {
            assert_eq!(r.score, 82, "backend {backend} lane {k}");
            assert!(r.path.is_global(a.len(), b.len()), "backend {backend}");
        }
    }
}

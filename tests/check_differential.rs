//! Differential property test for the wavefront substrate: the results a
//! real `WorkerPool` / `run_wavefront` execution produces at 1..=4
//! threads must be byte-identical to the sequential anti-diagonal fill,
//! for random skip masks. This is the production-side complement of the
//! model checker in `flsa-check`, which replays the same protocol under
//! controlled schedules — here the schedules come from the actual OS.

use std::sync::atomic::{AtomicU64, Ordering};

use fastlsa::wavefront::{run_wavefront, sequential_wavefront, WavefrontSpec, WorkerPool};

/// SplitMix64: deterministic masks without external dependencies.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_mask(rows: usize, cols: usize, density_pct: u64, seed: u64) -> Vec<bool> {
    let mut state = seed;
    (0..rows * cols)
        .map(|_| splitmix(&mut state) % 100 < density_pct)
        .collect()
}

/// The tile computation: each live tile derives its value from both
/// parents' values (skipped/absent parents contribute a coordinate-based
/// default), so any ordering or visibility mistake changes the bytes.
fn tile_value(cells: &[AtomicU64], rows_cols: (usize, usize), r: usize, c: usize) -> u64 {
    let (_, cols) = rows_cols;
    let up = if r > 0 {
        cells[(r - 1) * cols + c].load(Ordering::Acquire)
    } else {
        r as u64 + 1
    };
    let left = if c > 0 {
        cells[r * cols + c - 1].load(Ordering::Acquire)
    } else {
        c as u64 + 7
    };
    up.wrapping_mul(0x100_0000_01b3)
        .wrapping_add(left)
        .wrapping_add((r * cols + c) as u64)
}

fn fill_sequential(rows: usize, cols: usize, mask: &[bool]) -> Vec<u64> {
    let cells: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
    sequential_wavefront(
        rows,
        cols,
        |r, c| mask[r * cols + c],
        |r, c| {
            let v = tile_value(&cells, (rows, cols), r, c);
            cells[r * cols + c].store(v, Ordering::Release);
        },
    );
    cells.into_iter().map(AtomicU64::into_inner).collect()
}

fn fill_executor(rows: usize, cols: usize, mask: &[bool], threads: usize) -> Vec<u64> {
    let cells: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
    let spec = WavefrontSpec {
        rows,
        cols,
        skip: Some(&|r, c| mask[r * cols + c]),
    };
    run_wavefront(&spec, threads, &|r, c| {
        let v = tile_value(&cells, (rows, cols), r, c);
        cells[r * cols + c].store(v, Ordering::Release);
    })
    .unwrap();
    cells.into_iter().map(AtomicU64::into_inner).collect()
}

fn fill_pool(pool: &mut WorkerPool, rows: usize, cols: usize, mask: &[bool]) -> Vec<u64> {
    let cells: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
    pool.run(rows, cols, |r, c| mask[r * cols + c], &|r, c| {
        let v = tile_value(&cells, (rows, cols), r, c);
        cells[r * cols + c].store(v, Ordering::Release);
    })
    .unwrap();
    cells.into_iter().map(AtomicU64::into_inner).collect()
}

#[test]
fn executor_matches_sequential_fill_for_random_masks() {
    for (rows, cols) in [(1, 1), (1, 7), (5, 1), (4, 4), (7, 5), (9, 9)] {
        for (seed, density) in [(1, 0), (2, 20), (3, 45), (4, 70)] {
            let mask = random_mask(rows, cols, density, seed);
            let expected = fill_sequential(rows, cols, &mask);
            for threads in 1..=4 {
                let got = fill_executor(rows, cols, &mask, threads);
                assert_eq!(
                    got, expected,
                    "run_wavefront diverged: {rows}x{cols}, seed {seed}, \
                     density {density}%, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn worker_pool_matches_sequential_fill_for_random_masks() {
    for threads in 1..=4 {
        let mut pool = WorkerPool::new(threads);
        for (rows, cols) in [(1, 6), (4, 4), (6, 3), (8, 8)] {
            for (seed, density) in [(11, 0), (12, 30), (13, 60)] {
                let mask = random_mask(rows, cols, density, seed);
                let expected = fill_sequential(rows, cols, &mask);
                let got = fill_pool(&mut pool, rows, cols, &mask);
                assert_eq!(
                    got, expected,
                    "WorkerPool diverged: {rows}x{cols}, seed {seed}, \
                     density {density}%, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn repeated_jobs_on_one_pool_stay_identical() {
    // The pool reuses its workers across jobs; a stale-state bug would
    // show up as drift between repetitions of the same job.
    let mut pool = WorkerPool::new(4);
    let (rows, cols) = (6, 6);
    let mask = random_mask(rows, cols, 25, 99);
    let expected = fill_sequential(rows, cols, &mask);
    for _ in 0..50 {
        assert_eq!(fill_pool(&mut pool, rows, cols, &mask), expected);
    }
}

//! Buffer-arena accounting end to end: a repeated-block workload must
//! reach a steady state with **zero net allocations** (every scratch
//! buffer comes back out of the pool), and a [`fastlsa_core`] run whose
//! memory governor refuses the arena's bytes must degrade to the scalar
//! kernel gracefully — same answer, no error.

use fastlsa_core::{align_opts, AlignOptions, FastLsaConfig};
use flsa_dp::{Kernel, KernelBackend, Metrics};
use flsa_hirschberg::{hirschberg_kernel, HirschbergConfig};
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;

#[test]
fn repeated_runs_make_zero_net_allocations() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = homologous_pair("t", &Alphabet::dna(), 600, 0.8, 11).unwrap();
    let best = KernelBackend::detect_best();
    if best == KernelBackend::Scalar {
        // Scalar fills use caller-owned buffers only; nothing to pool.
        return;
    }
    let kernel = Kernel::try_new(best).unwrap();
    let cfg = HirschbergConfig { base_cells: 256 };

    // Warm-up run: populates the pool (allocations expected).
    let metrics = Metrics::new();
    let first = hirschberg_kernel(&a, &b, &scheme, cfg, &kernel, &metrics);
    let after_warmup = kernel.arena().fresh_allocs();
    assert!(after_warmup > 0, "vectorized fills must use the arena");

    // Steady state: the same workload five more times must be served
    // entirely from the pool.
    for _ in 0..5 {
        let r = hirschberg_kernel(&a, &b, &scheme, cfg, &kernel, &metrics);
        assert_eq!(r.score, first.score);
    }
    assert_eq!(
        kernel.arena().fresh_allocs(),
        after_warmup,
        "steady-state repeats must not allocate"
    );
    assert!(
        kernel.arena().reuses() > after_warmup,
        "the pool must actually serve the repeats"
    );
}

#[test]
fn tight_budget_degrades_kernel_instead_of_failing() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = homologous_pair("t", &Alphabet::dna(), 900, 0.8, 3).unwrap();
    let cfg = FastLsaConfig::new(4, 1 << 10);

    let metrics = Metrics::new();
    let reference = align_opts(&a, &b, &scheme, cfg, &AlignOptions::default(), &metrics).unwrap();

    // A budget with no slack: the engine's own buffers fit, but the
    // governor will refuse at least some arena growth. The run must
    // still succeed — refusal silently drops the kernel to scalar
    // (caller-owned buffers only) rather than erroring — and must
    // produce the identical alignment.
    for budget in [40_000usize, 60_000, 120_000] {
        let metrics = Metrics::new();
        let opts = AlignOptions {
            budget_bytes: Some(budget),
            kernel: Some(KernelBackend::detect_best()),
            ..AlignOptions::default()
        };
        match align_opts(&a, &b, &scheme, cfg, &opts, &metrics) {
            Ok(r) => {
                assert_eq!(r.score, reference.score, "budget {budget}");
                assert_eq!(r.path, reference.path, "budget {budget}");
            }
            // A budget too small even for the scalar engine walks the
            // ladder and may legitimately fail — but never panic.
            Err(e) => {
                assert!(
                    matches!(e, fastlsa_core::AlignError::AllocFailed { .. }),
                    "budget {budget}: unexpected error {e:?}"
                );
            }
        }
    }
}

#[test]
fn generous_budget_keeps_vectorized_kernel_and_charges_arena() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = homologous_pair("t", &Alphabet::dna(), 900, 0.8, 3).unwrap();
    let cfg = FastLsaConfig::new(4, 1 << 10);
    let metrics = Metrics::new();
    let reference = align_opts(&a, &b, &scheme, cfg, &AlignOptions::default(), &metrics).unwrap();

    let metrics = Metrics::new();
    let opts = AlignOptions {
        budget_bytes: Some(64 << 20),
        kernel: Some(KernelBackend::detect_best()),
        ..AlignOptions::default()
    };
    let r = align_opts(&a, &b, &scheme, cfg, &opts, &metrics).unwrap();
    assert_eq!(r.score, reference.score);
    assert_eq!(r.path, reference.path);
}

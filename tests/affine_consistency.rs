//! Cross-checks of the affine-gap extension: the linear-space
//! Myers–Miller implementation against the full-matrix Gotoh oracle, and
//! the degenerate relationships back to the linear-gap algorithms.

use fastlsa::fullmatrix::gotoh::{gotoh, score_path_affine};
use fastlsa::hirschberg::myers_miller_affine;
use fastlsa::prelude::*;
use fastlsa::scoring::tables;
use proptest::prelude::*;

fn to_seq(codes: &[u8]) -> Sequence {
    Sequence::from_codes("s", &Alphabet::dna(), codes.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Myers-Miller affine equals Gotoh on arbitrary inputs and gap
    /// parameters, and its path re-scores to the reported optimum.
    #[test]
    fn myers_miller_matches_gotoh(
        a in prop::collection::vec(0u8..4, 0..90),
        b in prop::collection::vec(0u8..4, 0..90),
        open in -20i32..=0,
        extend in -6i32..=-1,
    ) {
        let scheme = ScoringScheme::new(tables::dna_default(), GapModel::affine(open, extend));
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();
        let full = gotoh(&sa, &sb, &scheme, &metrics);
        let mm = myers_miller_affine(&sa, &sb, &scheme, &metrics);
        prop_assert_eq!(mm.score, full.score);
        prop_assert!(mm.path.is_global(sa.len(), sb.len()));
        prop_assert_eq!(score_path_affine(&mm.path, &sa, &sb, &scheme), mm.score);
    }

    /// Affine FastLSA (the grid-cache extension) equals Gotoh for every
    /// division factor and base-case size.
    #[test]
    fn affine_fastlsa_matches_gotoh(
        a in prop::collection::vec(0u8..4, 0..80),
        b in prop::collection::vec(0u8..4, 0..80),
        open in -16i32..=0,
        extend in -5i32..=-1,
        k in 2usize..6,
        base in 9usize..2000,
    ) {
        let scheme = ScoringScheme::new(tables::dna_default(), GapModel::affine(open, extend));
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();
        let full = gotoh(&sa, &sb, &scheme, &metrics);
        let fl = fastlsa::core::align_affine(&sa, &sb, &scheme, FastLsaConfig::new(k, base), &metrics).unwrap();
        prop_assert_eq!(fl.score, full.score);
        prop_assert!(fl.path.is_global(sa.len(), sb.len()));
        prop_assert_eq!(score_path_affine(&fl.path, &sa, &sb, &scheme), fl.score);
    }

    /// With a zero open cost the affine algorithms equal the linear ones.
    #[test]
    fn zero_open_degenerates_to_linear(
        a in prop::collection::vec(0u8..4, 0..70),
        b in prop::collection::vec(0u8..4, 0..70),
        extend in -8i32..=-1,
    ) {
        let affine = ScoringScheme::new(tables::dna_default(), GapModel::affine(0, extend));
        let linear = ScoringScheme::new(tables::dna_default(), GapModel::linear(extend));
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();
        let mm = myers_miller_affine(&sa, &sb, &affine, &metrics);
        let fl = fastlsa::align(&sa, &sb, &linear, &metrics).unwrap();
        prop_assert_eq!(mm.score, fl.score);
    }

    /// The affine optimum is never above the linear optimum with
    /// per-symbol cost `extend` (affine adds the open on top), and never
    /// below the linear optimum with per-symbol cost `open + extend`
    /// (which over-charges every symbol of runs longer than one).
    #[test]
    fn affine_score_sandwich(
        a in prop::collection::vec(0u8..4, 0..60),
        b in prop::collection::vec(0u8..4, 0..60),
        open in -15i32..=0,
        extend in -5i32..=-1,
    ) {
        let affine = ScoringScheme::new(tables::dna_default(), GapModel::affine(open, extend));
        let upper = ScoringScheme::new(tables::dna_default(), GapModel::linear(extend));
        let lower = ScoringScheme::new(
            tables::dna_default(),
            GapModel::linear(open.saturating_add(extend)),
        );
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();
        let mid = myers_miller_affine(&sa, &sb, &affine, &metrics).score;
        let hi = fastlsa::align(&sa, &sb, &upper, &metrics).unwrap().score;
        let lo = fastlsa::align(&sa, &sb, &lower, &metrics).unwrap().score;
        prop_assert!(mid <= hi, "affine {mid} > extend-only {hi}");
        prop_assert!(mid >= lo, "affine {mid} < open+extend-per-symbol {lo}");
    }

    /// Banded alignment with a full-width band equals the exact optimum,
    /// and semiglobal with no free ends equals global.
    #[test]
    fn band_and_ends_degenerate_to_global(
        a in prop::collection::vec(0u8..4, 0..50),
        b in prop::collection::vec(0u8..4, 0..50),
    ) {
        let scheme = ScoringScheme::dna_default();
        let sa = to_seq(&a);
        let sb = to_seq(&b);
        let metrics = Metrics::new();
        let exact = fastlsa::fullmatrix::needleman_wunsch(&sa, &sb, &scheme, &metrics);
        let banded = fastlsa::fullmatrix::banded_needleman_wunsch(
            &sa, &sb, &scheme, a.len() + b.len() + 1, &metrics,
        );
        prop_assert_eq!(banded.score, exact.score);
        let semi = fastlsa::fullmatrix::semiglobal(
            &sa, &sb, &scheme, fastlsa::fullmatrix::EndsFree::default(), &metrics,
        );
        prop_assert_eq!(semi.score, exact.score);
    }
}

//! End-to-end tracing guarantees on a real parallel FastLSA run:
//!
//! (a) the kernel events in the trace reproduce `Metrics::cells_computed`
//!     exactly;
//! (b) tile timestamps respect the wavefront dependency order — no tile
//!     starts before both of its parents ended;
//! (c) the measured per-fill ramp-up/saturated/drain census equals the §5
//!     analytical census (`phase_breakdown`) of the same live tile set.

use std::collections::HashMap;
use std::sync::Arc;

use fastlsa::prelude::*;
use fastlsa::trace::{analyze, EventKind, Recorder, SpanKind, Trace};
use fastlsa::wavefront::phases::phase_breakdown;

fn traced_run(threads: usize) -> (Trace, fastlsa::dp::MetricsSnapshot) {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = generate::homologous_pair("t", &Alphabet::dna(), 2500, 0.85, 11).unwrap();
    let recorder = Arc::new(Recorder::new());
    let metrics = Metrics::with_recorder(Arc::clone(&recorder));
    // base = 2^17 makes the k=8 sub-blocks of a 2500-residue problem
    // (~313x313) direct base cases that are large enough (>= 16384 cells)
    // for the parallel tiled base fill, so the trace carries both
    // GridFill (skip-hole) and BaseFill (full-grid) wavefronts.
    let cfg = FastLsaConfig::new(8, 1 << 17).with_threads(threads);
    let result = fastlsa::align_with(&a, &b, &scheme, cfg, &metrics).unwrap();
    assert_eq!(result.path.score(&a, &b, &scheme), result.score);
    recorder.set_threads(threads as u32);
    (recorder.snapshot(), metrics.snapshot())
}

struct TileRec {
    row: usize,
    col: usize,
    start: u64,
    end: u64,
}

fn tiles_by_fill(trace: &Trace) -> HashMap<u32, Vec<TileRec>> {
    let mut out: HashMap<u32, Vec<TileRec>> = HashMap::new();
    for e in &trace.events {
        if let EventKind::Tile { fill, row, col, .. } = e.kind {
            out.entry(fill).or_default().push(TileRec {
                row: row as usize,
                col: col as usize,
                start: e.start_ns,
                end: e.end_ns,
            });
        }
    }
    out
}

#[test]
fn traced_cells_equal_metrics_counter() {
    for threads in [1, 4] {
        let (trace, snap) = traced_run(threads);
        assert_eq!(
            trace.kernel_cells(),
            snap.cells_computed,
            "threads={threads}: kernel events must reproduce cells_computed"
        );
        let kernel_events = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Kernel { .. }))
            .count();
        assert_eq!(kernel_events as u64, snap.kernel_calls, "threads={threads}");
    }
}

#[test]
fn tile_timestamps_respect_wavefront_dependencies() {
    let (trace, _) = traced_run(4);
    let fills = tiles_by_fill(&trace);
    assert!(
        !fills.is_empty(),
        "parallel run must record wavefront fills"
    );
    for (fill, tiles) in &fills {
        let mut ends: HashMap<(usize, usize), u64> = HashMap::new();
        for t in tiles {
            assert!(
                ends.insert((t.row, t.col), t.end).is_none(),
                "fill {fill}: tile ({},{}) recorded twice",
                t.row,
                t.col
            );
        }
        for t in tiles {
            for parent in [
                (t.row.wrapping_sub(1), t.col),
                (t.row, t.col.wrapping_sub(1)),
            ] {
                if let Some(&parent_end) = ends.get(&parent) {
                    assert!(
                        parent_end <= t.start,
                        "fill {fill}: tile ({},{}) started at {} before parent {:?} ended at {}",
                        t.row,
                        t.col,
                        t.start,
                        parent,
                        parent_end
                    );
                }
            }
        }
    }
}

#[test]
fn measured_phase_census_matches_section5_formulas() {
    let (trace, _) = traced_run(4);
    let fills = tiles_by_fill(&trace);
    let analysis = analyze(&trace);
    assert!(!analysis.fills.is_empty());
    let mut full_grids = 0;
    for f in &analysis.fills {
        let tiles = &fills[&f.fill];
        let live: HashMap<(usize, usize), ()> =
            tiles.iter().map(|t| ((t.row, t.col), ())).collect();
        let skip = |r: usize, c: usize| !live.contains_key(&(r, c));
        let pb = phase_breakdown(
            f.rows as usize,
            f.cols as usize,
            f.threads as usize,
            Some(&skip),
        );
        assert_eq!(
            [f.phases[0].tiles, f.phases[1].tiles, f.phases[2].tiles],
            [pb.ramp_tiles, pb.saturated_tiles, pb.drain_tiles],
            "fill {}: measured census diverges from the analytical breakdown",
            f.fill
        );
        assert_eq!(
            [f.phases[0].lines, f.phases[1].lines, f.phases[2].lines],
            [pb.ramp_lines, pb.saturated_lines, pb.drain_lines],
            "fill {}",
            f.fill
        );
        assert_eq!(f.tiles, pb.total_tiles());
        // Full grids (no skip hole) must also match the closed-form
        // census with no mask — the exact §5 model input.
        if f.tiles == (f.rows * f.cols) as usize {
            full_grids += 1;
            let model = phase_breakdown(f.rows as usize, f.cols as usize, f.threads as usize, None);
            assert_eq!(pb, model, "fill {}", f.fill);
        }
    }
    assert!(full_grids > 0, "expected at least one hole-free fill grid");
}

#[test]
fn recursion_spans_cover_the_whole_tree() {
    let (trace, snap) = traced_run(4);
    let mut fill_cache = 0u64;
    let mut base_cells = 0u64;
    let mut tracebacks = 0u64;
    for e in &trace.events {
        if let EventKind::Span { kind, cells, .. } = e.kind {
            match kind {
                SpanKind::FillCache => fill_cache += 1,
                SpanKind::BaseCase => base_cells += cells,
                SpanKind::Traceback => tracebacks += 1,
            }
        }
    }
    assert!(fill_cache > 0, "at least the root FillCache span");
    // Every base-case rectangle's area is recorded once on its span, so
    // the sum equals the metrics' base-case cell counter.
    assert_eq!(base_cells, snap.cells_base_case);
    assert!(tracebacks > 0);
    // Depth 0 must be the whole problem's FillCache.
    let root = trace
        .events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::Span {
                kind: SpanKind::FillCache,
                depth: 0,
                rows,
                cols,
                ..
            } => Some((rows, cols)),
            _ => None,
        })
        .expect("root span");
    assert!(root.0 >= 2400 && root.1 >= 2400, "{root:?}");
}

#[test]
fn export_round_trip_preserves_a_real_trace() {
    let (trace, _) = traced_run(2);
    let mut chrome = Vec::new();
    fastlsa::trace::write_chrome(&trace, &mut chrome).unwrap();
    let back = fastlsa::trace::read_trace(std::str::from_utf8(&chrome).unwrap()).unwrap();
    assert_eq!(back.events, trace.events);
    assert_eq!(back.meta, trace.meta);
    // Analysis of the round-tripped trace is identical.
    let a0 = analyze(&trace);
    let a1 = analyze(&back);
    assert_eq!(a0.kernel_cells, a1.kernel_cells);
    assert_eq!(a0.fills.len(), a1.fills.len());
    assert_eq!(a0.threads.len(), a1.threads.len());
}

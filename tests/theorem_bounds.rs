//! Executable versions of the paper's analytical results (experiment
//! E11): operation counts (Theorem 2 territory), space (Theorem 3),
//! parallel wall cost (Theorem 4).

use fastlsa::core::model;
use fastlsa::prelude::*;

fn pair(len: usize, seed: u64) -> (Sequence, Sequence, ScoringScheme) {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = generate::homologous_pair("t", scheme.alphabet(), len, 0.8, seed).unwrap();
    (a, b, scheme)
}

#[test]
fn fm_computes_exactly_mn_cells() {
    let (a, b, scheme) = pair(700, 1);
    let metrics = Metrics::new();
    fastlsa::fullmatrix::needleman_wunsch(&a, &b, &scheme, &metrics);
    assert_eq!(
        metrics.snapshot().cells_computed,
        (a.len() * b.len()) as u64
    );
}

#[test]
fn hirschberg_computes_at_most_twice_mn() {
    let (a, b, scheme) = pair(1500, 2);
    let metrics = Metrics::new();
    fastlsa::hirschberg::hirschberg(&a, &b, &scheme, &metrics);
    let factor = metrics.snapshot().cell_factor(a.len(), b.len());
    assert!((1.5..=2.05).contains(&factor), "factor {factor}");
}

#[test]
fn fastlsa_cells_obey_theorem_2_bound_across_k() {
    let (a, b, scheme) = pair(2000, 3);
    let base = 1 << 12;
    let mut prev = f64::INFINITY;
    for k in [2usize, 3, 4, 6, 8, 12, 16] {
        let metrics = Metrics::new();
        fastlsa::align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &metrics).unwrap();
        let measured = metrics.snapshot().cells_computed as f64;
        let bound = model::fastlsa_cells_bound(a.len(), b.len(), k, base);
        let limit = (a.len() * b.len()) as f64 * model::theorem2_limit_factor(k);
        assert!(measured <= bound * 1.05, "k={k}: {measured} > {bound}");
        assert!(
            measured <= limit * 1.05,
            "k={k}: {measured} > limit {limit}"
        );
        // Recomputation falls monotonically with k on a fixed instance.
        assert!(measured <= prev * 1.01, "k={k}");
        prev = measured;
    }
}

#[test]
fn fastlsa_linear_space_mode_is_about_1_5x_fm() {
    // The paper's abstract: "At one extreme, FastLSA uses linear space
    // with approximately 1.5 times the number of operations required by
    // the FM algorithms." With k=4 and a small base case the measured
    // factor sits at ~1.5.
    let (a, b, scheme) = pair(4000, 4);
    let metrics = Metrics::new();
    fastlsa::align_with(&a, &b, &scheme, FastLsaConfig::new(4, 1 << 12), &metrics).unwrap();
    let factor = metrics.snapshot().cell_factor(a.len(), b.len());
    assert!((1.3..=1.6).contains(&factor), "factor {factor}");
}

#[test]
fn fastlsa_quadratic_space_mode_has_no_extra_operations() {
    // "At the other extreme, FastLSA uses quadratic space with no extra
    // operations."
    let (a, b, scheme) = pair(500, 5);
    let metrics = Metrics::new();
    let cfg = FastLsaConfig {
        k: 8,
        base_cells: (a.len() + 1) * (b.len() + 1),
        parallel: None,
    };
    fastlsa::align_with(&a, &b, &scheme, cfg, &metrics).unwrap();
    assert_eq!(
        metrics.snapshot().cells_computed,
        (a.len() * b.len()) as u64
    );
}

#[test]
fn fastlsa_space_obeys_theorem_3_bound() {
    let (a, b, scheme) = pair(3000, 6);
    for k in [2usize, 8, 16] {
        let base = 1 << 14;
        let metrics = Metrics::new();
        fastlsa::align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &metrics).unwrap();
        let peak = metrics.snapshot().peak_bytes as f64;
        let bound = model::fastlsa_space_entries(a.len(), b.len(), k, base) * 4.0;
        assert!(peak <= bound * 1.1, "k={k}: peak {peak} > bound {bound}");
    }
}

#[test]
fn replayed_parallel_cost_obeys_theorem_4() {
    let (a, b, scheme) = pair(2000, 7);
    let k = 8;
    let f = 2;
    let metrics = Metrics::new();
    let (_, log) =
        fastlsa::align_traced(&a, &b, &scheme, FastLsaConfig::new(k, 1 << 12), &metrics).unwrap();
    for p in [1usize, 2, 4, 8, 16] {
        let rep = fastlsa::core::replay(&log, p, f);
        let bound = model::theorem4_bound(a.len(), b.len(), k, p, f);
        assert!(
            rep.units <= bound,
            "P={p}: replayed {} > Theorem 4 bound {bound}",
            rep.units
        );
    }
}

#[test]
fn speedup_is_monotone_and_bounded_by_p() {
    let (a, b, scheme) = pair(4000, 8);
    let metrics = Metrics::new();
    let (_, log) =
        fastlsa::align_traced(&a, &b, &scheme, FastLsaConfig::new(8, 1 << 14), &metrics).unwrap();
    let mut prev = 0.0;
    for p in [1usize, 2, 4, 8, 16] {
        let rep = fastlsa::core::replay(&log, p, 2);
        let s = rep.speedup();
        assert!(s >= prev - 1e-9, "P={p}");
        assert!(s <= p as f64 + 1e-9, "P={p}: superlinear {s}");
        prev = s;
    }
}

#[test]
fn efficiency_grows_with_problem_size() {
    // The paper's parallel headline: "the efficiency of Parallel FastLSA
    // increases with the size of the sequences that are aligned."
    let scheme = ScoringScheme::dna_default();
    let mut effs = Vec::new();
    for len in [1000usize, 4000, 16000] {
        let (a, b) = generate::homologous_pair("t", scheme.alphabet(), len, 0.8, 9).unwrap();
        let metrics = Metrics::new();
        let (_, log) =
            fastlsa::align_traced(&a, &b, &scheme, FastLsaConfig::new(8, 1 << 16), &metrics)
                .unwrap();
        effs.push(fastlsa::core::replay(&log, 8, 2).efficiency());
    }
    assert!(
        effs[0] <= effs[1] + 0.02 && effs[1] <= effs[2] + 0.02,
        "{effs:?}"
    );
    assert!(effs[2] > 0.8, "large-problem efficiency {}", effs[2]);
}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API so
//! workspace code written against `parking_lot 0.12` compiles and runs
//! without crates.io access. Poisoned locks are transparently recovered
//! (`parking_lot` has no poisoning at all, so this matches its semantics
//! from the caller's point of view).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Mutual exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. Holds an `Option` internally so [`Condvar::wait`]
/// can move the underlying std guard out and back (std's wait consumes the
/// guard by value; parking_lot's takes `&mut`).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// Condition variable operating on [`MutexGuard`] via `&mut`, matching
/// `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let std_guard =
            self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        handle.join().unwrap();
    }

    #[test]
    fn lock_recovers_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}

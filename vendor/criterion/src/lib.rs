//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition API used by `crates/bench/benches`
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`) with
//! a simple wall-clock harness: a warm-up call followed by `sample_size`
//! timed samples, reporting median / min / mean and derived throughput.
//! There is no statistical regression machinery; the numbers are for
//! relative, same-machine comparison only.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one parameterized benchmark, e.g. `fill/4096`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Work-per-iteration hint used to derive throughput numbers.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Runs `f` once to warm up, then `target_samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level handle mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |bencher: &mut Bencher| f(bencher, input));
        self
    }

    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher =
            Bencher { samples: Vec::new(), target_samples: self.sample_size };
        f(&mut bencher);
        report(&self.name, id, &bencher.samples, self.throughput);
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!(" ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(" ({:.3} MiB/s)", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!(
        "{group}/{id}: median {median:?}, min {min:?}, mean {mean:?} over {} samples{rate}",
        sorted.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_records_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 7), &7usize, |bencher, &n| {
            bencher.iter(|| {
                calls += 1;
                (0..n).sum::<usize>()
            });
        });
        group.bench_function("plain", |bencher| bencher.iter(|| black_box(1 + 1)));
        group.finish();
        // warm-up + 3 samples for the first bench.
        assert_eq!(calls, 4);
    }
}

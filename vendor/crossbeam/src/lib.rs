//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — an MPMC
//! unbounded channel built on a `Mutex<VecDeque>` plus a condition
//! variable. Semantics match the subset the workspace relies on: cloneable
//! senders and receivers, `recv` blocking until a message arrives or every
//! sender is dropped, `send` failing once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are dropped.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are dropped.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half of the channel; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of the channel; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe disconnection.
                let _guard =
                    self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue =
                self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
                .ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use std::thread;

    #[test]
    fn fan_out_to_multiple_consumers() {
        let (tx, rx) = unbounded::<usize>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<usize> =
            workers.into_iter().flat_map(|w| w.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small slice of the `rand 0.9` API the workspace actually
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::random`, and
//! `Rng::random_range` over integer ranges. The generator is SplitMix64 —
//! statistically solid for workload synthesis, though the exact streams
//! differ from upstream `rand`'s ChaCha-based `StdRng`. All workspace tests
//! are relational (algorithm vs. algorithm), not golden-value, so only
//! determinism and uniformity matter.

use core::ops::Range;

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Minimal core trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly (here: `f64` in `[0, 1)`,
    /// integers over their full range, `bool` fair coin).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled (subset of `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw: span is far below 2^64 in all workspace call
                // sites, so the bias is negligible for workload synthesis.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for `rand`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the stub uses one generator for both `StdRng` and `SmallRng`.
    #[cfg(feature = "small_rng")]
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn roughly_uniform_over_small_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.random_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed counts {counts:?}");
        }
    }
}

//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the `proptest 1.x` API the workspace uses:
//!
//! - the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! - range strategies over integers and floats (`0u8..4`, `-15i32..=15`),
//! - `prop::collection::vec` and `prop::array::uniform10`,
//! - `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (no `PROPTEST_*` env handling), there is **no shrinking**
//! (a failing case panics with the full input values instead), and the
//! default case count is 64 rather than 256 to keep offline test runs
//! fast. Every call site in this workspace either sets an explicit case
//! count or tests O(n²) DP properties where 64 deterministic cases retain
//! the intended coverage.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (subset of `proptest`'s).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assert!`-style failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejection: the inputs don't satisfy a
        /// precondition; the runner draws a fresh case instead.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic SplitMix64 generator: the stream depends only on the
    /// test name and case index, so failures reproduce across runs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ ((case as u64) << 32 | 0x9E37_79B9) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value` (subset of
    /// `proptest::strategy::Strategy`; generation only, no shrink tree).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64
                        * (1.0 / (1u64 << 53) as f64);
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);
}

/// Strategy combinator namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Vectors whose length is drawn from `len` and whose elements are
        /// drawn from `elem`.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    pub mod array {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Fixed-size arrays of 10 independent draws from `S`.
        pub struct UniformArray10<S> {
            elem: S,
        }

        pub fn uniform10<S: Strategy>(elem: S) -> UniformArray10<S> {
            UniformArray10 { elem }
        }

        impl<S: Strategy> Strategy for UniformArray10<S> {
            type Value = [S::Value; 10];
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                std::array::from_fn(|_| self.elem.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?} == {:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?} == {:?}`: {}",
            __left,
            __right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

/// Defines property tests. Each function body runs once per generated
/// case; `prop_assert*` failures abort the test with the offending inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __passed + __rejected,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __rng,
                    );
                )+
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str(&format!(
                        "\n    {} = {:?}",
                        stringify!($arg),
                        &$arg
                    ));
                )+
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        __rejected += 1;
                        assert!(
                            __rejected < 16 * __config.cases + 1024,
                            "prop_assume rejected too many cases"
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "property `{}` failed at case {}: {}\n  inputs:{}",
                            stringify!($name),
                            __passed,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(
            x in 0u8..4,
            y in -15i32..=15,
            f in 0.0f64..1.0,
            v in prop::collection::vec(2usize..9, 0..20),
            arr in prop::array::uniform10(-3i32..=3),
        ) {
            prop_assert!(x < 4);
            prop_assert!((-15..=15).contains(&y), "y out of range: {y}");
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| (2..9).contains(&e)));
            prop_assert_eq!(arr.len(), 10);
        }

        #[test]
        fn assume_skips_cases(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let gen = |run: u32| {
            let mut rng = TestRng::deterministic("stability", run % 3);
            prop::collection::vec(0u8..4, 0..50).generate(&mut rng)
        };
        assert_eq!(gen(0), gen(3));
        assert_ne!(gen(0), gen(1), "distinct cases should differ");
    }
}

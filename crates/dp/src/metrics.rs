//! Operation and memory accounting.
//!
//! The paper's analytical results (Theorems 1–4) bound the number of DPM
//! entries each algorithm computes and the auxiliary space it uses. Every
//! aligner in this workspace threads a [`Metrics`] through its kernels so
//! those bounds become executable assertions (experiment E11) and so the
//! experiment harness can report cells/bytes next to wall times.
//!
//! Counters are relaxed atomics: they are bumped once per *kernel call*
//! (with the whole rectangle's cell count), not per cell, so the overhead
//! is unmeasurable and the type stays `Sync` for the parallel fills.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use flsa_trace::Recorder;

/// Shared accounting for one alignment run.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Optional event recorder; when present, every kernel call is also
    /// logged as a trace event (so traced cells always equal
    /// `cells_computed` by construction).
    recorder: Option<Arc<Recorder>>,
    /// DPM entries computed by FindScore-phase kernels (fills of any kind).
    cells_computed: AtomicU64,
    /// Subset of `cells_computed` spent inside base-case (full-matrix)
    /// solves — FastLSA's "useful" work; the rest is grid-cache fill.
    cells_base_case: AtomicU64,
    /// FindPath traceback steps (one per path move).
    traceback_steps: AtomicU64,
    /// Kernel invocations (fills), a proxy for recursion overhead.
    kernel_calls: AtomicU64,
    /// Currently tracked auxiliary bytes.
    cur_bytes: AtomicI64,
    /// High-water mark of `cur_bytes`.
    peak_bytes: AtomicI64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// DPM entries computed by FindScore-phase kernels.
    pub cells_computed: u64,
    /// Cells computed inside base-case full-matrix solves.
    pub cells_base_case: u64,
    /// FindPath traceback steps.
    pub traceback_steps: u64,
    /// Fill-kernel invocations.
    pub kernel_calls: u64,
    /// Peak tracked auxiliary memory in bytes.
    pub peak_bytes: u64,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Fresh metrics that also log every kernel call to `recorder`.
    pub fn with_recorder(recorder: Arc<Recorder>) -> Self {
        Metrics {
            recorder: Some(recorder),
            ..Metrics::default()
        }
    }

    /// The attached event recorder, if tracing is on. Layers above pass
    /// this down so the disabled path stays a `None` check.
    #[inline]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_deref()
    }

    /// Records `n` DPM entries computed by a fill kernel.
    #[inline]
    pub fn add_cells(&self, n: u64) {
        // Relaxed: independent monotonic counters, read only through
        // `snapshot`, which tolerates any interleaving.
        self.cells_computed.fetch_add(n, Ordering::Relaxed);
        self.kernel_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(r) = &self.recorder {
            r.record_kernel(n);
        }
    }

    /// Records `n` DPM entries computed inside a base-case solve (these are
    /// *also* reported through [`Metrics::add_cells`] by the kernel; this
    /// counter just classifies them).
    #[inline]
    pub fn add_base_case_cells(&self, n: u64) {
        self.cells_base_case.fetch_add(n, Ordering::Relaxed); // Relaxed: monotonic counter
    }

    /// Records `n` traceback steps.
    #[inline]
    pub fn add_traceback_steps(&self, n: u64) {
        self.traceback_steps.fetch_add(n, Ordering::Relaxed); // Relaxed: monotonic counter
    }

    /// Tracks an auxiliary allocation of `bytes`, returning a guard that
    /// un-tracks it on drop. Algorithms wrap their large buffers (score
    /// matrices, grid caches, tile buffers) in these guards; tiny
    /// allocations (recursion frames, path vectors) are deliberately not
    /// tracked, matching how the paper counts "space".
    pub fn track_alloc(&self, bytes: usize) -> MemGuard<'_> {
        let b = bytes as i64;
        // Relaxed: the high-water mark is advisory bookkeeping; it orders
        // nothing and tolerates races between concurrent allocators.
        let cur = self.cur_bytes.fetch_add(b, Ordering::Relaxed) + b;
        self.peak_bytes.fetch_max(cur, Ordering::Relaxed);
        MemGuard {
            metrics: self,
            bytes: b,
        }
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            // Relaxed: a snapshot is a best-effort cut — the counters are
            // independent, no consistent cross-counter view is promised.
            cells_computed: self.cells_computed.load(Ordering::Relaxed),
            cells_base_case: self.cells_base_case.load(Ordering::Relaxed),
            traceback_steps: self.traceback_steps.load(Ordering::Relaxed),
            kernel_calls: self.kernel_calls.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed).max(0) as u64,
        }
    }
}

/// RAII guard for one tracked allocation (see [`Metrics::track_alloc`]).
#[derive(Debug)]
pub struct MemGuard<'m> {
    metrics: &'m Metrics,
    bytes: i64,
}

impl Drop for MemGuard<'_> {
    fn drop(&mut self) {
        self.metrics
            .cur_bytes
            // Relaxed: counter bookkeeping only, nothing is published.
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

impl MetricsSnapshot {
    /// Cells computed per input cell: the paper's "re-computation factor"
    /// (1.0 for FM, ~2.0 for Hirschberg, between 1 and 2 for FastLSA).
    pub fn cell_factor(&self, m: usize, n: usize) -> f64 {
        self.cells_computed as f64 / (m as f64 * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_cells(100);
        m.add_cells(50);
        m.add_base_case_cells(50);
        m.add_traceback_steps(7);
        let s = m.snapshot();
        assert_eq!(s.cells_computed, 150);
        assert_eq!(s.cells_base_case, 50);
        assert_eq!(s.traceback_steps, 7);
        assert_eq!(s.kernel_calls, 2);
    }

    #[test]
    fn peak_memory_tracks_high_water_mark() {
        let m = Metrics::new();
        {
            let _a = m.track_alloc(1000);
            {
                let _b = m.track_alloc(500);
                assert_eq!(m.snapshot().peak_bytes, 1500);
            }
            let _c = m.track_alloc(100);
            // Peak stays at the high-water mark even after frees.
            assert_eq!(m.snapshot().peak_bytes, 1500);
        }
        let _d = m.track_alloc(200);
        assert_eq!(m.snapshot().peak_bytes, 1500);
    }

    #[test]
    fn cell_factor_normalizes_by_problem_area() {
        let m = Metrics::new();
        m.add_cells(200);
        assert!((m.snapshot().cell_factor(10, 10) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Metrics>();
    }

    #[test]
    fn recorder_sees_every_kernel_call() {
        let recorder = Arc::new(Recorder::new());
        let m = Metrics::with_recorder(Arc::clone(&recorder));
        m.add_cells(64);
        m.add_cells(36);
        let trace = recorder.snapshot();
        assert_eq!(trace.kernel_cells(), m.snapshot().cells_computed);
        assert_eq!(trace.events.len(), m.snapshot().kernel_calls as usize);
    }
}

//! Operation and memory accounting.
//!
//! The paper's analytical results (Theorems 1–4) bound the number of DPM
//! entries each algorithm computes and the auxiliary space it uses. Every
//! aligner in this workspace threads a [`Metrics`] through its kernels so
//! those bounds become executable assertions (experiment E11) and so the
//! experiment harness can report cells/bytes next to wall times.
//!
//! Counters are relaxed atomics: they are bumped once per *kernel call*
//! (with the whole rectangle's cell count), not per cell, so the overhead
//! is unmeasurable and the type stays `Sync` for the parallel fills.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use flsa_metrics::{names, Counter, Gauge, Registry};
use flsa_trace::Recorder;

/// Cached `flsa-metrics` handles mirroring the counters below, plus the
/// per-backend cell attribution. Resolved once at construction so the
/// hot path is a few relaxed atomic ops and never touches the registry.
#[derive(Debug)]
struct Sink {
    cells: Counter,
    base_cells: Counter,
    kernel_calls: Counter,
    traceback: Counter,
    tracked: Gauge,
    tracked_peak: Gauge,
    backend_gauge: Gauge,
    /// Per-backend cell counters, index-aligned with [`names::BACKENDS`].
    by_backend: Vec<Counter>,
    /// Cells recorded while an unrecognized backend is current.
    other_backend: Counter,
    /// Index into `by_backend` of the backend currently in effect
    /// (`usize::MAX` = unknown). Mirrors the trace recorder's interned
    /// backend so metrics and trace attribute cells identically.
    backend_idx: AtomicUsize,
}

impl Sink {
    fn new(registry: &Registry) -> Self {
        Sink {
            cells: registry.counter(names::CELLS_TOTAL),
            base_cells: registry.counter(names::CELLS_BASE_CASE_TOTAL),
            kernel_calls: registry.counter(names::KERNEL_CALLS_TOTAL),
            traceback: registry.counter(names::TRACEBACK_STEPS_TOTAL),
            tracked: registry.gauge(names::TRACKED_BYTES),
            tracked_peak: registry.gauge(names::TRACKED_PEAK_BYTES),
            backend_gauge: registry.gauge(names::KERNEL_BACKEND),
            by_backend: names::BACKENDS
                .iter()
                .map(|b| registry.counter(names::cells_for_backend(b)))
                .collect(),
            other_backend: registry.counter(names::CELLS_BACKEND_OTHER_TOTAL),
            // Matches the trace recorder's "scalar" default.
            backend_idx: AtomicUsize::new(0),
        }
    }
}

/// Shared accounting for one alignment run.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Optional event recorder; when present, every kernel call is also
    /// logged as a trace event (so traced cells always equal
    /// `cells_computed` by construction).
    recorder: Option<Arc<Recorder>>,
    /// Optional always-on metrics handles; when present, every counter
    /// bump below is mirrored into the run's registry.
    sink: Option<Sink>,
    /// DPM entries computed by FindScore-phase kernels (fills of any kind).
    cells_computed: AtomicU64,
    /// Subset of `cells_computed` spent inside base-case (full-matrix)
    /// solves — FastLSA's "useful" work; the rest is grid-cache fill.
    cells_base_case: AtomicU64,
    /// FindPath traceback steps (one per path move).
    traceback_steps: AtomicU64,
    /// Kernel invocations (fills), a proxy for recursion overhead.
    kernel_calls: AtomicU64,
    /// Currently tracked auxiliary bytes.
    cur_bytes: AtomicI64,
    /// High-water mark of `cur_bytes`.
    peak_bytes: AtomicI64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// DPM entries computed by FindScore-phase kernels.
    pub cells_computed: u64,
    /// Cells computed inside base-case full-matrix solves.
    pub cells_base_case: u64,
    /// FindPath traceback steps.
    pub traceback_steps: u64,
    /// Fill-kernel invocations.
    pub kernel_calls: u64,
    /// Peak tracked auxiliary memory in bytes.
    pub peak_bytes: u64,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Fresh metrics that also log every kernel call to `recorder`.
    pub fn with_recorder(recorder: Arc<Recorder>) -> Self {
        Metrics {
            recorder: Some(recorder),
            ..Metrics::default()
        }
    }

    /// Mirrors every count into `registry` as well (chainable:
    /// `Metrics::new().with_registry(&reg)`), including the per-backend
    /// cell counters keyed by [`Metrics::set_kernel_backend`].
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.sink = Some(Sink::new(registry));
        self
    }

    /// Sets the kernel backend subsequent cells are attributed to.
    /// Callers keep this in lockstep with
    /// [`Recorder::set_kernel_backend`] so the registry's per-backend
    /// totals always equal the trace-derived ones.
    pub fn set_kernel_backend(&self, backend: &str) {
        if let Some(s) = &self.sink {
            let idx = names::backend_index(backend);
            let coded = idx.unwrap_or(usize::MAX);
            // Relaxed: last-writer-wins mode switch; cells recorded
            // around the switch may land on either side, exactly like
            // the recorder's interned-name mutex.
            s.backend_idx.store(coded, Ordering::Relaxed);
            s.backend_gauge.set(idx.map(|i| i as i64).unwrap_or(-1));
        }
    }

    /// The attached event recorder, if tracing is on. Layers above pass
    /// this down so the disabled path stays a `None` check.
    #[inline]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_deref()
    }

    /// Records `n` DPM entries computed by a fill kernel.
    #[inline]
    pub fn add_cells(&self, n: u64) {
        // Relaxed: independent monotonic counters, read only through
        // `snapshot`, which tolerates any interleaving.
        self.cells_computed.fetch_add(n, Ordering::Relaxed);
        self.kernel_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = &self.sink {
            s.cells.add(n);
            s.kernel_calls.inc();
            // Relaxed: reading the current-backend mode; attribution
            // around a switch may land on either side, like the trace.
            let idx = s.backend_idx.load(Ordering::Relaxed);
            s.by_backend.get(idx).unwrap_or(&s.other_backend).add(n);
        }
        if let Some(r) = &self.recorder {
            r.record_kernel(n);
        }
    }

    /// Records `n` DPM entries computed inside a base-case solve (these are
    /// *also* reported through [`Metrics::add_cells`] by the kernel; this
    /// counter just classifies them).
    #[inline]
    pub fn add_base_case_cells(&self, n: u64) {
        self.cells_base_case.fetch_add(n, Ordering::Relaxed); // Relaxed: monotonic counter
        if let Some(s) = &self.sink {
            s.base_cells.add(n);
        }
    }

    /// Records `n` traceback steps.
    #[inline]
    pub fn add_traceback_steps(&self, n: u64) {
        self.traceback_steps.fetch_add(n, Ordering::Relaxed); // Relaxed: monotonic counter
        if let Some(s) = &self.sink {
            s.traceback.add(n);
        }
    }

    /// Tracks an auxiliary allocation of `bytes`, returning a guard that
    /// un-tracks it on drop. Algorithms wrap their large buffers (score
    /// matrices, grid caches, tile buffers) in these guards; tiny
    /// allocations (recursion frames, path vectors) are deliberately not
    /// tracked, matching how the paper counts "space".
    pub fn track_alloc(&self, bytes: usize) -> MemGuard<'_> {
        let b = bytes as i64;
        // Relaxed: the high-water mark is advisory bookkeeping; it orders
        // nothing and tolerates races between concurrent allocators.
        let cur = self.cur_bytes.fetch_add(b, Ordering::Relaxed) + b;
        self.peak_bytes.fetch_max(cur, Ordering::Relaxed);
        if let Some(s) = &self.sink {
            s.tracked.add(b);
            s.tracked_peak.fetch_max(cur);
        }
        MemGuard {
            metrics: self,
            bytes: b,
        }
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            // Relaxed: a snapshot is a best-effort cut — the counters are
            // independent, no consistent cross-counter view is promised.
            cells_computed: self.cells_computed.load(Ordering::Relaxed),
            cells_base_case: self.cells_base_case.load(Ordering::Relaxed),
            traceback_steps: self.traceback_steps.load(Ordering::Relaxed),
            kernel_calls: self.kernel_calls.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed).max(0) as u64,
        }
    }
}

/// RAII guard for one tracked allocation (see [`Metrics::track_alloc`]).
#[derive(Debug)]
pub struct MemGuard<'m> {
    metrics: &'m Metrics,
    bytes: i64,
}

impl Drop for MemGuard<'_> {
    fn drop(&mut self) {
        self.metrics
            .cur_bytes
            // Relaxed: counter bookkeeping only, nothing is published.
            .fetch_sub(self.bytes, Ordering::Relaxed);
        if let Some(s) = &self.metrics.sink {
            s.tracked.sub(self.bytes);
        }
    }
}

impl MetricsSnapshot {
    /// Cells computed per input cell: the paper's "re-computation factor"
    /// (1.0 for FM, ~2.0 for Hirschberg, between 1 and 2 for FastLSA).
    pub fn cell_factor(&self, m: usize, n: usize) -> f64 {
        self.cells_computed as f64 / (m as f64 * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_cells(100);
        m.add_cells(50);
        m.add_base_case_cells(50);
        m.add_traceback_steps(7);
        let s = m.snapshot();
        assert_eq!(s.cells_computed, 150);
        assert_eq!(s.cells_base_case, 50);
        assert_eq!(s.traceback_steps, 7);
        assert_eq!(s.kernel_calls, 2);
    }

    #[test]
    fn peak_memory_tracks_high_water_mark() {
        let m = Metrics::new();
        {
            let _a = m.track_alloc(1000);
            {
                let _b = m.track_alloc(500);
                assert_eq!(m.snapshot().peak_bytes, 1500);
            }
            let _c = m.track_alloc(100);
            // Peak stays at the high-water mark even after frees.
            assert_eq!(m.snapshot().peak_bytes, 1500);
        }
        let _d = m.track_alloc(200);
        assert_eq!(m.snapshot().peak_bytes, 1500);
    }

    #[test]
    fn cell_factor_normalizes_by_problem_area() {
        let m = Metrics::new();
        m.add_cells(200);
        assert!((m.snapshot().cell_factor(10, 10) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Metrics>();
    }

    #[test]
    fn registry_sink_mirrors_counters_and_attributes_backends() {
        let reg = Registry::new();
        let m = Metrics::new().with_registry(&reg);
        m.add_cells(64); // "scalar" until a backend is set
        m.set_kernel_backend("avx2");
        m.add_cells(100);
        m.set_kernel_backend("quantum");
        m.add_cells(5);
        m.add_base_case_cells(64);
        m.add_traceback_steps(9);
        {
            let _g = m.track_alloc(1000);
            assert_eq!(reg.snapshot().gauge(names::TRACKED_BYTES), Some(1000));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::CELLS_TOTAL), Some(169));
        assert_eq!(snap.counter(names::cells_for_backend("scalar")), Some(64));
        assert_eq!(snap.counter(names::cells_for_backend("avx2")), Some(100));
        assert_eq!(snap.counter(names::CELLS_BACKEND_OTHER_TOTAL), Some(5));
        assert_eq!(snap.counter(names::KERNEL_CALLS_TOTAL), Some(3));
        assert_eq!(snap.counter(names::CELLS_BASE_CASE_TOTAL), Some(64));
        assert_eq!(snap.counter(names::TRACEBACK_STEPS_TOTAL), Some(9));
        assert_eq!(snap.gauge(names::TRACKED_BYTES), Some(0));
        assert_eq!(snap.gauge(names::TRACKED_PEAK_BYTES), Some(1000));
        assert_eq!(snap.gauge(names::KERNEL_BACKEND), Some(-1));
        // The plain counters and the mirrored ones agree.
        assert_eq!(
            snap.counter(names::CELLS_TOTAL),
            Some(m.snapshot().cells_computed)
        );
    }

    #[test]
    fn recorder_sees_every_kernel_call() {
        let recorder = Arc::new(Recorder::new());
        let m = Metrics::with_recorder(Arc::clone(&recorder));
        m.add_cells(64);
        m.add_cells(36);
        let trace = recorder.snapshot();
        assert_eq!(trace.kernel_cells(), m.snapshot().cells_computed);
        assert_eq!(trace.events.len(), m.snapshot().kernel_calls as usize);
    }
}

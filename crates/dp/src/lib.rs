//! Dynamic-programming substrate shared by every aligner in the FastLSA
//! reproduction.
//!
//! The paper's algorithms (full-matrix, Hirschberg, FastLSA) all compute
//! the same dynamic-program matrix (DPM) recurrence and differ only in how
//! much of it they *store*. This crate factors the common machinery out:
//!
//! * [`kernel`] — the FindScore recurrences: full-rectangle fill and the
//!   linear-space "last row/column" scan (the paper's `LastRow` routine),
//!   both taking an arbitrary input boundary so they work on any
//!   sub-rectangle of the logical DPM;
//! * [`matrix`] — dense score matrices and the packed 2-bit direction
//!   matrix the paper describes as an FM traceback alternative;
//! * [`boundary`] — input boundaries (cached row + column) for
//!   sub-rectangles;
//! * [`path`] — alignment paths (the FindPath product), validation,
//!   re-scoring, and rendering;
//! * [`traceback`] — the shared backward path-recovery routine with the
//!   deterministic Diag ≻ Up ≻ Left tie-break;
//! * [`metrics`] — operation and memory accounting used to verify the
//!   paper's analytical bounds (Theorems 1–4);
//! * [`simd`] — vectorized kernel backends (SSE4.1, AVX2, AVX-512)
//!   behind the [`simd::Kernel`] dispatch handle, bit-identical to
//!   the scalar kernels;
//! * [`batch`] — the inter-sequence [`batch::BatchKernel`]: many small
//!   independent pairs aligned one-pair-per-SIMD-lane with `i16`
//!   saturation-detect fallback, bit-identical to the scalar path;
//! * [`arena`] — the reusable scratch-buffer pool the vectorized kernels
//!   and the block executors draw from.
//!
//! The only `unsafe` in this crate is the `core::arch` intrinsics in
//! `simd/x86.rs`, confined there by `flsa-check` lint rule R6 and guarded
//! by runtime feature detection.

pub mod affine;
pub mod antidiagonal;
pub mod arena;
pub mod batch;
pub mod boundary;
pub mod kernel;
pub mod matrix;
pub mod metrics;
pub mod path;
pub mod result;
pub mod simd;
pub mod traceback;

pub use arena::KernelArena;
pub use batch::{BatchJob, BatchKernel};
pub use boundary::Boundary;
pub use matrix::{DirMatrix, ScoreMatrix};
pub use metrics::{MemGuard, Metrics, MetricsSnapshot};
pub use path::{Alignment, Move, Path, PathBuilder};
pub use result::AlignResult;
pub use simd::{detected_cpu_features, Kernel, KernelBackend, UnsupportedBackend};

//! Dynamic-programming substrate shared by every aligner in the FastLSA
//! reproduction.
//!
//! The paper's algorithms (full-matrix, Hirschberg, FastLSA) all compute
//! the same dynamic-program matrix (DPM) recurrence and differ only in how
//! much of it they *store*. This crate factors the common machinery out:
//!
//! * [`kernel`] — the FindScore recurrences: full-rectangle fill and the
//!   linear-space "last row/column" scan (the paper's `LastRow` routine),
//!   both taking an arbitrary input boundary so they work on any
//!   sub-rectangle of the logical DPM;
//! * [`matrix`] — dense score matrices and the packed 2-bit direction
//!   matrix the paper describes as an FM traceback alternative;
//! * [`boundary`] — input boundaries (cached row + column) for
//!   sub-rectangles;
//! * [`path`] — alignment paths (the FindPath product), validation,
//!   re-scoring, and rendering;
//! * [`traceback`] — the shared backward path-recovery routine with the
//!   deterministic Diag ≻ Up ≻ Left tie-break;
//! * [`metrics`] — operation and memory accounting used to verify the
//!   paper's analytical bounds (Theorems 1–4).
#![forbid(unsafe_code)]

pub mod affine;
pub mod antidiagonal;
pub mod boundary;
pub mod kernel;
pub mod matrix;
pub mod metrics;
pub mod path;
pub mod result;
pub mod traceback;

pub use boundary::Boundary;
pub use matrix::{DirMatrix, ScoreMatrix};
pub use metrics::{MemGuard, Metrics, MetricsSnapshot};
pub use path::{Alignment, Move, Path, PathBuilder};
pub use result::AlignResult;

//! Anti-diagonal FindScore kernel.
//!
//! The row-major kernels in [`crate::kernel`] have a loop-carried
//! dependency along each row (the `left` input). Processing the DPM by
//! **anti-diagonals** removes it: every cell of a diagonal depends only
//! on the two previous diagonals, so all cells of a diagonal are
//! independent — the fine-grained formulation classic parallel-DP work
//! (e.g. the string-editing literature the paper's §2.3 surveys) builds
//! on, and the in-tile analogue of Parallel FastLSA's tile wavefront.
//!
//! Provided as an alternative sequential kernel with the exact same
//! contract as [`crate::kernel::fill_last_row_col`]; the equivalence is
//! property-tested, and `benches/kernels.rs` compares the memory-access
//! cost of the two traversals.

use flsa_scoring::ScoringScheme;

use crate::boundary::check_boundary;
use crate::Metrics;

/// Anti-diagonal counterpart of [`crate::kernel::fill_last_row_col`]:
/// identical inputs, identical outputs, diagonal-major traversal.
#[allow(clippy::too_many_arguments)] // mirrors the DP recurrence inputs
pub fn fill_last_row_col_antidiagonal(
    a: &[u8],
    b: &[u8],
    top: &[i32],
    left: &[i32],
    scheme: &ScoringScheme,
    out_bottom: &mut [i32],
    mut out_right: Option<&mut [i32]>,
    metrics: &Metrics,
) {
    let rows = a.len();
    let cols = b.len();
    check_boundary(top, left, rows, cols);
    assert_eq!(out_bottom.len(), cols + 1, "out_bottom length");
    if let Some(ref r) = out_right {
        assert_eq!(r.len(), rows + 1, "out_right length");
    }
    let gap = scheme.gap().linear_penalty();
    let matrix = scheme.matrix();

    // diag_k[i] = H(i, d-k-i) for the diagonal being built (k = 0) and
    // the two before it. Index range per diagonal: max(0, d-cols) ..= min(rows, d).
    let mut prev2 = vec![0i32; rows + 1];
    let mut prev1 = vec![0i32; rows + 1];
    let mut cur = vec![0i32; rows + 1];

    for d in 0..=rows + cols {
        let i_lo = d.saturating_sub(cols);
        let i_hi = d.min(rows);
        for i in i_lo..=i_hi {
            let j = d - i;
            let v = if i == 0 {
                top[j]
            } else if j == 0 {
                left[i]
            } else {
                let diag = prev2[i - 1] + matrix.score(a[i - 1], b[j - 1]);
                let up = prev1[i - 1] + gap; // H(i-1, j) lives on diagonal d-1 at index i-1
                let lf = prev1[i] + gap; // H(i, j-1) on diagonal d-1 at index i
                diag.max(up).max(lf)
            };
            cur[i] = v;
            if i == rows {
                out_bottom[j] = v;
            }
            if j == cols {
                if let Some(ref mut r) = out_right {
                    r[i] = v;
                }
            }
        }
        std::mem::swap(&mut prev2, &mut prev1);
        std::mem::swap(&mut prev1, &mut cur);
    }
    metrics.add_cells(rows as u64 * cols as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::fill_last_row_col;
    use crate::Boundary;
    use flsa_scoring::ScoringScheme;
    use flsa_seq::Sequence;
    use proptest::prelude::*;

    fn run_both(a: &[u8], b: &[u8]) -> (Vec<i32>, Vec<i32>, Vec<i32>, Vec<i32>) {
        let scheme = ScoringScheme::dna_default();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let mut b1 = vec![0; b.len() + 1];
        let mut r1 = vec![0; a.len() + 1];
        fill_last_row_col(
            a,
            b,
            &bound.top,
            &bound.left,
            &scheme,
            &mut b1,
            Some(&mut r1),
            &metrics,
        );
        let mut b2 = vec![0; b.len() + 1];
        let mut r2 = vec![0; a.len() + 1];
        fill_last_row_col_antidiagonal(
            a,
            b,
            &bound.top,
            &bound.left,
            &scheme,
            &mut b2,
            Some(&mut r2),
            &metrics,
        );
        (b1, r1, b2, r2)
    }

    #[test]
    fn matches_row_major_kernel_on_fixed_cases() {
        let scheme = ScoringScheme::paper_example();
        let a = Sequence::from_str("a", scheme.alphabet(), "TDVLKAD").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "TLDKLLKD").unwrap();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let mut bottom = vec![0; b.len() + 1];
        fill_last_row_col_antidiagonal(
            a.codes(),
            b.codes(),
            &bound.top,
            &bound.left,
            &scheme,
            &mut bottom,
            None,
            &metrics,
        );
        assert_eq!(bottom[b.len()], 82, "paper example optimum");
    }

    #[test]
    fn handles_degenerate_shapes() {
        for (m, n) in [(0usize, 0usize), (0, 5), (5, 0), (1, 1), (1, 7), (7, 1)] {
            let a = vec![0u8; m];
            let b = vec![1u8; n];
            let (b1, r1, b2, r2) = run_both(&a, &b);
            assert_eq!(b1, b2, "bottom {m}x{n}");
            assert_eq!(r1, r2, "right {m}x{n}");
        }
    }

    proptest! {
        #[test]
        fn equivalent_to_row_major(
            a in prop::collection::vec(0u8..4, 0..60),
            b in prop::collection::vec(0u8..4, 0..60),
        ) {
            let (b1, r1, b2, r2) = run_both(&a, &b);
            prop_assert_eq!(b1, b2);
            prop_assert_eq!(r1, r2);
        }
    }
}

//! Affine-gap DP kernels with arbitrary input boundaries.
//!
//! The paper's algorithms use linear gaps; the affine extension (gap of
//! length `L` costs `open + L·extend`) needs three DP layers (Gotoh):
//!
//! ```text
//! E(i,j) = max(E(i,j−1) + ext, H(i,j−1) + open + ext)   // in a Left run
//! F(i,j) = max(F(i−1,j) + ext, H(i−1,j) + open + ext)   // in an Up run
//! H(i,j) = max(H(i−1,j−1) + S(aᵢ,bⱼ), E(i,j), F(i,j))
//! ```
//!
//! For a *sub-rectangle*, restarting this recurrence needs more boundary
//! state than the linear case: a horizontal grid line must carry `H` and
//! `F` (vertical runs cross it), a vertical one `H` and `E`. These
//! kernels are the affine analogues of [`crate::kernel`]'s, used by the
//! affine FastLSA extension (`fastlsa-core`).

use flsa_scoring::{GapModel, ScoringScheme};

use crate::matrix::ScoreMatrix;
use crate::path::{Move, PathBuilder};
use crate::Metrics;

/// Sentinel "minus infinity" that survives a few additions.
pub const NEG: i32 = i32::MIN / 4;

/// Extracts the affine gap parameters.
///
/// # Panics
///
/// Panics on a linear model — silently treating a linear penalty as
/// affine would corrupt every score.
pub fn affine_params(scheme: &ScoringScheme) -> (i32, i32) {
    match *scheme.gap() {
        GapModel::Affine { open, extend } => (open, extend),
        // flsa-check: allow(panic) — documented caller contract (see above).
        GapModel::Linear { .. } => panic!("affine kernel requires GapModel::Affine"),
    }
}

/// Input boundary of an affine sub-rectangle: `H`/`F` along the top row,
/// `H`/`E` along the left column. `top_v[0]` and `left_e[0]` are never
/// read (no cell consumes them) and may be [`NEG`] placeholders.
#[derive(Debug, Clone, Copy)]
pub struct AffineBoundary<'a> {
    /// `H` on the top row (`cols + 1`).
    pub top_h: &'a [i32],
    /// `F` (vertical-gap state) on the top row.
    pub top_v: &'a [i32],
    /// `H` on the left column (`rows + 1`).
    pub left_h: &'a [i32],
    /// `E` (horizontal-gap state) on the left column.
    pub left_e: &'a [i32],
}

impl AffineBoundary<'_> {
    fn check_boundary(&self, rows: usize, cols: usize) {
        assert_eq!(self.top_h.len(), cols + 1, "top_h length");
        assert_eq!(self.top_v.len(), cols + 1, "top_v length");
        assert_eq!(self.left_h.len(), rows + 1, "left_h length");
        assert_eq!(self.left_e.len(), rows + 1, "left_e length");
        assert_eq!(self.top_h[0], self.left_h[0], "boundary corner mismatch");
    }
}

/// Owned global boundary of the whole problem: the gap ramp
/// `H(0,j) = open + extend·j`, with the gap states unreachable.
#[derive(Debug, Clone)]
pub struct AffineGlobalBoundary {
    /// `H` top row.
    pub top_h: Vec<i32>,
    /// `F` top row (all [`NEG`]: no vertical run can precede row 0).
    pub top_v: Vec<i32>,
    /// `H` left column.
    pub left_h: Vec<i32>,
    /// `E` left column (all [`NEG`]).
    pub left_e: Vec<i32>,
}

impl AffineGlobalBoundary {
    /// Builds the boundary for an `rows × cols` global problem.
    pub fn new(rows: usize, cols: usize, open: i32, extend: i32) -> Self {
        let ramp = |len: usize| -> Vec<i32> {
            (0..=len)
                .map(|k| if k == 0 { 0 } else { open + extend * k as i32 })
                .collect()
        };
        AffineGlobalBoundary {
            top_h: ramp(cols),
            top_v: vec![NEG; cols + 1],
            left_h: ramp(rows),
            left_e: vec![NEG; rows + 1],
        }
    }

    /// Borrowed view.
    pub fn view(&self) -> AffineBoundary<'_> {
        AffineBoundary {
            top_h: &self.top_h,
            top_v: &self.top_v,
            left_h: &self.left_h,
            left_e: &self.left_e,
        }
    }
}

/// Output edges of an affine rectangle fill.
#[derive(Debug, Clone)]
pub struct AffineEdges {
    /// `H` on the bottom row (`cols + 1`).
    pub bottom_h: Vec<i32>,
    /// `F` on the bottom row.
    pub bottom_v: Vec<i32>,
    /// `H` on the right column (`rows + 1`).
    pub right_h: Vec<i32>,
    /// `E` on the right column.
    pub right_e: Vec<i32>,
}

impl AffineEdges {
    /// Returns the four edge buffers to `arena` for reuse. Pair with
    /// [`fill_affine_edges_in`] once the edges have been copied out.
    pub fn recycle(self, arena: &crate::KernelArena) {
        arena.put(self.bottom_h);
        arena.put(self.bottom_v);
        arena.put(self.right_h);
        arena.put(self.right_e);
    }
}

/// Rolling-row fill returning the rectangle's bottom and right edges
/// (the affine analogue of [`crate::kernel::fill_last_row_col`]).
pub fn fill_affine_edges(
    a: &[u8],
    b: &[u8],
    bnd: AffineBoundary<'_>,
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> AffineEdges {
    let (rows, cols) = (a.len(), b.len());
    let mut edges = AffineEdges {
        bottom_h: vec![0; cols + 1],
        bottom_v: vec![0; cols + 1],
        right_h: vec![0; rows + 1],
        right_e: vec![0; rows + 1],
    };
    fill_affine_edges_into(a, b, bnd, scheme, &mut edges, metrics);
    edges
}

/// [`fill_affine_edges`] with all four output buffers drawn from an
/// arena instead of freshly allocated — identical results. Return the
/// buffers with [`AffineEdges::recycle`] once the caller has copied the
/// edges out, so repeated block fills are allocation-free.
pub fn fill_affine_edges_in(
    a: &[u8],
    b: &[u8],
    bnd: AffineBoundary<'_>,
    scheme: &ScoringScheme,
    arena: &crate::KernelArena,
    metrics: &Metrics,
) -> AffineEdges {
    let (rows, cols) = (a.len(), b.len());
    let mut edges = AffineEdges {
        bottom_h: arena.take(cols + 1),
        bottom_v: arena.take(cols + 1),
        right_h: arena.take(rows + 1),
        right_e: arena.take(rows + 1),
    };
    fill_affine_edges_into(a, b, bnd, scheme, &mut edges, metrics);
    edges
}

/// The rolling-row core shared by the allocating and arena-backed entry
/// points. `edges` must hold four buffers of exactly `cols + 1` /
/// `rows + 1` elements; prior contents are overwritten.
fn fill_affine_edges_into(
    a: &[u8],
    b: &[u8],
    bnd: AffineBoundary<'_>,
    scheme: &ScoringScheme,
    edges: &mut AffineEdges,
    metrics: &Metrics,
) {
    let (rows, cols) = (a.len(), b.len());
    bnd.check_boundary(rows, cols);
    let (open, extend) = affine_params(scheme);
    let matrix = scheme.matrix();

    let h_row = &mut edges.bottom_h;
    let v_row = &mut edges.bottom_v;
    let right_h = &mut edges.right_h;
    let right_e = &mut edges.right_e;
    h_row.copy_from_slice(bnd.top_h);
    v_row.copy_from_slice(bnd.top_v);
    right_h.fill(NEG);
    right_e.fill(NEG);
    right_h[0] = bnd.top_h[cols];
    for i in 1..=rows {
        let ai = a[i - 1];
        let mut diag = h_row[0];
        h_row[0] = bnd.left_h[i];
        let mut e_reg = bnd.left_e[i];
        let mut h_left = h_row[0];
        for j in 1..=cols {
            let up_h = h_row[j];
            let v_new = (v_row[j] + extend).max(up_h + open + extend);
            e_reg = (e_reg + extend).max(h_left + open + extend);
            let h_new = (diag + matrix.score(ai, b[j - 1])).max(v_new).max(e_reg);
            v_row[j] = v_new;
            h_row[j] = h_new;
            h_left = h_new;
            diag = up_h;
        }
        right_h[i] = h_row[cols];
        right_e[i] = if cols == 0 { bnd.left_e[i] } else { e_reg };
    }
    metrics.add_cells(rows as u64 * cols as u64);
}

/// The three filled layers of an affine rectangle.
#[derive(Debug, Clone)]
pub struct AffineMatrices {
    /// Overall best scores.
    pub h: ScoreMatrix,
    /// Best ending in a Left (horizontal-gap) run.
    pub e: ScoreMatrix,
    /// Best ending in an Up (vertical-gap) run.
    pub f: ScoreMatrix,
}

/// Full fill of all three layers (the affine base-case solver).
pub fn fill_affine_full(
    a: &[u8],
    b: &[u8],
    bnd: AffineBoundary<'_>,
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> AffineMatrices {
    let (rows, cols) = (a.len(), b.len());
    bnd.check_boundary(rows, cols);
    let (open, extend) = affine_params(scheme);
    let matrix = scheme.matrix();

    let mut h = ScoreMatrix::new(rows, cols);
    let mut e = ScoreMatrix::new(rows, cols);
    let mut f = ScoreMatrix::new(rows, cols);
    for j in 0..=cols {
        h.set(0, j, bnd.top_h[j]);
        f.set(0, j, bnd.top_v[j]);
        e.set(0, j, NEG);
    }
    for i in 1..=rows {
        h.set(i, 0, bnd.left_h[i]);
        e.set(i, 0, bnd.left_e[i]);
        f.set(i, 0, NEG);
    }
    for i in 1..=rows {
        let ai = a[i - 1];
        for j in 1..=cols {
            let ev = (e.get(i, j - 1) + extend).max(h.get(i, j - 1) + open + extend);
            let fv = (f.get(i - 1, j) + extend).max(h.get(i - 1, j) + open + extend);
            let hv = (h.get(i - 1, j - 1) + matrix.score(ai, b[j - 1]))
                .max(ev)
                .max(fv);
            e.set(i, j, ev);
            f.set(i, j, fv);
            h.set(i, j, hv);
        }
    }
    metrics.add_cells(rows as u64 * cols as u64);
    AffineMatrices { h, e, f }
}

/// Which DP layer a traceback position is in — the extra state an affine
/// path head carries across sub-problem boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapState {
    /// At a match/mismatch node.
    H,
    /// Inside a horizontal (Left) gap run.
    E,
    /// Inside a vertical (Up) gap run.
    F,
}

/// Walks the filled layers backwards from `start` in `state` until the
/// head reaches the rectangle's top row or left column, prepending moves
/// to `out`. Returns the exit position and the state the path is in
/// there (`E`/`F` mean a gap run crosses the boundary, its open cost
/// already charged on this side).
#[allow(clippy::too_many_arguments)] // mirrors the DP recurrence inputs
pub fn trace_affine(
    mats: &AffineMatrices,
    a: &[u8],
    b: &[u8],
    scheme: &ScoringScheme,
    start: (usize, usize),
    state: GapState,
    out: &mut PathBuilder,
    metrics: &Metrics,
) -> ((usize, usize), GapState) {
    let (open, extend) = affine_params(scheme);
    let matrix = scheme.matrix();
    let (mut i, mut j) = start;
    assert!(i <= a.len() && j <= b.len(), "traceback start out of range");
    let mut state = state;
    let mut steps = 0u64;
    loop {
        match state {
            GapState::H => {
                if i == 0 || j == 0 {
                    break;
                }
                let v = mats.h.get(i, j);
                if mats.h.get(i - 1, j - 1) + matrix.score(a[i - 1], b[j - 1]) == v {
                    out.push_back(Move::Diag);
                    steps += 1;
                    i -= 1;
                    j -= 1;
                } else if mats.f.get(i, j) == v {
                    state = GapState::F;
                } else if mats.e.get(i, j) == v {
                    state = GapState::E;
                } else {
                    // flsa-check: allow(panic) — unreachable unless the DPM is corrupt.
                    panic!("affine traceback stuck in H at ({i},{j})");
                }
            }
            GapState::F => {
                if i == 0 {
                    break;
                }
                let v = mats.f.get(i, j);
                out.push_back(Move::Up);
                steps += 1;
                let from_h = mats.h.get(i - 1, j) + open + extend == v;
                let from_f = mats.f.get(i - 1, j) + extend == v;
                i -= 1;
                state = if from_h {
                    GapState::H
                } else if from_f {
                    GapState::F
                } else {
                    // flsa-check: allow(panic) — unreachable unless the DPM is corrupt.
                    panic!("affine traceback stuck in F at ({},{j})", i + 1);
                };
            }
            GapState::E => {
                if j == 0 {
                    break;
                }
                let v = mats.e.get(i, j);
                out.push_back(Move::Left);
                steps += 1;
                let from_h = mats.h.get(i, j - 1) + open + extend == v;
                let from_e = mats.e.get(i, j - 1) + extend == v;
                j -= 1;
                state = if from_h {
                    GapState::H
                } else if from_e {
                    GapState::E
                } else {
                    // flsa-check: allow(panic) — unreachable unless the DPM is corrupt.
                    panic!("affine traceback stuck in E at ({i},{})", j + 1);
                };
            }
        }
    }
    metrics.add_traceback_steps(steps);
    ((i, j), state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_scoring::tables;
    use flsa_seq::Sequence;

    fn scheme() -> ScoringScheme {
        ScoringScheme::new(tables::dna_default(), GapModel::affine(-10, -2))
    }

    fn dna(s: &str) -> Vec<u8> {
        Sequence::from_str("s", scheme().alphabet(), s)
            .unwrap()
            .codes()
            .to_vec()
    }

    #[test]
    fn full_fill_corner_matches_gotoh() {
        let scheme = scheme();
        let a = dna("ACGTTGCA");
        let b = dna("ACGTGCAA");
        let bnd = AffineGlobalBoundary::new(a.len(), b.len(), -10, -2);
        let metrics = Metrics::new();
        let mats = fill_affine_full(&a, &b, bnd.view(), &scheme, &metrics);

        let sa = Sequence::from_codes("a", scheme.alphabet(), a.clone());
        let sb = Sequence::from_codes("b", scheme.alphabet(), b.clone());
        let g = flsa_fullmatrix_oracle(&sa, &sb, &scheme);
        assert_eq!(mats.h.get(a.len(), b.len()) as i64, g);
    }

    /// Direct Gotoh re-implementation as an in-crate oracle (flsa-dp
    /// cannot depend on flsa-fullmatrix).
    fn flsa_fullmatrix_oracle(a: &Sequence, b: &Sequence, scheme: &ScoringScheme) -> i64 {
        let (open, extend) = affine_params(scheme);
        let (m, n) = (a.len(), b.len());
        let mut h = vec![vec![0i64; n + 1]; m + 1];
        let mut e = vec![vec![NEG as i64; n + 1]; m + 1];
        let mut f = vec![vec![NEG as i64; n + 1]; m + 1];
        for j in 1..=n {
            h[0][j] = (open + extend * j as i32) as i64;
            e[0][j] = h[0][j];
        }
        for i in 1..=m {
            h[i][0] = (open + extend * i as i32) as i64;
            f[i][0] = h[i][0];
        }
        for i in 1..=m {
            for j in 1..=n {
                e[i][j] = (e[i][j - 1] + extend as i64).max(h[i][j - 1] + (open + extend) as i64);
                f[i][j] = (f[i - 1][j] + extend as i64).max(h[i - 1][j] + (open + extend) as i64);
                h[i][j] = (h[i - 1][j - 1] + scheme.sub(a.codes()[i - 1], b.codes()[j - 1]) as i64)
                    .max(e[i][j])
                    .max(f[i][j]);
            }
        }
        h[m][n]
    }

    #[test]
    fn edges_match_full_fill() {
        let scheme = scheme();
        let a = dna("ACGTTGCAT");
        let b = dna("ACGTGCA");
        let bnd = AffineGlobalBoundary::new(a.len(), b.len(), -10, -2);
        let metrics = Metrics::new();
        let mats = fill_affine_full(&a, &b, bnd.view(), &scheme, &metrics);
        let edges = fill_affine_edges(&a, &b, bnd.view(), &scheme, &metrics);
        assert_eq!(&edges.bottom_h[..], mats.h.row(a.len()));
        assert_eq!(&edges.bottom_v[..], mats.f.row(a.len()));
        assert_eq!(edges.right_h, mats.h.col(b.len()));
        // right_e[0] is a placeholder; compare the rest.
        assert_eq!(&edges.right_e[1..], &mats.e.col(b.len())[1..]);
    }

    #[test]
    fn fills_compose_across_a_vertical_split() {
        // Fill the left half, feed its right edge (H + E) into the right
        // half: the result must equal the whole-rectangle fill. This is
        // the property affine FastLSA's grid cache rests on.
        let scheme = scheme();
        let a = dna("ACGTTGCATTACG");
        let b = dna("ACGTGCAATTGCA");
        let bnd = AffineGlobalBoundary::new(a.len(), b.len(), -10, -2);
        let metrics = Metrics::new();
        let whole = fill_affine_full(&a, &b, bnd.view(), &scheme, &metrics);

        let split = 6;
        let left = fill_affine_full(
            &a,
            &b[..split],
            AffineBoundary {
                top_h: &bnd.top_h[..=split],
                top_v: &bnd.top_v[..=split],
                left_h: &bnd.left_h,
                left_e: &bnd.left_e,
            },
            &scheme,
            &metrics,
        );
        let mid_h = left.h.col(split);
        let mid_e = left.e.col(split);
        let right = fill_affine_full(
            &a,
            &b[split..],
            AffineBoundary {
                top_h: &bnd.top_h[split..],
                top_v: &bnd.top_v[split..],
                left_h: &mid_h,
                left_e: &mid_e,
            },
            &scheme,
            &metrics,
        );
        for i in 0..=a.len() {
            for j in 0..=(b.len() - split) {
                assert_eq!(right.h.get(i, j), whole.h.get(i, j + split), "H ({i},{j})");
            }
        }
    }

    #[test]
    fn fills_compose_across_a_horizontal_split() {
        let scheme = scheme();
        let a = dna("ACGTTGCATTACG");
        let b = dna("ACGTGCAATT");
        let bnd = AffineGlobalBoundary::new(a.len(), b.len(), -10, -2);
        let metrics = Metrics::new();
        let whole = fill_affine_full(&a, &b, bnd.view(), &scheme, &metrics);

        let split = 7;
        let top = fill_affine_full(
            &a[..split],
            &b,
            AffineBoundary {
                top_h: &bnd.top_h,
                top_v: &bnd.top_v,
                left_h: &bnd.left_h[..=split],
                left_e: &bnd.left_e[..=split],
            },
            &scheme,
            &metrics,
        );
        let mid_h = top.h.row(split).to_vec();
        let mid_v = top.f.row(split).to_vec();
        let bottom = fill_affine_full(
            &a[split..],
            &b,
            AffineBoundary {
                top_h: &mid_h,
                top_v: &mid_v,
                left_h: &bnd.left_h[split..],
                left_e: &bnd.left_e[split..],
            },
            &scheme,
            &metrics,
        );
        for i in 0..=(a.len() - split) {
            assert_eq!(bottom.h.row(i), whole.h.row(i + split), "row {i}");
        }
    }

    #[test]
    fn trace_recovers_an_optimal_affine_path() {
        let scheme = scheme();
        let a = dna("AAAACCAAAA");
        let b = dna("AAAAAAAA");
        let bnd = AffineGlobalBoundary::new(a.len(), b.len(), -10, -2);
        let metrics = Metrics::new();
        let mats = fill_affine_full(&a, &b, bnd.view(), &scheme, &metrics);
        let mut builder = PathBuilder::new();
        let ((ei, ej), st) = trace_affine(
            &mats,
            &a,
            &b,
            &scheme,
            (a.len(), b.len()),
            GapState::H,
            &mut builder,
            &metrics,
        );
        assert_eq!((ei, ej), (0, 0));
        assert_eq!(st, GapState::H);
        let path = builder.finish((0, 0));
        assert!(path.is_global(a.len(), b.len()));
        // Optimal: 8 matches (+40) and one length-2 gap (-14) = 26.
        assert_eq!(mats.h.get(a.len(), b.len()), 26);
    }

    #[test]
    #[should_panic(expected = "requires GapModel::Affine")]
    fn linear_scheme_rejected() {
        let scheme = ScoringScheme::dna_default();
        affine_params(&scheme);
    }
}

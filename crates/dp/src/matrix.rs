//! Dense matrices over DPM rectangles.

/// A dense `(rows+1) × (cols+1)` score matrix including the input boundary
/// as row 0 and column 0 (the paper's DPM layout, Figure 1).
///
/// Row-major storage; `rows`/`cols` count *residues*, so the matrix has one
/// more row and column than the rectangle has residues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i32>,
}

impl ScoreMatrix {
    /// Allocates a zeroed matrix for an `rows × cols` residue rectangle.
    pub fn new(rows: usize, cols: usize) -> Self {
        ScoreMatrix {
            rows,
            cols,
            data: vec![0; (rows + 1) * (cols + 1)],
        }
    }

    /// Builds a matrix reusing `storage` (resized as needed, contents
    /// overwritten with zeros only where grown). FastLSA recycles one
    /// buffer — the paper's pre-allocated Base Case buffer — across every
    /// base-case solve; see [`ScoreMatrix::into_vec`].
    pub fn from_storage(rows: usize, cols: usize, mut storage: Vec<i32>) -> Self {
        storage.resize((rows + 1) * (cols + 1), 0);
        ScoreMatrix {
            rows,
            cols,
            data: storage,
        }
    }

    /// Builds a matrix from a filled row-major vector of exactly
    /// `(rows+1)·(cols+1)` entries (used by the parallel base-case fill,
    /// which computes the entries in shared memory first).
    ///
    /// # Panics
    ///
    /// Panics on a size mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i32>) -> Self {
        assert_eq!(data.len(), (rows + 1) * (cols + 1), "score vector size");
        ScoreMatrix { rows, cols, data }
    }

    /// Consumes the matrix, returning its storage for reuse.
    pub fn into_vec(self) -> Vec<i32> {
        self.data
    }

    /// Residue rows (matrix has `rows + 1` score rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Residue columns (matrix has `cols + 1` score columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bytes of score storage (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i32>()
    }

    /// Score at `(i, j)`, `0 ≤ i ≤ rows`, `0 ≤ j ≤ cols`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> i32 {
        debug_assert!(i <= self.rows && j <= self.cols);
        self.data[i * (self.cols + 1) + j]
    }

    /// Sets the score at `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: i32) {
        debug_assert!(i <= self.rows && j <= self.cols);
        self.data[i * (self.cols + 1) + j] = v;
    }

    /// Immutable view of score row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[i32] {
        let w = self.cols + 1;
        &self.data[i * w..(i + 1) * w]
    }

    /// Mutable view of score row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [i32] {
        let w = self.cols + 1;
        &mut self.data[i * w..(i + 1) * w]
    }

    /// Copies score column `j` out (columns are strided, so this allocates).
    pub fn col(&self, j: usize) -> Vec<i32> {
        (0..=self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Two rows at once, `i0 < i1`, the first immutable and the second
    /// mutable — the DP fill's access pattern (read row above, write row
    /// below) without cloning.
    #[inline]
    pub fn rows_prev_cur(&mut self, i: usize) -> (&[i32], &mut [i32]) {
        debug_assert!(i >= 1 && i <= self.rows);
        let w = self.cols + 1;
        let (a, b) = self.data.split_at_mut(i * w);
        (&a[(i - 1) * w..], &mut b[..w])
    }
}

/// Traceback direction of one DPM entry.
///
/// The paper (Section 2.1) notes an FM implementation can store the
/// backward path in 2 bits per entry when only a single optimal path is
/// needed; [`DirMatrix`] is that representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Dir {
    /// Predecessor is `(i-1, j-1)` (match/mismatch).
    Diag = 0,
    /// Predecessor is `(i-1, j)` (gap in the horizontal sequence).
    Up = 1,
    /// Predecessor is `(i, j-1)` (gap in the vertical sequence).
    Left = 2,
    /// No predecessor (boundary cells / Smith-Waterman local start).
    Stop = 3,
}

impl Dir {
    fn from_bits(b: u8) -> Dir {
        match b & 3 {
            0 => Dir::Diag,
            1 => Dir::Up,
            2 => Dir::Left,
            _ => Dir::Stop,
        }
    }
}

/// A packed 2-bit-per-entry direction matrix over a `(rows+1) × (cols+1)`
/// DPM (¼ byte per entry vs 4 bytes for scores — the paper's memory
/// argument for direction-based FM traceback).
#[derive(Debug, Clone)]
pub struct DirMatrix {
    rows: usize,
    cols: usize,
    bits: Vec<u8>,
}

impl DirMatrix {
    /// Allocates a direction matrix initialized to [`Dir::Stop`].
    pub fn new(rows: usize, cols: usize) -> Self {
        let entries = (rows + 1) * (cols + 1);
        DirMatrix {
            rows,
            cols,
            bits: vec![0xFF; entries.div_ceil(4)],
        }
    }

    /// Residue rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Residue columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bytes of packed storage (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.bits.len()
    }

    #[inline(always)]
    fn index(&self, i: usize, j: usize) -> (usize, u32) {
        debug_assert!(i <= self.rows && j <= self.cols);
        let linear = i * (self.cols + 1) + j;
        (linear / 4, (linear % 4) as u32 * 2)
    }

    /// Direction at `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> Dir {
        let (byte, shift) = self.index(i, j);
        Dir::from_bits(self.bits[byte] >> shift)
    }

    /// Sets the direction at `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, d: Dir) {
        let (byte, shift) = self.index(i, j);
        self.bits[byte] = (self.bits[byte] & !(3 << shift)) | ((d as u8) << shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_matrix_get_set_round_trip() {
        let mut m = ScoreMatrix::new(3, 5);
        m.set(0, 0, 7);
        m.set(3, 5, -42);
        m.set(2, 4, 13);
        assert_eq!(m.get(0, 0), 7);
        assert_eq!(m.get(3, 5), -42);
        assert_eq!(m.get(2, 4), 13);
    }

    #[test]
    fn rows_prev_cur_exposes_adjacent_rows() {
        let mut m = ScoreMatrix::new(2, 2);
        m.set(0, 1, 5);
        {
            let (prev, cur) = m.rows_prev_cur(1);
            assert_eq!(prev[1], 5);
            cur[2] = 9;
        }
        assert_eq!(m.get(1, 2), 9);
    }

    #[test]
    fn col_extracts_strided_column() {
        let mut m = ScoreMatrix::new(2, 3);
        m.set(0, 2, 1);
        m.set(1, 2, 2);
        m.set(2, 2, 3);
        assert_eq!(m.col(2), vec![1, 2, 3]);
    }

    #[test]
    fn bytes_counts_full_matrix() {
        let m = ScoreMatrix::new(9, 9);
        assert_eq!(m.bytes(), 100 * 4);
    }

    #[test]
    fn dir_matrix_round_trips_all_values() {
        let mut d = DirMatrix::new(4, 4);
        // Every cell starts as Stop.
        assert_eq!(d.get(2, 2), Dir::Stop);
        let dirs = [Dir::Diag, Dir::Up, Dir::Left, Dir::Stop];
        for i in 0..=4 {
            for j in 0..=4 {
                d.set(i, j, dirs[(i * 5 + j) % 4]);
            }
        }
        for i in 0..=4 {
            for j in 0..=4 {
                assert_eq!(d.get(i, j), dirs[(i * 5 + j) % 4], "at ({i},{j})");
            }
        }
    }

    #[test]
    fn dir_matrix_is_quarter_byte_per_entry() {
        let d = DirMatrix::new(99, 99);
        assert_eq!(d.bytes(), (100 * 100usize).div_ceil(4));
    }
}

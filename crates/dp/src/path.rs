//! Alignment paths — the product of the FindPath phase.

use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

/// One step of an alignment path through the DPM (Figure 1's moves).
///
/// Coordinates: `i` indexes the *vertical* sequence `a` (rows), `j` the
/// *horizontal* sequence `b` (columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Move {
    /// `(i-1, j-1) → (i, j)`: align `a[i-1]` with `b[j-1]`.
    Diag,
    /// `(i-1, j) → (i, j)`: align `a[i-1]` with a gap.
    Up,
    /// `(i, j-1) → (i, j)`: align a gap with `b[j-1]`.
    Left,
}

impl Move {
    /// Stable wire encoding (checkpoint snapshots): Diag 0, Up 1, Left 2.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Move::code`]; `None` for bytes outside the encoding.
    pub fn from_code(code: u8) -> Option<Move> {
        match code {
            0 => Some(Move::Diag),
            1 => Some(Move::Up),
            2 => Some(Move::Left),
            _ => None,
        }
    }
}

/// A monotone path through the DPM from `start` (inclusive) following
/// `moves` in order. A complete global alignment starts at `(0, 0)` and
/// ends at `(m, n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    start: (usize, usize),
    moves: Vec<Move>,
}

impl Path {
    /// Builds a path from a start coordinate and a forward move list.
    pub fn new(start: (usize, usize), moves: Vec<Move>) -> Self {
        Path { start, moves }
    }

    /// The path's first DPM coordinate.
    pub fn start(&self) -> (usize, usize) {
        self.start
    }

    /// The path's last DPM coordinate.
    pub fn end(&self) -> (usize, usize) {
        let (mut i, mut j) = self.start;
        for m in &self.moves {
            match m {
                Move::Diag => {
                    i += 1;
                    j += 1;
                }
                Move::Up => i += 1,
                Move::Left => j += 1,
            }
        }
        (i, j)
    }

    /// The forward move list.
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// Number of moves (aligned columns in the rendered alignment).
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// True for the empty path.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Checks that this is a complete global path for sequences of length
    /// `m` (vertical) and `n` (horizontal).
    pub fn is_global(&self, m: usize, n: usize) -> bool {
        self.start == (0, 0) && self.end() == (m, n)
    }

    /// Re-scores the path under `scheme` — the independent check that a
    /// reported optimal score is actually achieved by the reported path.
    ///
    /// # Panics
    ///
    /// Panics when the path walks outside the sequences.
    pub fn score(&self, a: &Sequence, b: &Sequence, scheme: &ScoringScheme) -> i64 {
        let gap = scheme.gap().linear_penalty() as i64;
        let (mut i, mut j) = self.start;
        let mut total = 0i64;
        for m in &self.moves {
            match m {
                Move::Diag => {
                    total += scheme.sub(a.codes()[i], b.codes()[j]) as i64;
                    i += 1;
                    j += 1;
                }
                Move::Up => {
                    total += gap;
                    i += 1;
                }
                Move::Left => {
                    total += gap;
                    j += 1;
                }
            }
        }
        total
    }

    /// Counts of (diagonal, up, left) moves.
    pub fn move_counts(&self) -> (usize, usize, usize) {
        let mut d = 0;
        let mut u = 0;
        let mut l = 0;
        for m in &self.moves {
            match m {
                Move::Diag => d += 1,
                Move::Up => u += 1,
                Move::Left => l += 1,
            }
        }
        (d, u, l)
    }
}

/// Builds a path *backwards*, the way every traceback produces it: moves
/// are pushed from the path's end toward its start, then [`PathBuilder::finish`]
/// reverses once.
///
/// This is the paper's `flsaPath` accumulator: FastLSA repeatedly prepends
/// path fragments as it walks sub-problems from the bottom-right toward the
/// top-left.
#[derive(Debug, Default)]
pub struct PathBuilder {
    rev_moves: Vec<Move>,
}

impl PathBuilder {
    /// An empty builder (path head at the global end coordinate).
    pub fn new() -> Self {
        PathBuilder::default()
    }

    /// Prepends one move (the move *entering* the current head position).
    #[inline]
    pub fn push_back(&mut self, m: Move) {
        self.rev_moves.push(m);
    }

    /// Prepends a whole fragment given end-to-start (the order tracebacks
    /// naturally produce).
    pub fn extend_back(&mut self, rev_fragment: impl IntoIterator<Item = Move>) {
        self.rev_moves.extend(rev_fragment);
    }

    /// Rebuilds a builder from a reversed move list previously captured
    /// with [`PathBuilder::rev_moves`] (checkpoint/resume support).
    pub fn from_rev_moves(rev_moves: Vec<Move>) -> Self {
        PathBuilder { rev_moves }
    }

    /// The moves prepended so far, in prepend order (path end toward path
    /// start). Snapshotting this and feeding it back through
    /// [`PathBuilder::from_rev_moves`] reproduces the builder exactly.
    pub fn rev_moves(&self) -> &[Move] {
        &self.rev_moves
    }

    /// Moves prepended so far.
    pub fn len(&self) -> usize {
        self.rev_moves.len()
    }

    /// True when nothing has been prepended.
    pub fn is_empty(&self) -> bool {
        self.rev_moves.is_empty()
    }

    /// Finalizes into a forward [`Path`] starting at `start`.
    pub fn finish(mut self, start: (usize, usize)) -> Path {
        self.rev_moves.reverse();
        Path::new(start, self.rev_moves)
    }
}

/// A rendered pairwise alignment: the two sequences with gap characters
/// inserted, plus the paper-style match line (`*` identical, `|` positive
/// similarity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Aligned vertical sequence (gaps as `-`).
    pub aligned_a: String,
    /// Aligned horizontal sequence (gaps as `-`).
    pub aligned_b: String,
    /// Per-column annotation: `*` identical, `|` similarity > 0, space
    /// otherwise.
    pub markers: String,
}

impl Alignment {
    /// Renders `path` over the two sequences.
    ///
    /// # Panics
    ///
    /// Panics when the path is not a complete global path for `a`/`b`.
    pub fn from_path(a: &Sequence, b: &Sequence, path: &Path, scheme: &ScoringScheme) -> Self {
        assert!(
            path.is_global(a.len(), b.len()),
            "alignment rendering requires a complete global path"
        );
        let alpha = a.alphabet();
        let mut aligned_a = String::with_capacity(path.len());
        let mut aligned_b = String::with_capacity(path.len());
        let mut markers = String::with_capacity(path.len());
        let (mut i, mut j) = (0usize, 0usize);
        for m in path.moves() {
            match m {
                Move::Diag => {
                    let ca = a.codes()[i];
                    let cb = b.codes()[j];
                    aligned_a.push(alpha.decode(ca));
                    aligned_b.push(alpha.decode(cb));
                    markers.push(if ca == cb {
                        '*'
                    } else if scheme.sub(ca, cb) > 0 {
                        '|'
                    } else {
                        ' '
                    });
                    i += 1;
                    j += 1;
                }
                Move::Up => {
                    aligned_a.push(alpha.decode(a.codes()[i]));
                    aligned_b.push('-');
                    markers.push(' ');
                    i += 1;
                }
                Move::Left => {
                    aligned_a.push('-');
                    aligned_b.push(alpha.decode(b.codes()[j]));
                    markers.push(' ');
                    j += 1;
                }
            }
        }
        Alignment {
            aligned_a,
            aligned_b,
            markers,
        }
    }

    /// Fraction of columns that are identical residues.
    pub fn identity(&self) -> f64 {
        if self.markers.is_empty() {
            return 0.0;
        }
        let stars = self.markers.chars().filter(|&c| c == '*').count();
        stars as f64 / self.markers.len() as f64
    }
}

impl std::fmt::Display for Alignment {
    /// Block-wrapped rendering (60 columns per block), the conventional
    /// pairwise-alignment report format.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const W: usize = 60;
        let a = self.aligned_a.as_bytes();
        let b = self.aligned_b.as_bytes();
        let m = self.markers.as_bytes();
        let mut pos = 0;
        while pos < a.len() {
            let end = (pos + W).min(a.len());
            writeln!(f, "{}", String::from_utf8_lossy(&a[pos..end]))?;
            writeln!(f, "{}", String::from_utf8_lossy(&m[pos..end]))?;
            writeln!(f, "{}", String::from_utf8_lossy(&b[pos..end]))?;
            if end < a.len() {
                writeln!(f)?;
            }
            pos = end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_seq::Alphabet;

    fn paper_seqs() -> (Sequence, Sequence, ScoringScheme) {
        let scheme = ScoringScheme::paper_example();
        let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
        (a, b, scheme)
    }

    /// The paper's first alignment: TLDKLLK-D / T-DVL-KAD.
    fn paper_alignment_1() -> Vec<Move> {
        use Move::*;
        // T/T, L/-, D/D, K/V, L/L, L/-, K/K, -/A, D/D
        vec![Diag, Up, Diag, Diag, Diag, Up, Diag, Left, Diag]
    }

    /// The paper's second alignment: TLDKLLK-D / T-D-VLKAD.
    fn paper_alignment_2() -> Vec<Move> {
        use Move::*;
        // T/T, L/-, D/D, K/-, L/V, L/L, K/K, -/A, D/D
        vec![Diag, Up, Diag, Up, Diag, Diag, Diag, Left, Diag]
    }

    #[test]
    fn paper_example_alignment_scores_82() {
        let (a, b, scheme) = paper_seqs();
        let p = Path::new((0, 0), paper_alignment_2());
        assert!(p.is_global(a.len(), b.len()));
        assert_eq!(p.score(&a, &b, &scheme), 82);
    }

    #[test]
    fn paper_alternative_alignment_also_scores_82() {
        // The paper notes two distinct optimal alignments with 5 aligned
        // identities; the first trades K/V + L/L for L/V + the same rest.
        let (a, b, scheme) = paper_seqs();
        let p = Path::new((0, 0), paper_alignment_1());
        assert!(p.is_global(a.len(), b.len()));
        // TLDKLLK-D / T-DVL-KAD: 20 -10 +20 +0 +20 -10 +20 -10 +20 = 70.
        // (This variant aligns K with V, score 0, so it is *not* optimal —
        // the optimal second variant aligns L with V for +12.)
        assert_eq!(p.score(&a, &b, &scheme), 70);
    }

    #[test]
    fn end_tracks_moves() {
        use Move::*;
        let p = Path::new((2, 3), vec![Diag, Left, Up, Diag]);
        assert_eq!(p.end(), (5, 6));
        assert_eq!(p.move_counts(), (2, 1, 1));
    }

    #[test]
    fn builder_reverses_once() {
        use Move::*;
        let mut b = PathBuilder::new();
        // Traceback order: last move first.
        b.push_back(Diag);
        b.push_back(Left);
        b.push_back(Up);
        let p = b.finish((0, 0));
        assert_eq!(p.moves(), &[Up, Left, Diag]);
        assert_eq!(p.end(), (2, 2));
    }

    #[test]
    fn alignment_renders_paper_example() {
        let (a, b, scheme) = paper_seqs();
        let p = Path::new((0, 0), paper_alignment_2());
        let al = Alignment::from_path(&a, &b, &p, &scheme);
        assert_eq!(al.aligned_a, "TLDKLLK-D");
        assert_eq!(al.aligned_b, "T-D-VLKAD");
        // 5 identities (T, D, L, K, D) and one positive-similarity pair (L/V).
        assert_eq!(al.markers.matches('*').count(), 5);
        assert_eq!(al.markers.matches('|').count(), 1);
        assert_eq!(al.markers, "* * |** *");
    }

    #[test]
    fn display_wraps_in_blocks() {
        let alpha = Alphabet::dna();
        let scheme = ScoringScheme::dna_default();
        let a = Sequence::from_str("a", &alpha, &"A".repeat(130)).unwrap();
        let b = Sequence::from_str("b", &alpha, &"A".repeat(130)).unwrap();
        let p = Path::new((0, 0), vec![Move::Diag; 130]);
        let al = Alignment::from_path(&a, &b, &p, &scheme);
        let text = format!("{al}");
        // 3 blocks of 3 lines with blank separators between blocks.
        assert_eq!(text.lines().filter(|l| !l.is_empty()).count(), 9);
        assert!((0.99..=1.0).contains(&al.identity()));
    }

    #[test]
    #[should_panic(expected = "complete global path")]
    fn rendering_rejects_partial_paths() {
        let (a, b, scheme) = paper_seqs();
        let p = Path::new((0, 0), vec![Move::Diag]);
        Alignment::from_path(&a, &b, &p, &scheme);
    }

    #[test]
    fn score_of_empty_path_is_zero() {
        let (a, b, scheme) = paper_seqs();
        let p = Path::new((0, 0), vec![]);
        assert_eq!(p.score(&a, &b, &scheme), 0);
        assert!(p.is_empty());
    }
}

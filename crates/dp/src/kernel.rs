//! FindScore kernels.
//!
//! All three algorithm families compute the same recurrence (paper §2.1):
//!
//! ```text
//! H(i,j) = max( H(i-1,j-1) + S(a[i-1], b[j-1]),   // Diag
//!               H(i-1,j)   + gap,                  // Up
//!               H(i,j-1)   + gap )                 // Left
//! ```
//!
//! over a rectangle whose top row and left column are given (the cached
//! boundary). The kernels differ in what they *store*:
//!
//! * [`fill_full`] — everything (FM algorithms, FastLSA base case);
//! * [`fill_last_row_col`] — a rolling row only, emitting the rectangle's
//!   bottom row and right column (the paper's `LastRow` routine used by
//!   Hirschberg's FindScore and FastLSA's Fill Cache);
//! * [`fill_dir`] — packed 2-bit directions plus a rolling score row (the
//!   paper's low-memory FM traceback alternative).
//!
//! Every kernel reports the rectangle's cell count to [`Metrics`].

use flsa_scoring::ScoringScheme;

use crate::boundary::check_boundary;
use crate::matrix::{Dir, DirMatrix, ScoreMatrix};
use crate::Metrics;

/// Fills a whole rectangle, returning the `(rows+1) × (cols+1)` score
/// matrix whose row 0 is `top` and column 0 is `left`.
///
/// # Examples
///
/// ```
/// use flsa_dp::{kernel, Boundary, Metrics};
/// use flsa_scoring::ScoringScheme;
/// use flsa_seq::Sequence;
///
/// let scheme = ScoringScheme::paper_example();
/// let a = Sequence::from_str("a", scheme.alphabet(), "TDVLKAD").unwrap();
/// let b = Sequence::from_str("b", scheme.alphabet(), "TLDKLLKD").unwrap();
/// let bound = Boundary::global(a.len(), b.len(), -10);
/// let metrics = Metrics::new();
/// let m = kernel::fill_full(a.codes(), b.codes(), &bound.top, &bound.left, &scheme, &metrics);
/// // Figure 1: the optimal score in the bottom-right corner is 82.
/// assert_eq!(m.get(a.len(), b.len()), 82);
/// ```
pub fn fill_full(
    a: &[u8],
    b: &[u8],
    top: &[i32],
    left: &[i32],
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> ScoreMatrix {
    fill_full_reusing(a, b, top, left, scheme, Vec::new(), metrics)
}

/// [`fill_full`] recycling `storage` as the matrix buffer (FastLSA's
/// pre-allocated Base Case buffer); retrieve it back with
/// [`ScoreMatrix::into_vec`].
pub fn fill_full_reusing(
    a: &[u8],
    b: &[u8],
    top: &[i32],
    left: &[i32],
    scheme: &ScoringScheme,
    storage: Vec<i32>,
    metrics: &Metrics,
) -> ScoreMatrix {
    let rows = a.len();
    let cols = b.len();
    check_boundary(top, left, rows, cols);
    let gap = scheme.gap().linear_penalty();
    let matrix = scheme.matrix();

    let mut dpm = ScoreMatrix::from_storage(rows, cols, storage);
    dpm.row_mut(0).copy_from_slice(top);
    for i in 1..=rows {
        let ai = a[i - 1];
        let (prev, cur) = dpm.rows_prev_cur(i);
        cur[0] = left[i];
        let mut left_val = cur[0];
        for j in 1..=cols {
            let diag = prev[j - 1] + matrix.score(ai, b[j - 1]);
            let up = prev[j] + gap;
            let lf = left_val + gap;
            let v = diag.max(up).max(lf);
            cur[j] = v;
            left_val = v;
        }
    }
    metrics.add_cells(rows as u64 * cols as u64);
    dpm
}

/// Fills a rectangle keeping only a rolling row, writing the rectangle's
/// bottom row into `out_bottom` (length `cols + 1`) and, when requested,
/// its right column into `out_right` (length `rows + 1`).
///
/// `out_bottom[cols] == out_right[rows]` is the rectangle's bottom-right
/// corner; `out_right[0] == top[cols]`.
///
/// The rolling row lives *in* `out_bottom`, so this kernel performs no
/// allocation — the caller owns all the memory, which is what lets FastLSA
/// account for every byte (Theorem 3's space bound).
#[allow(clippy::too_many_arguments)] // mirrors the DP recurrence inputs
pub fn fill_last_row_col(
    a: &[u8],
    b: &[u8],
    top: &[i32],
    left: &[i32],
    scheme: &ScoringScheme,
    out_bottom: &mut [i32],
    mut out_right: Option<&mut [i32]>,
    metrics: &Metrics,
) {
    let rows = a.len();
    let cols = b.len();
    check_boundary(top, left, rows, cols);
    assert_eq!(out_bottom.len(), cols + 1, "out_bottom length");
    if let Some(ref r) = out_right {
        assert_eq!(r.len(), rows + 1, "out_right length");
    }
    let gap = scheme.gap().linear_penalty();
    let matrix = scheme.matrix();

    out_bottom.copy_from_slice(top);
    if let Some(ref mut r) = out_right {
        r[0] = top[cols];
    }
    for i in 1..=rows {
        let ai = a[i - 1];
        // out_bottom currently holds row i-1; rewrite it into row i.
        let mut diag_in = out_bottom[0];
        out_bottom[0] = left[i];
        let mut left_val = out_bottom[0];
        for j in 1..=cols {
            let up_in = out_bottom[j];
            let v = (diag_in + matrix.score(ai, b[j - 1]))
                .max(up_in + gap)
                .max(left_val + gap);
            out_bottom[j] = v;
            left_val = v;
            diag_in = up_in;
        }
        if let Some(ref mut r) = out_right {
            r[i] = out_bottom[cols];
        }
    }
    metrics.add_cells(rows as u64 * cols as u64);
}

/// Convenience wrapper over [`fill_last_row_col`] for callers (Hirschberg)
/// that only need the bottom row.
pub fn fill_last_row(
    a: &[u8],
    b: &[u8],
    top: &[i32],
    left: &[i32],
    scheme: &ScoringScheme,
    out_bottom: &mut [i32],
    metrics: &Metrics,
) {
    fill_last_row_col(a, b, top, left, scheme, out_bottom, None, metrics);
}

/// Fills a rectangle storing packed 2-bit directions (¼ byte per entry)
/// plus a rolling score row; returns the direction matrix and the final
/// (bottom) score row.
///
/// Directions use the shared deterministic tie-break Diag ≻ Up ≻ Left so
/// that direction-based and score-based tracebacks recover the identical
/// optimal path. Boundary conventions: `(0,0)` is [`Dir::Stop`], the rest
/// of row 0 is [`Dir::Left`] and of column 0 [`Dir::Up`] (correct for any
/// monotone boundary such as the global gap ramp).
pub fn fill_dir(
    a: &[u8],
    b: &[u8],
    top: &[i32],
    left: &[i32],
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> (DirMatrix, Vec<i32>) {
    let rows = a.len();
    let cols = b.len();
    check_boundary(top, left, rows, cols);
    let gap = scheme.gap().linear_penalty();
    let matrix = scheme.matrix();

    let mut dirs = DirMatrix::new(rows, cols);
    dirs.set(0, 0, Dir::Stop);
    for j in 1..=cols {
        dirs.set(0, j, Dir::Left);
    }
    for i in 1..=rows {
        dirs.set(i, 0, Dir::Up);
    }

    let mut row: Vec<i32> = top.to_vec();
    for i in 1..=rows {
        let ai = a[i - 1];
        let mut diag_in = row[0];
        row[0] = left[i];
        let mut left_val = row[0];
        for j in 1..=cols {
            let up_in = row[j];
            let diag = diag_in + matrix.score(ai, b[j - 1]);
            let up = up_in + gap;
            let lf = left_val + gap;
            // Tie-break priority: Diag, then Up, then Left.
            let (v, d) = if diag >= up && diag >= lf {
                (diag, Dir::Diag)
            } else if up >= lf {
                (up, Dir::Up)
            } else {
                (lf, Dir::Left)
            };
            dirs.set(i, j, d);
            row[j] = v;
            left_val = v;
            diag_in = up_in;
        }
    }
    metrics.add_cells(rows as u64 * cols as u64);
    (dirs, row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Boundary;
    use flsa_seq::Sequence;

    fn paper_setup() -> (Vec<u8>, Vec<u8>, ScoringScheme) {
        let scheme = ScoringScheme::paper_example();
        // Figure 1 layout: TDVLKAD on the left (rows), TLDKLLKD on top (cols).
        let a = Sequence::from_str("a", scheme.alphabet(), "TDVLKAD").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "TLDKLLKD").unwrap();
        (a.codes().to_vec(), b.codes().to_vec(), scheme)
    }

    #[test]
    fn figure_1_dpm_spot_values() {
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let m = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        // Cells quoted in the paper's prose: [T,T] = 20, [T,L] = 10,
        // bottom-right = 82, and [A,K] (row 6, col 7) = 62,
        // [A,D] above-right = 72, [D,K] = 52.
        assert_eq!(m.get(1, 1), 20);
        assert_eq!(m.get(1, 2), 10);
        assert_eq!(m.get(6, 7), 62);
        assert_eq!(m.get(7, 7), 52);
        assert_eq!(m.get(6, 8), 72);
        assert_eq!(m.get(7, 8), 82);
        assert_eq!(metrics.snapshot().cells_computed, 56);
    }

    #[test]
    fn last_row_col_matches_full_fill_edges() {
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let m = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);

        let mut bottom = vec![0; b.len() + 1];
        let mut right = vec![0; a.len() + 1];
        fill_last_row_col(
            &a,
            &b,
            &bound.top,
            &bound.left,
            &scheme,
            &mut bottom,
            Some(&mut right),
            &metrics,
        );
        assert_eq!(bottom, m.row(a.len()));
        assert_eq!(right, m.col(b.len()));
        assert_eq!(bottom[b.len()], right[a.len()], "shared corner");
    }

    #[test]
    fn fill_dir_final_row_matches_full_fill() {
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let m = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        let (_dirs, last) = fill_dir(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        assert_eq!(last, m.row(a.len()));
    }

    #[test]
    fn kernels_handle_empty_sequences() {
        let (_, b, scheme) = paper_setup();
        let bound = Boundary::global(0, b.len(), -10);
        let metrics = Metrics::new();
        let m = fill_full(&[], &b, &bound.top, &bound.left, &scheme, &metrics);
        assert_eq!(m.get(0, b.len()), -(10 * b.len() as i32));

        let mut bottom = vec![0; b.len() + 1];
        let mut right = vec![0; 1];
        fill_last_row_col(
            &[],
            &b,
            &bound.top,
            &bound.left,
            &scheme,
            &mut bottom,
            Some(&mut right),
            &metrics,
        );
        assert_eq!(bottom, bound.top);
        assert_eq!(right[0], *bound.top.last().unwrap());

        let bound = Boundary::global(3, 0, -10);
        let a = [0u8, 1, 2];
        let mut bottom1 = vec![0; 1];
        let mut right1 = vec![0; 4];
        fill_last_row_col(
            &a,
            &[],
            &bound.top,
            &bound.left,
            &scheme,
            &mut bottom1,
            Some(&mut right1),
            &metrics,
        );
        assert_eq!(right1, bound.left);
        assert_eq!(bottom1[0], -30);
    }

    #[test]
    fn subrectangle_fill_composes() {
        // Filling the whole rectangle must equal filling the left half and
        // feeding its right column into the right half (the property the
        // entire grid-cache design rests on).
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let whole = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);

        let split = 4;
        let left_half = fill_full(
            &a,
            &b[..split],
            &bound.top[..=split],
            &bound.left,
            &scheme,
            &metrics,
        );
        let mid_col = left_half.col(split);
        let right_half = fill_full(
            &a,
            &b[split..],
            &bound.top[split..],
            &mid_col,
            &scheme,
            &metrics,
        );
        for i in 0..=a.len() {
            for j in 0..=(b.len() - split) {
                assert_eq!(right_half.get(i, j), whole.get(i, j + split), "({i},{j})");
            }
        }
    }

    #[test]
    fn reused_storage_gives_identical_results() {
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let fresh = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        // Poisoned storage from a previous, larger solve.
        let dirty = vec![i32::MIN; 4000];
        let reused = fill_full_reusing(&a, &b, &bound.top, &bound.left, &scheme, dirty, &metrics);
        for i in 0..=a.len() {
            assert_eq!(reused.row(i), fresh.row(i));
        }
    }

    #[test]
    #[should_panic(expected = "top boundary length")]
    fn boundary_length_mismatch_panics() {
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        fill_full(&a, &b[..3], &bound.top, &bound.left, &scheme, &metrics);
    }
}

//! Result type shared by all global aligners.

use crate::path::Path;

/// The outcome of a global alignment: the optimal score and one optimal
/// path achieving it (the Diag ≻ Up ≻ Left canonical path for every
/// traceback-based aligner in this workspace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignResult {
    /// Optimal global alignment score.
    pub score: i64,
    /// An optimal path from `(0, 0)` to `(m, n)`.
    pub path: Path,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Move;

    #[test]
    fn result_carries_score_and_path() {
        let r = AlignResult {
            score: 5,
            path: Path::new((0, 0), vec![Move::Diag]),
        };
        assert_eq!(r.score, 5);
        assert_eq!(r.path.end(), (1, 1));
    }
}

//! Inter-sequence batch alignment: many small independent pairs, one pair
//! per SIMD lane.
//!
//! The intra-sequence kernels in [`crate::simd`] vectorize *within* one
//! DP matrix and pay a prefix-scan per row to resolve the left-to-right
//! dependency. When the workload is many small *independent* pairs (the
//! flsa-serve request mix, database scans), a better axis exists: put one
//! pair in each 16-bit SIMD lane and run the plain three-way-max
//! recurrence vertically — at a fixed `(i, j)` every lane's
//! left-dependency is its own previous `j` iteration, so there is no scan
//! at all. This is the inter-sequence (Farrar-style "striped across
//! sequences") layout used by SWIPE and the BSW family.
//!
//! # Exactness
//!
//! Lanes are 16-bit and the adds *saturating*, so a pair whose DP values
//! stray near `i16` range could silently clamp. [`BatchKernel`] keeps
//! results bit-identical to the scalar kernels anyway:
//!
//! * **Upfront admission** — a lane enters the striped fill only when its
//!   boundary ramp over the chunk's padded extent plus one step
//!   (`max(rows_max, cols_max)·|gap| + Δ`, with `Δ = max(|S|_max, |gap|)`)
//!   stays inside `i16`, so every boundary input is in the safe zone.
//! * **Saturation detection** — the striped fill tracks each lane's
//!   running min/max DP value. If all of a lane's values stay in
//!   `[i16::MIN + Δ, i16::MAX − Δ]`, every add it performed was exact by
//!   induction; a lane that leaves that zone is *flagged* and transparently
//!   recomputed on the exact `i32` single-pair path.
//!
//! Flagging is conservative (a lane padded out to a longer chunk-mate can
//! false-flag on cells past its own rectangle) — that costs a fallback
//! fill, never a wrong result. Direction ties break Diag ≻ Up ≻ Left like
//! every other kernel in the workspace, so the recovered path is the
//! canonical one.

use flsa_scoring::{GapModel, QueryProfileI16, ScoringScheme};

use crate::path::{Move, PathBuilder};
use crate::result::AlignResult;
use crate::simd::{Kernel, KernelBackend, UnsupportedBackend};
use crate::traceback::trace_dirs;
use crate::{Boundary, Metrics};

/// Direction codes stored in the striped batch direction slab; chosen to
/// match [`crate::matrix::Dir`]'s discriminants (Diag = 1, Up = 2,
/// Left = 3). Only this module and the batch kernels interpret them.
pub(crate) const BDIR_DIAG: u8 = 1;
pub(crate) const BDIR_UP: u8 = 2;
pub(crate) const BDIR_LEFT: u8 = 3;

/// One global-alignment request in a batch: a pair of encoded sequences
/// plus the scheme scoring them. Jobs in one batch may use different
/// schemes (each lane carries its own gap penalty and score profile).
#[derive(Debug, Clone, Copy)]
pub struct BatchJob<'s> {
    /// Left sequence codes (DP matrix rows).
    pub a: &'s [u8],
    /// Top sequence codes (DP matrix columns).
    pub b: &'s [u8],
    /// Scoring scheme; the gap model must be linear (the paper's model).
    pub scheme: &'s ScoringScheme,
}

/// The striped lane configuration a [`BatchKernel`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchBackend {
    /// 16 × i16 lanes in AVX2 registers.
    Avx2x16,
    /// 8 × i16 lanes in SSE4.1 registers.
    Sse41x8,
    /// Scalar striped loop, 8 lanes — semantically identical to the
    /// vector paths (same saturating adds, same dir codes); the non-x86
    /// and forced-scalar fallback.
    Portable,
}

/// Widest striped backend the CPU supports.
fn detect_batch_backend() -> BatchBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return BatchBackend::Avx2x16;
        }
        if is_x86_feature_detected!("sse4.1") {
            return BatchBackend::Sse41x8;
        }
    }
    BatchBackend::Portable
}

/// Per-lane admission parameters for the striped fill.
#[derive(Debug, Clone, Copy)]
struct LaneParams {
    gap: i32,
    /// `max(|S|_max, |gap|)` — the largest magnitude one DP step can add.
    delta: i32,
}

/// The striped inter-sequence batch kernel.
///
/// Wraps a single-pair [`Kernel`] (used for fallback fills and shared
/// scratch via its arena) and aligns batches of independent pairs with
/// [`BatchKernel::align_batch`]. Every result is bit-identical to running
/// the scalar single-pair kernel on the same job.
///
/// # Examples
///
/// ```
/// use flsa_dp::{BatchJob, BatchKernel, Kernel, Metrics};
/// use flsa_scoring::ScoringScheme;
/// use flsa_seq::Sequence;
///
/// let scheme = ScoringScheme::paper_example();
/// let a = Sequence::from_str("a", scheme.alphabet(), "TDVLKAD").unwrap();
/// let b = Sequence::from_str("b", scheme.alphabet(), "TLDKLLKD").unwrap();
/// let jobs = vec![BatchJob { a: a.codes(), b: b.codes(), scheme: &scheme }; 5];
/// let batch = BatchKernel::new(Kernel::auto());
/// let results = batch.align_batch(&jobs, &Metrics::new());
/// assert!(results.iter().all(|r| r.score == 82));
/// ```
#[derive(Debug, Clone)]
pub struct BatchKernel {
    kernel: Kernel,
    backend: BatchBackend,
}

impl BatchKernel {
    /// A batch kernel over the widest striped backend this CPU supports.
    ///
    /// A forced-scalar `kernel` (`FLSA_KERNEL_FORCE=scalar`) pins the
    /// batch path to the portable striped loop too, so differential runs
    /// exercise every layer without vector instructions.
    pub fn new(kernel: Kernel) -> BatchKernel {
        let backend = if kernel.backend() == KernelBackend::Scalar {
            BatchBackend::Portable
        } else {
            detect_batch_backend()
        };
        BatchKernel { kernel, backend }
    }

    /// A batch kernel with an explicit lane width: 16 (AVX2), 8 (SSE4.1)
    /// or 0 (portable striped loop). Rejects widths the CPU cannot run.
    ///
    /// # Panics
    ///
    /// Panics on widths other than 0, 8 or 16 — a configuration error.
    pub fn try_with_lanes(kernel: Kernel, lanes: usize) -> Result<BatchKernel, UnsupportedBackend> {
        #[cfg(target_arch = "x86_64")]
        let backend = match lanes {
            0 => BatchBackend::Portable,
            8 if is_x86_feature_detected!("sse4.1") => BatchBackend::Sse41x8,
            16 if is_x86_feature_detected!("avx2") => BatchBackend::Avx2x16,
            8 => {
                return Err(UnsupportedBackend {
                    backend: KernelBackend::Sse41,
                })
            }
            16 => {
                return Err(UnsupportedBackend {
                    backend: KernelBackend::Avx2,
                })
            }
            other => panic!("batch lane width must be 0, 8 or 16, got {other}"),
        };
        #[cfg(not(target_arch = "x86_64"))]
        let backend = match lanes {
            0 => BatchBackend::Portable,
            8 => {
                return Err(UnsupportedBackend {
                    backend: KernelBackend::Sse41,
                })
            }
            16 => {
                return Err(UnsupportedBackend {
                    backend: KernelBackend::Avx2,
                })
            }
            other => panic!("batch lane width must be 0, 8 or 16, got {other}"),
        };
        Ok(BatchKernel { kernel, backend })
    }

    /// Pairs aligned per striped chunk (8 or 16).
    pub fn lanes(&self) -> usize {
        match self.backend {
            BatchBackend::Avx2x16 => 16,
            BatchBackend::Sse41x8 | BatchBackend::Portable => 8,
        }
    }

    /// Short backend label for metrics/trace attribution.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            BatchBackend::Avx2x16 => "batch-avx2x16",
            BatchBackend::Sse41x8 => "batch-sse41x8",
            BatchBackend::Portable => "batch-portable",
        }
    }

    /// The wrapped single-pair kernel (fallback path + arena owner).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Globally aligns every job, returning results in job order.
    ///
    /// Jobs are processed in chunks of [`BatchKernel::lanes`]; lanes the
    /// striped `i16` fill cannot serve exactly (empty sequences, scores
    /// or extents too large for 16 bits, saturation flagged at runtime)
    /// fall back to the exact `i32` single-pair kernel. Every result —
    /// score *and* path — is bit-identical to the scalar kernel's.
    ///
    /// # Panics
    ///
    /// Panics when a job's gap model is affine: like every linear-space
    /// kernel in this workspace, the batch kernel is defined for the
    /// paper's linear gap model only, and callers validate up front.
    pub fn align_batch(&self, jobs: &[BatchJob<'_>], metrics: &Metrics) -> Vec<AlignResult> {
        let w = self.lanes();
        let mut results = Vec::with_capacity(jobs.len());
        for chunk in jobs.chunks(w) {
            self.align_chunk(chunk, &mut results, metrics);
        }
        results
    }

    /// Aligns one ≤ `lanes()`-sized chunk, appending results in order.
    fn align_chunk(
        &self,
        chunk: &[BatchJob<'_>],
        results: &mut Vec<AlignResult>,
        metrics: &Metrics,
    ) {
        let mut params: Vec<Option<LaneParams>> =
            chunk.iter().map(|job| lane_params(job)).collect();
        // Chunk-extent admission must hold for the *striped* extents
        // (every lane's boundary ramp runs to the chunk max, not its
        // own). Dropping a lane can shrink the extents, so iterate to a
        // fixpoint; each pass only removes lanes, so it terminates.
        loop {
            let rows_max = extent(chunk, &params, |j| j.a.len());
            let cols_max = extent(chunk, &params, |j| j.b.len());
            let span = rows_max.max(cols_max) as i64;
            let mut changed = false;
            for p in params.iter_mut() {
                if let Some(lp) = p {
                    if span * (lp.gap as i64).abs() + lp.delta as i64 >= i16::MAX as i64 {
                        *p = None;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let active = params.iter().flatten().count();
        let mut striped: Vec<Option<AlignResult>> = vec![None; chunk.len()];
        // One striped lane would just be a slower single-pair fill.
        if active >= 2 {
            self.fill_striped(chunk, &params, &mut striped, metrics);
        }
        for (job, r) in chunk.iter().zip(striped) {
            results.push(match r {
                Some(r) => r,
                None => self.align_single(job, metrics),
            });
        }
    }

    /// The striped `i16` fill over one chunk. Writes `Some(result)` for
    /// every admitted lane whose values provably stayed exact; leaves
    /// `None` (→ single-pair fallback) for the rest.
    fn fill_striped(
        &self,
        chunk: &[BatchJob<'_>],
        params: &[Option<LaneParams>],
        out: &mut [Option<AlignResult>],
        metrics: &Metrics,
    ) {
        let w = self.lanes();
        let arena = self.kernel.arena();
        let rows_max = extent(chunk, params, |j| j.a.len());
        let cols_max = extent(chunk, params, |j| j.b.len());
        let cols_pad = cols_max.next_multiple_of(8);

        // Per-lane gap ramps, profiles, and the shared zero row idle
        // lanes read their "scores" from.
        let mut gaps = vec![0i16; w];
        let mut profiles: Vec<Option<QueryProfileI16>> = (0..w).map(|_| None).collect();
        let zeros = arena.take_i16(cols_pad);
        for (l, (job, p)) in chunk.iter().zip(params.iter()).enumerate() {
            let Some(lp) = p else { continue };
            // Fits i16 exactly: admission bounded span·|gap| + Δ.
            gaps[l] = lp.gap as i16;
            let m = job.scheme.matrix();
            let storage = arena.take_i16(m.alphabet().len() * cols_pad);
            profiles[l] = Some(QueryProfileI16::build_padded_in(m, job.b, cols_pad, storage));
        }

        let mut prev = arena.take_i16((cols_max + 1) * w);
        let mut cur = arena.take_i16((cols_max + 1) * w);
        let mut scores = arena.take_i16(cols_pad * w);
        let mut dirs = arena.take_u8(rows_max * cols_max * w);
        let _mem = metrics.track_alloc(
            dirs.len() + 2 * (prev.len() + cur.len() + scores.len() + zeros.len()),
        );
        let mut minmax = vec![i16::MAX; 2 * w];
        minmax[w..].fill(i16::MIN);
        let mut final_scores = vec![0i16; w];

        // Top boundary: lane l's gap ramp continued across the chunk's
        // padded width (exact by admission; idle lanes ride at 0).
        for j in 0..=cols_max {
            for l in 0..w {
                prev[j * w + l] = (j as i32 * gaps[l] as i32) as i16;
            }
        }
        let mut row_refs: Vec<&[i16]> = vec![zeros.as_slice(); w];
        for i in 1..=rows_max {
            for (l, g) in gaps.iter().enumerate() {
                cur[l] = (i as i32 * *g as i32) as i16;
            }
            for (l, (job, p)) in chunk.iter().zip(profiles.iter()).enumerate() {
                row_refs[l] = match p {
                    // A lane shorter than the chunk repeats its last
                    // residue; its result was already captured.
                    Some(prof) => prof.row(job.a[i.min(job.a.len()) - 1]),
                    None => zeros.as_slice(),
                };
            }
            self.stripe_scores(&row_refs, &mut scores);
            let drow = &mut dirs[(i - 1) * cols_max * w..i * cols_max * w];
            self.stripe_row_update(&prev, &mut cur, &scores, &gaps, drow, &mut minmax);
            for (l, job) in chunk.iter().enumerate() {
                if params[l].is_some() && job.a.len() == i {
                    final_scores[l] = cur[job.b.len() * w + l];
                }
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        metrics.add_cells(rows_max as u64 * cols_max as u64 * active_count(params) as u64);

        for (l, (job, p)) in chunk.iter().zip(params.iter()).enumerate() {
            let Some(lp) = p else { continue };
            let d = lp.delta as i16;
            // Saturation flag: any value outside the safe zone means some
            // later add *may* have clamped — recompute the lane exactly.
            if minmax[w + l] > i16::MAX - d || minmax[l] < i16::MIN + d {
                continue;
            }
            out[l] = Some(trace_striped(
                job,
                &dirs,
                cols_max,
                w,
                l,
                final_scores[l],
                metrics,
            ));
        }

        drop(row_refs);
        arena.put_i16(zeros);
        arena.put_i16(prev);
        arena.put_i16(cur);
        arena.put_i16(scores);
        arena.put_u8(dirs);
        for p in profiles.into_iter().flatten() {
            arena.put_i16(p.into_storage());
        }
    }

    /// Dispatches one striped score-row interleave to the active backend.
    #[inline]
    fn stripe_scores(&self, rows: &[&[i16]], out: &mut [i16]) {
        match self.backend {
            BatchBackend::Portable => batch_score_row_portable(rows, out),
            #[cfg(target_arch = "x86_64")]
            BatchBackend::Sse41x8 => {
                // SAFETY: every `BatchKernel` constructor admits Sse41x8
                // only after `is_x86_feature_detected!("sse4.1")`.
                unsafe { crate::simd::x86::batch_score_row_sse41(rows, out) }
            }
            #[cfg(target_arch = "x86_64")]
            BatchBackend::Avx2x16 => {
                // SAFETY: every `BatchKernel` constructor admits Avx2x16
                // only after `is_x86_feature_detected!("avx2")`.
                unsafe { crate::simd::x86::batch_score_row_avx2(rows, out) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            BatchBackend::Sse41x8 | BatchBackend::Avx2x16 => {
                // Constructors never admit these off x86-64; the portable
                // loop keeps the arm correct regardless.
                batch_score_row_portable(rows, out)
            }
        }
    }

    /// Dispatches one striped row update to the active backend.
    #[inline]
    fn stripe_row_update(
        &self,
        prev: &[i16],
        cur: &mut [i16],
        scores: &[i16],
        gaps: &[i16],
        dirs: &mut [u8],
        minmax: &mut [i16],
    ) {
        match self.backend {
            BatchBackend::Portable => {
                batch_row_update_portable(prev, cur, scores, gaps, dirs, minmax)
            }
            #[cfg(target_arch = "x86_64")]
            BatchBackend::Sse41x8 => {
                // SAFETY: every `BatchKernel` constructor admits Sse41x8
                // only after `is_x86_feature_detected!("sse4.1")`.
                unsafe { crate::simd::x86::batch_row_update_sse41(prev, cur, scores, gaps, dirs, minmax) }
            }
            #[cfg(target_arch = "x86_64")]
            BatchBackend::Avx2x16 => {
                // SAFETY: every `BatchKernel` constructor admits Avx2x16
                // only after `is_x86_feature_detected!("avx2")`.
                unsafe { crate::simd::x86::batch_row_update_avx2(prev, cur, scores, gaps, dirs, minmax) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            BatchBackend::Sse41x8 | BatchBackend::Avx2x16 => {
                // Constructors never admit these off x86-64.
                batch_row_update_portable(prev, cur, scores, gaps, dirs, minmax)
            }
        }
    }

    /// The exact `i32` single-pair path: packed-direction fill on the
    /// wrapped kernel plus the shared traceback — byte-for-byte the
    /// canonical full-matrix result.
    fn align_single(&self, job: &BatchJob<'_>, metrics: &Metrics) -> AlignResult {
        let (m, n) = (job.a.len(), job.b.len());
        let gap = job.scheme.gap().linear_penalty();
        let bound = Boundary::global(m, n, gap);
        let (dirs, last) =
            self.kernel
                .fill_dir(job.a, job.b, &bound.top, &bound.left, job.scheme, metrics);
        assert_eq!(last.len(), n + 1, "kernel last-row length");
        let mut builder = PathBuilder::new();
        trace_dirs(&dirs, (m, n), &mut builder, metrics);
        AlignResult {
            score: last[n] as i64,
            path: builder.finish((0, 0)),
        }
    }
}

/// Striped-fill admission for one lane in isolation; the chunk-extent
/// check in `align_chunk` tightens this with the actual striped extents.
fn lane_params(job: &BatchJob<'_>) -> Option<LaneParams> {
    if job.a.is_empty() || job.b.is_empty() {
        return None;
    }
    // Affine jobs are never striped; the fallback path reports the
    // canonical linear-only panic.
    let GapModel::Linear { penalty } = *job.scheme.gap() else {
        return None;
    };
    let m = job.scheme.matrix();
    let smax = m.max_score().abs().max(m.min_score().abs()) as i64;
    let delta = smax.max((penalty as i64).abs());
    if delta >= i16::MAX as i64 {
        return None;
    }
    Some(LaneParams {
        gap: penalty,
        delta: delta as i32,
    })
}

/// Max of `f` over the chunk's admitted lanes.
fn extent(
    chunk: &[BatchJob<'_>],
    params: &[Option<LaneParams>],
    f: impl Fn(&BatchJob<'_>) -> usize,
) -> usize {
    chunk
        .iter()
        .zip(params.iter())
        .filter(|(_, p)| p.is_some())
        .map(|(j, _)| f(j))
        .max()
        .unwrap_or(0)
}

fn active_count(params: &[Option<LaneParams>]) -> usize {
    params.iter().flatten().count()
}

/// Walks lane `l`'s striped direction slab backwards from the job's
/// bottom-right corner to `(0, 0)` — the same Diag ≻ Up ≻ Left canonical
/// walk as [`trace_dirs`], reading `dirs[((i-1)*cols_max + (j-1))*w + l]`.
fn trace_striped(
    job: &BatchJob<'_>,
    dirs: &[u8],
    cols_max: usize,
    w: usize,
    l: usize,
    score: i16,
    metrics: &Metrics,
) -> AlignResult {
    let mut builder = PathBuilder::new();
    let (mut i, mut j) = (job.a.len(), job.b.len());
    let mut steps = 0u64;
    while i > 0 || j > 0 {
        let m = if i == 0 {
            j -= 1;
            Move::Left
        } else if j == 0 {
            i -= 1;
            Move::Up
        } else {
            match dirs[((i - 1) * cols_max + (j - 1)) * w + l] {
                BDIR_DIAG => {
                    i -= 1;
                    j -= 1;
                    Move::Diag
                }
                BDIR_UP => {
                    i -= 1;
                    Move::Up
                }
                // BDIR_LEFT — an exact (unflagged) lane stores only the
                // three codes, so no other byte can appear here.
                _ => {
                    j -= 1;
                    Move::Left
                }
            }
        };
        builder.push_back(m);
        steps += 1;
    }
    metrics.add_traceback_steps(steps);
    AlignResult {
        score: score as i64,
        path: builder.finish((0, 0)),
    }
}

/// Scalar reference for the striped score-row interleave:
/// `out[j*w + l] = rows[l][j]`.
fn batch_score_row_portable(rows: &[&[i16]], out: &mut [i16]) {
    let w = rows.len();
    for (j, chunk) in out.chunks_exact_mut(w).enumerate() {
        for (slot, row) in chunk.iter_mut().zip(rows.iter()) {
            *slot = row[j];
        }
    }
}

/// Scalar reference for the striped row update — semantically identical
/// to the vector paths: same saturating adds, same Diag ≻ Up ≻ Left
/// precedence, same dir codes, same min/max tracking.
fn batch_row_update_portable(
    prev: &[i16],
    cur: &mut [i16],
    scores: &[i16],
    gaps: &[i16],
    dirs: &mut [u8],
    minmax: &mut [i16],
) {
    let w = gaps.len();
    let cols = dirs.len() / w;
    assert_eq!(dirs.len() % w, 0, "dir row length");
    assert_eq!(prev.len(), (cols + 1) * w, "prev row length");
    assert_eq!(cur.len(), (cols + 1) * w, "cur row length");
    assert!(scores.len() >= cols * w, "score row length");
    assert_eq!(minmax.len(), 2 * w, "per-lane min/max");
    for l in 0..w {
        let gap = gaps[l];
        let mut diag = prev[l];
        let mut left = cur[l];
        let mut mn = minmax[l];
        let mut mx = minmax[w + l];
        for j in 1..=cols {
            let up = prev[j * w + l];
            let t1 = diag.saturating_add(scores[(j - 1) * w + l]);
            let t2 = up.saturating_add(gap);
            let t3 = left.saturating_add(gap);
            let v = t1.max(t2).max(t3);
            cur[j * w + l] = v;
            dirs[(j - 1) * w + l] = if t1 == v {
                BDIR_DIAG
            } else if t2 == v {
                BDIR_UP
            } else {
                BDIR_LEFT
            };
            mn = mn.min(v);
            mx = mx.max(v);
            diag = up;
            left = v;
        }
        minmax[l] = mn;
        minmax[w + l] = mx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_scoring::SubstitutionMatrix;
    use flsa_seq::Alphabet;

    /// Deterministic xorshift so the tests need no external RNG.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn random_seqs(rng: &mut Rng, n_codes: usize, max_len: usize) -> (Vec<u8>, Vec<u8>) {
        let rows = rng.below(max_len);
        let cols = rng.below(max_len);
        (
            (0..rows).map(|_| rng.below(n_codes) as u8).collect(),
            (0..cols).map(|_| rng.below(n_codes) as u8).collect(),
        )
    }

    fn check_batch_matches_single(batch: &BatchKernel, jobs: &[BatchJob<'_>]) {
        let metrics = Metrics::new();
        let got = batch.align_batch(jobs, &metrics);
        assert_eq!(got.len(), jobs.len());
        let reference = BatchKernel {
            kernel: Kernel::scalar(),
            backend: BatchBackend::Portable,
        };
        for (k, (job, r)) in jobs.iter().zip(got.iter()).enumerate() {
            let want = reference.align_single(job, &Metrics::new());
            assert_eq!(r, &want, "job {k} diverged from the scalar result");
        }
    }

    #[test]
    fn portable_batch_matches_scalar_on_random_jobs() {
        let mut rng = Rng(0x5eed_0001);
        let schemes = [
            ScoringScheme::paper_example(),
            ScoringScheme::dna_default(),
            ScoringScheme::protein_default(),
        ];
        let mut pairs = Vec::new();
        for _ in 0..23 {
            let scheme = &schemes[rng.below(schemes.len())];
            let n_codes = scheme.alphabet().len();
            pairs.push((random_seqs(&mut rng, n_codes, 40), scheme));
        }
        let jobs: Vec<BatchJob<'_>> = pairs
            .iter()
            .map(|((a, b), scheme)| BatchJob { a, b, scheme })
            .collect();
        let batch = BatchKernel::try_with_lanes(Kernel::scalar(), 0)
            .unwrap_or_else(|e| panic!("portable always available: {e}"));
        check_batch_matches_single(&batch, &jobs);
    }

    #[test]
    fn native_batch_matches_scalar_on_random_jobs() {
        let mut rng = Rng(0xfeed_0002);
        let scheme = ScoringScheme::protein_default();
        let n_codes = scheme.alphabet().len();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..37)
            .map(|_| random_seqs(&mut rng, n_codes, 70))
            .collect();
        let jobs: Vec<BatchJob<'_>> = pairs
            .iter()
            .map(|(a, b)| BatchJob {
                a,
                b,
                scheme: &scheme,
            })
            .collect();
        check_batch_matches_single(&BatchKernel::new(Kernel::auto()), &jobs);
    }

    #[test]
    fn paper_example_scores_82_in_every_lane() {
        let scheme = ScoringScheme::paper_example();
        let a = scheme
            .alphabet()
            .encode_str("TDVLKAD")
            .unwrap_or_else(|e| panic!("paper sequence encodes: {e}"));
        let b = scheme
            .alphabet()
            .encode_str("TLDKLLKD")
            .unwrap_or_else(|e| panic!("paper sequence encodes: {e}"));
        let jobs = vec![
            BatchJob {
                a: &a,
                b: &b,
                scheme: &scheme,
            };
            19
        ];
        let batch = BatchKernel::new(Kernel::auto());
        for r in batch.align_batch(&jobs, &Metrics::new()) {
            assert_eq!(r.score, 82);
            assert!(r.path.is_global(a.len(), b.len()));
        }
    }

    #[test]
    fn huge_scores_fall_back_to_exact_path() {
        // Scores near i16::MAX are inadmissible for the striped fill —
        // every lane must silently take the exact i32 fallback.
        let m = SubstitutionMatrix::match_mismatch("big", Alphabet::dna(), 30000, -30000);
        let scheme = ScoringScheme::new(m, GapModel::linear(-10));
        let a = vec![0u8, 1, 2, 3, 0, 1];
        let b = vec![0u8, 1, 2, 0, 3];
        let jobs = vec![
            BatchJob {
                a: &a,
                b: &b,
                scheme: &scheme,
            };
            9
        ];
        check_batch_matches_single(&BatchKernel::new(Kernel::auto()), &jobs);
    }

    #[test]
    fn saturating_lane_is_flagged_and_recomputed() {
        // Admissible per the upfront check (Δ and span·|gap| both small)
        // but with values that climb steadily: long perfect matches at
        // +1000/cell cross the i16 safe zone mid-fill, so the runtime
        // min/max tracker must flag the lanes and fall back.
        let m = SubstitutionMatrix::match_mismatch("climb", Alphabet::dna(), 1000, -1000);
        let scheme = ScoringScheme::new(m, GapModel::linear(-1));
        let a: Vec<u8> = (0..60).map(|i| (i % 4) as u8).collect();
        let jobs = vec![
            BatchJob {
                a: &a,
                b: &a,
                scheme: &scheme,
            };
            5
        ];
        let batch = BatchKernel::new(Kernel::auto());
        for r in batch.align_batch(&jobs, &Metrics::new()) {
            assert_eq!(r.score, 60 * 1000, "exact score despite i16 overflow");
        }
        check_batch_matches_single(&batch, &jobs);
    }

    #[test]
    fn mixed_lengths_empty_pairs_and_schemes_in_one_batch() {
        let dna = ScoringScheme::dna_default();
        let paper = ScoringScheme::paper_example();
        let a1 = vec![0u8, 1, 2];
        let b1 = vec![2u8, 1];
        let long: Vec<u8> = (0..33).map(|i| (i % 4) as u8).collect();
        let pa = vec![3u8, 1, 4, 1];
        let jobs = vec![
            BatchJob {
                a: &a1,
                b: &b1,
                scheme: &dna,
            },
            BatchJob {
                a: &[],
                b: &b1,
                scheme: &dna,
            },
            BatchJob {
                a: &long,
                b: &a1,
                scheme: &dna,
            },
            BatchJob {
                a: &pa,
                b: &pa,
                scheme: &paper,
            },
            BatchJob {
                a: &a1,
                b: &[],
                scheme: &dna,
            },
            BatchJob {
                a: &long,
                b: &long,
                scheme: &dna,
            },
        ];
        check_batch_matches_single(&BatchKernel::new(Kernel::auto()), &jobs);
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = BatchKernel::new(Kernel::auto());
        assert!(batch.align_batch(&[], &Metrics::new()).is_empty());
    }

    #[test]
    fn lane_widths_report_correctly() {
        let p = BatchKernel::try_with_lanes(Kernel::scalar(), 0)
            .unwrap_or_else(|e| panic!("portable always available: {e}"));
        assert_eq!(p.lanes(), 8);
        assert_eq!(p.backend_name(), "batch-portable");
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            let v = BatchKernel::try_with_lanes(Kernel::auto(), 16)
                .unwrap_or_else(|e| panic!("avx2 detected: {e}"));
            assert_eq!(v.lanes(), 16);
            assert_eq!(v.backend_name(), "batch-avx2x16");
        }
    }
}

//! Explicit SSE4.1 / AVX2 row-update kernels.
//!
//! Hand-written `core::arch` versions of [`super::lanes::row_update`],
//! selected at runtime by the dispatch layer after
//! `is_x86_feature_detected!` has confirmed the ISA (see
//! [`super::KernelBackend::is_available`]). The math is identical to the
//! portable lane kernel — pass A computes `max(diag, up)`, pass B runs a
//! log-step inclusive prefix max in the ramp-free u-domain — so both ISAs
//! are bit-identical to the scalar kernel.
//!
//! This module is the only `unsafe` surface of the workspace outside the
//! audited `DisjointBuf` writes, and lint rule R6 pins every
//! `#[target_feature]` function here.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

/// Lane-shift `x` one `i32` toward higher lanes, filling lane 0 from
/// `fill` (lane `l` of the result is `x`'s lane `l-1`).
///
/// # Safety
///
/// Requires AVX2 (guaranteed by the caller's own `target_feature`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn shl1_avx2(x: __m256i, fill: __m256i) -> __m256i {
    // Selector 0x08: low 128 = zero, high 128 = x's low half — the
    // cross-lane carry `alignr` cannot express on its own.
    let low_to_high = _mm256_permute2x128_si256::<0x08>(x, x);
    let s = _mm256_alignr_epi8::<12>(x, low_to_high);
    _mm256_blend_epi32::<0b0000_0001>(s, fill)
}

/// Lane-shift `x` two `i32`s toward higher lanes, filling lanes 0–1.
///
/// # Safety
///
/// Requires AVX2 (guaranteed by the caller's own `target_feature`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn shl2_avx2(x: __m256i, fill: __m256i) -> __m256i {
    let low_to_high = _mm256_permute2x128_si256::<0x08>(x, x);
    let s = _mm256_alignr_epi8::<8>(x, low_to_high);
    _mm256_blend_epi32::<0b0000_0011>(s, fill)
}

/// Lane-shift `x` four `i32`s toward higher lanes, filling lanes 0–3.
///
/// # Safety
///
/// Requires AVX2 (guaranteed by the caller's own `target_feature`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn shl4_avx2(x: __m256i, fill: __m256i) -> __m256i {
    let low_to_high = _mm256_permute2x128_si256::<0x08>(x, x);
    _mm256_blend_epi32::<0b0000_1111>(low_to_high, fill)
}

/// AVX2 version of [`super::lanes::row_update`]: identical contract,
/// identical results, eight columns per vector.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("avx2")`; the
/// dispatch layer does this once at `Kernel` construction.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn row_update_avx2(prev: &[i32], cur: &mut [i32], profile: &[i32], gap: i32) {
    let cols = profile.len();
    // Release-mode guards: the vector loop below reads and writes through
    // raw pointers (`.add(j)`), so an out-of-bounds row is UB, not a
    // panic — the checks must survive into optimized builds.
    assert_eq!(prev.len(), cols + 1, "prev row length");
    assert_eq!(cur.len(), cols + 1, "cur row length");
    let mut carry = cur[0];
    let mut j = 1usize;
    if j + 8 <= cols + 1 {
        let gapv = _mm256_set1_epi32(gap);
        let minv = _mm256_set1_epi32(i32::MIN);
        let step = _mm256_set1_epi32(gap.wrapping_mul(8));
        // ramp lanes hold (j+l)*gap for the block's eight columns.
        let mut r = [0i32; 8];
        for (l, slot) in r.iter_mut().enumerate() {
            *slot = (l as i32 + 1).wrapping_mul(gap);
        }
        let mut ramp = _mm256_loadu_si256(r.as_ptr() as *const __m256i);
        let mut carryv = _mm256_set1_epi32(carry);
        while j + 8 <= cols + 1 {
            let diag = _mm256_add_epi32(
                _mm256_loadu_si256(prev.as_ptr().add(j - 1) as *const __m256i),
                _mm256_loadu_si256(profile.as_ptr().add(j - 1) as *const __m256i),
            );
            let up = _mm256_add_epi32(
                _mm256_loadu_si256(prev.as_ptr().add(j) as *const __m256i),
                gapv,
            );
            let t = _mm256_max_epi32(diag, up);
            let u = _mm256_sub_epi32(t, ramp);
            let m1 = _mm256_max_epi32(u, shl1_avx2(u, minv));
            let m2 = _mm256_max_epi32(m1, shl2_avx2(m1, minv));
            let m4 = _mm256_max_epi32(m2, shl4_avx2(m2, minv));
            let m = _mm256_max_epi32(m4, carryv);
            _mm256_storeu_si256(
                cur.as_mut_ptr().add(j) as *mut __m256i,
                _mm256_add_epi32(m, ramp),
            );
            carryv = _mm256_permutevar8x32_epi32(m, _mm256_set1_epi32(7));
            ramp = _mm256_add_epi32(ramp, step);
            j += 8;
        }
        carry = _mm256_extract_epi32::<7>(carryv);
    }
    while j <= cols {
        let diag = prev[j - 1] + profile[j - 1];
        let up = prev[j] + gap;
        let t = if diag > up { diag } else { up };
        let u = t - j as i32 * gap;
        carry = if u > carry { u } else { carry };
        cur[j] = carry + j as i32 * gap;
        j += 1;
    }
}

/// SSE4.1 version of [`super::lanes::row_update`]: identical contract,
/// identical results, four columns per vector. `alignr` is SSSE3, which
/// SSE4.1 implies.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("sse4.1")`;
/// the dispatch layer does this once at `Kernel` construction.
#[target_feature(enable = "sse4.1")]
pub(crate) unsafe fn row_update_sse41(prev: &[i32], cur: &mut [i32], profile: &[i32], gap: i32) {
    let cols = profile.len();
    // Release-mode guards: the vector loop below reads and writes through
    // raw pointers (`.add(j)`), so an out-of-bounds row is UB, not a
    // panic — the checks must survive into optimized builds.
    assert_eq!(prev.len(), cols + 1, "prev row length");
    assert_eq!(cur.len(), cols + 1, "cur row length");
    let mut carry = cur[0];
    let mut j = 1usize;
    if j + 4 <= cols + 1 {
        let gapv = _mm_set1_epi32(gap);
        let minv = _mm_set1_epi32(i32::MIN);
        let step = _mm_set1_epi32(gap.wrapping_mul(4));
        let mut r = [0i32; 4];
        for (l, slot) in r.iter_mut().enumerate() {
            *slot = (l as i32 + 1).wrapping_mul(gap);
        }
        let mut ramp = _mm_loadu_si128(r.as_ptr() as *const __m128i);
        let mut carryv = _mm_set1_epi32(carry);
        while j + 4 <= cols + 1 {
            let diag = _mm_add_epi32(
                _mm_loadu_si128(prev.as_ptr().add(j - 1) as *const __m128i),
                _mm_loadu_si128(profile.as_ptr().add(j - 1) as *const __m128i),
            );
            let up = _mm_add_epi32(
                _mm_loadu_si128(prev.as_ptr().add(j) as *const __m128i),
                gapv,
            );
            let t = _mm_max_epi32(diag, up);
            let u = _mm_sub_epi32(t, ramp);
            // Shift-by-one / shift-by-two with MIN fill via alignr.
            let m1 = _mm_max_epi32(u, _mm_alignr_epi8::<12>(u, minv));
            let m2 = _mm_max_epi32(m1, _mm_alignr_epi8::<8>(m1, minv));
            let m = _mm_max_epi32(m2, carryv);
            _mm_storeu_si128(
                cur.as_mut_ptr().add(j) as *mut __m128i,
                _mm_add_epi32(m, ramp),
            );
            carryv = _mm_shuffle_epi32::<0xFF>(m);
            ramp = _mm_add_epi32(ramp, step);
            j += 4;
        }
        carry = _mm_extract_epi32::<3>(carryv);
    }
    while j <= cols {
        let diag = prev[j - 1] + profile[j - 1];
        let up = prev[j] + gap;
        let t = if diag > up { diag } else { up };
        let u = t - j as i32 * gap;
        carry = if u > carry { u } else { carry };
        cur[j] = carry + j as i32 * gap;
        j += 1;
    }
}

//! Explicit SSE4.1 / AVX2 / AVX-512 row-update kernels, plus the striped
//! inter-sequence batch kernels behind [`crate::batch::BatchKernel`].
//!
//! Hand-written `core::arch` versions of [`super::row_update_portable`],
//! selected at runtime by the dispatch layer after
//! `is_x86_feature_detected!` has confirmed the ISA (see
//! [`super::KernelBackend::is_available`]). The math is identical to the
//! portable kernel — pass A computes `max(diag, up)`, pass B runs a
//! log-step inclusive prefix max in the ramp-free u-domain — so every ISA
//! is bit-identical to the scalar kernel.
//!
//! This module is the only `unsafe` surface of the workspace outside the
//! audited `DisjointBuf` writes, and lint rule R6 pins every
//! `#[target_feature]` function here.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

/// Lane-shift `x` one `i32` toward higher lanes, filling lane 0 from
/// `fill` (lane `l` of the result is `x`'s lane `l-1`).
///
/// # Safety
///
/// Requires AVX2 (guaranteed by the caller's own `target_feature`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn shl1_avx2(x: __m256i, fill: __m256i) -> __m256i {
    // Selector 0x08: low 128 = zero, high 128 = x's low half — the
    // cross-lane carry `alignr` cannot express on its own.
    let low_to_high = _mm256_permute2x128_si256::<0x08>(x, x);
    let s = _mm256_alignr_epi8::<12>(x, low_to_high);
    _mm256_blend_epi32::<0b0000_0001>(s, fill)
}

/// Lane-shift `x` two `i32`s toward higher lanes, filling lanes 0–1.
///
/// # Safety
///
/// Requires AVX2 (guaranteed by the caller's own `target_feature`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn shl2_avx2(x: __m256i, fill: __m256i) -> __m256i {
    let low_to_high = _mm256_permute2x128_si256::<0x08>(x, x);
    let s = _mm256_alignr_epi8::<8>(x, low_to_high);
    _mm256_blend_epi32::<0b0000_0011>(s, fill)
}

/// Lane-shift `x` four `i32`s toward higher lanes, filling lanes 0–3.
///
/// # Safety
///
/// Requires AVX2 (guaranteed by the caller's own `target_feature`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn shl4_avx2(x: __m256i, fill: __m256i) -> __m256i {
    let low_to_high = _mm256_permute2x128_si256::<0x08>(x, x);
    _mm256_blend_epi32::<0b0000_1111>(low_to_high, fill)
}

/// AVX2 version of [`super::row_update_portable`]: identical contract,
/// identical results, eight columns per vector.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("avx2")`; the
/// dispatch layer does this once at `Kernel` construction.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn row_update_avx2(prev: &[i32], cur: &mut [i32], profile: &[i32], gap: i32) {
    let cols = profile.len();
    // Release-mode guards: the vector loop below reads and writes through
    // raw pointers (`.add(j)`), so an out-of-bounds row is UB, not a
    // panic — the checks must survive into optimized builds.
    assert_eq!(prev.len(), cols + 1, "prev row length");
    assert_eq!(cur.len(), cols + 1, "cur row length");
    let mut carry = cur[0];
    let mut j = 1usize;
    if j + 8 <= cols + 1 {
        let gapv = _mm256_set1_epi32(gap);
        let minv = _mm256_set1_epi32(i32::MIN);
        let step = _mm256_set1_epi32(gap.wrapping_mul(8));
        // ramp lanes hold (j+l)*gap for the block's eight columns.
        let mut r = [0i32; 8];
        for (l, slot) in r.iter_mut().enumerate() {
            *slot = (l as i32 + 1).wrapping_mul(gap);
        }
        let mut ramp = _mm256_loadu_si256(r.as_ptr() as *const __m256i);
        let mut carryv = _mm256_set1_epi32(carry);
        while j + 8 <= cols + 1 {
            let diag = _mm256_add_epi32(
                _mm256_loadu_si256(prev.as_ptr().add(j - 1) as *const __m256i),
                _mm256_loadu_si256(profile.as_ptr().add(j - 1) as *const __m256i),
            );
            let up = _mm256_add_epi32(
                _mm256_loadu_si256(prev.as_ptr().add(j) as *const __m256i),
                gapv,
            );
            let t = _mm256_max_epi32(diag, up);
            let u = _mm256_sub_epi32(t, ramp);
            let m1 = _mm256_max_epi32(u, shl1_avx2(u, minv));
            let m2 = _mm256_max_epi32(m1, shl2_avx2(m1, minv));
            let m4 = _mm256_max_epi32(m2, shl4_avx2(m2, minv));
            let m = _mm256_max_epi32(m4, carryv);
            _mm256_storeu_si256(
                cur.as_mut_ptr().add(j) as *mut __m256i,
                _mm256_add_epi32(m, ramp),
            );
            carryv = _mm256_permutevar8x32_epi32(m, _mm256_set1_epi32(7));
            ramp = _mm256_add_epi32(ramp, step);
            j += 8;
        }
        carry = _mm256_extract_epi32::<7>(carryv);
    }
    while j <= cols {
        let diag = prev[j - 1] + profile[j - 1];
        let up = prev[j] + gap;
        let t = if diag > up { diag } else { up };
        let u = t - j as i32 * gap;
        carry = if u > carry { u } else { carry };
        cur[j] = carry + j as i32 * gap;
        j += 1;
    }
}

/// AVX-512F version of [`super::row_update_portable`]: identical
/// contract, identical results, sixteen columns per vector.
///
/// The shift-by-`k` steps of the prefix max use
/// `_mm512_alignr_epi32::<{16 - k}>(x, fill)` — the concatenation
/// `[x : fill]` shifted right by `16 - k` dwords leaves `x`'s lane `l`
/// in result lane `l + k` and fills lanes `0..k` from `fill`'s top
/// lanes, which are all `i32::MIN` here. The carry broadcast is a
/// single `vpermd` (`_mm512_permutexvar_epi32` with index 15).
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("avx512f")`;
/// the dispatch layer does this once at `Kernel` construction.
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn row_update_avx512(prev: &[i32], cur: &mut [i32], profile: &[i32], gap: i32) {
    let cols = profile.len();
    // Release-mode guards: the vector loop below reads and writes through
    // raw pointers (`.add(j)`), so an out-of-bounds row is UB, not a
    // panic — the checks must survive into optimized builds.
    assert_eq!(prev.len(), cols + 1, "prev row length");
    assert_eq!(cur.len(), cols + 1, "cur row length");
    let mut carry = cur[0];
    let mut j = 1usize;
    if j + 16 <= cols + 1 {
        let gapv = _mm512_set1_epi32(gap);
        let minv = _mm512_set1_epi32(i32::MIN);
        let step = _mm512_set1_epi32(gap.wrapping_mul(16));
        // ramp lanes hold (j+l)*gap for the block's sixteen columns.
        let mut r = [0i32; 16];
        for (l, slot) in r.iter_mut().enumerate() {
            *slot = (l as i32 + 1).wrapping_mul(gap);
        }
        let mut ramp = _mm512_loadu_si512(r.as_ptr() as *const __m512i);
        let mut carryv = _mm512_set1_epi32(carry);
        let top_lane = _mm512_set1_epi32(15);
        while j + 16 <= cols + 1 {
            let diag = _mm512_add_epi32(
                _mm512_loadu_si512(prev.as_ptr().add(j - 1) as *const __m512i),
                _mm512_loadu_si512(profile.as_ptr().add(j - 1) as *const __m512i),
            );
            let up = _mm512_add_epi32(
                _mm512_loadu_si512(prev.as_ptr().add(j) as *const __m512i),
                gapv,
            );
            let t = _mm512_max_epi32(diag, up);
            let u = _mm512_sub_epi32(t, ramp);
            let m1 = _mm512_max_epi32(u, _mm512_alignr_epi32::<15>(u, minv));
            let m2 = _mm512_max_epi32(m1, _mm512_alignr_epi32::<14>(m1, minv));
            let m4 = _mm512_max_epi32(m2, _mm512_alignr_epi32::<12>(m2, minv));
            let m8 = _mm512_max_epi32(m4, _mm512_alignr_epi32::<8>(m4, minv));
            let m = _mm512_max_epi32(m8, carryv);
            _mm512_storeu_si512(
                cur.as_mut_ptr().add(j) as *mut __m512i,
                _mm512_add_epi32(m, ramp),
            );
            carryv = _mm512_permutexvar_epi32(top_lane, m);
            ramp = _mm512_add_epi32(ramp, step);
            j += 16;
        }
        carry = _mm512_cvtsi512_si32(carryv);
    }
    while j <= cols {
        let diag = prev[j - 1] + profile[j - 1];
        let up = prev[j] + gap;
        let t = if diag > up { diag } else { up };
        let u = t - j as i32 * gap;
        carry = if u > carry { u } else { carry };
        cur[j] = carry + j as i32 * gap;
        j += 1;
    }
}

// ---------------------------------------------------------------------
// Inter-sequence batch kernels (crate::batch::BatchKernel).
//
// One independent pair per 16-bit SIMD lane: at a fixed (i, j) every
// lane's left-dependency is its own previous j iteration, so the plain
// three-way max runs vertically with no prefix scan at all. Adds are
// *saturating*; the safe layer tracks per-lane running min/max and
// recomputes any lane that strays into the saturation danger zone on the
// exact i32 single-pair path, so results stay bit-identical to scalar.
// ---------------------------------------------------------------------

use crate::batch::{BDIR_DIAG, BDIR_LEFT, BDIR_UP};

/// Transposes an 8×8 block of `i16`s (the classic three-stage unpack
/// network): lane `t` of output `t` holds input `r[l]`'s element `t`.
///
/// # Safety
///
/// Requires SSE4.1 (guaranteed by the caller's own `target_feature`;
/// the unpacks themselves are SSE2).
#[inline]
#[target_feature(enable = "sse4.1")]
unsafe fn transpose8x8_epi16(r: [__m128i; 8]) -> [__m128i; 8] {
    let a0 = _mm_unpacklo_epi16(r[0], r[1]);
    let a1 = _mm_unpackhi_epi16(r[0], r[1]);
    let a2 = _mm_unpacklo_epi16(r[2], r[3]);
    let a3 = _mm_unpackhi_epi16(r[2], r[3]);
    let a4 = _mm_unpacklo_epi16(r[4], r[5]);
    let a5 = _mm_unpackhi_epi16(r[4], r[5]);
    let a6 = _mm_unpacklo_epi16(r[6], r[7]);
    let a7 = _mm_unpackhi_epi16(r[6], r[7]);
    let b0 = _mm_unpacklo_epi32(a0, a2);
    let b1 = _mm_unpackhi_epi32(a0, a2);
    let b2 = _mm_unpacklo_epi32(a1, a3);
    let b3 = _mm_unpackhi_epi32(a1, a3);
    let b4 = _mm_unpacklo_epi32(a4, a6);
    let b5 = _mm_unpackhi_epi32(a4, a6);
    let b6 = _mm_unpacklo_epi32(a5, a7);
    let b7 = _mm_unpackhi_epi32(a5, a7);
    [
        _mm_unpacklo_epi64(b0, b4),
        _mm_unpackhi_epi64(b0, b4),
        _mm_unpacklo_epi64(b1, b5),
        _mm_unpackhi_epi64(b1, b5),
        _mm_unpacklo_epi64(b2, b6),
        _mm_unpackhi_epi64(b2, b6),
        _mm_unpacklo_epi64(b3, b7),
        _mm_unpackhi_epi64(b3, b7),
    ]
}

/// Interleaves 16 per-lane `i16` profile rows into one striped score row:
/// `out[j*16 + l] = rows[l][j]`. Every `rows[l]` must have length
/// `cols_pad` (a multiple of 8) and `out` length `cols_pad * 16`.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("avx2")`
/// (which implies the SSE4.1 transpose helper is safe too).
#[target_feature(enable = "avx2,sse4.1")]
pub(crate) unsafe fn batch_score_row_avx2(rows: &[&[i16]], out: &mut [i16]) {
    assert_eq!(rows.len(), 16, "lane count");
    let cols_pad = rows[0].len();
    // Release-mode guards: the block loop below reads and writes through
    // raw pointers, so a short row is UB, not a panic.
    assert_eq!(cols_pad % 8, 0, "padded width multiple of 8");
    assert_eq!(out.len(), cols_pad * 16, "striped score row length");
    for r in rows.iter() {
        assert_eq!(r.len(), cols_pad, "profile row length");
    }
    let mut jb = 0usize;
    while jb < cols_pad {
        let mut lo = [_mm_setzero_si128(); 8];
        let mut hi = [_mm_setzero_si128(); 8];
        for l in 0..8 {
            lo[l] = _mm_loadu_si128(rows[l].as_ptr().add(jb) as *const __m128i);
            hi[l] = _mm_loadu_si128(rows[l + 8].as_ptr().add(jb) as *const __m128i);
        }
        let c = transpose8x8_epi16(lo);
        let d = transpose8x8_epi16(hi);
        for (t, (&ct, &dt)) in c.iter().zip(d.iter()).enumerate() {
            _mm256_storeu_si256(
                out.as_mut_ptr().add((jb + t) * 16) as *mut __m256i,
                _mm256_set_m128i(dt, ct),
            );
        }
        jb += 8;
    }
}

/// Interleaves 8 per-lane `i16` profile rows into one striped score row:
/// `out[j*8 + l] = rows[l][j]`. Every `rows[l]` must have length
/// `cols_pad` (a multiple of 8) and `out` length `cols_pad * 8`.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("sse4.1")`.
#[target_feature(enable = "sse4.1")]
pub(crate) unsafe fn batch_score_row_sse41(rows: &[&[i16]], out: &mut [i16]) {
    assert_eq!(rows.len(), 8, "lane count");
    let cols_pad = rows[0].len();
    // Release-mode guards: raw-pointer loop below.
    assert_eq!(cols_pad % 8, 0, "padded width multiple of 8");
    assert_eq!(out.len(), cols_pad * 8, "striped score row length");
    for r in rows.iter() {
        assert_eq!(r.len(), cols_pad, "profile row length");
    }
    let mut jb = 0usize;
    while jb < cols_pad {
        let mut blk = [_mm_setzero_si128(); 8];
        for l in 0..8 {
            blk[l] = _mm_loadu_si128(rows[l].as_ptr().add(jb) as *const __m128i);
        }
        let c = transpose8x8_epi16(blk);
        for (t, &ct) in c.iter().enumerate() {
            _mm_storeu_si128(out.as_mut_ptr().add((jb + t) * 8) as *mut __m128i, ct);
        }
        jb += 8;
    }
}

/// One striped batch row update over 16 lanes: for every column `j`,
/// computes the saturating three-way max for all 16 pairs at once,
/// records the winning direction (Diag ≻ Up ≻ Left) in `dirs`, and folds
/// the new values into the running per-lane `minmax` saturation tracker.
///
/// Layout contract (striped, lane-major within a column):
/// `prev`/`cur` are `(cols + 1) * 16` with `cur[0..16]` holding the row's
/// left-boundary values on entry; `scores[ (j-1)*16 + l ]` is lane `l`'s
/// substitution score for column `j`; `dirs` is `cols * 16`;
/// `gaps` is one per-lane gap penalty; `minmax` is 16 running minima then
/// 16 running maxima.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("avx2")`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn batch_row_update_avx2(
    prev: &[i16],
    cur: &mut [i16],
    scores: &[i16],
    gaps: &[i16],
    dirs: &mut [u8],
    minmax: &mut [i16],
) {
    let cols = dirs.len() / 16;
    // Release-mode guards: the column loop reads and writes through raw
    // pointers, so an undersized slab is UB, not a panic.
    assert_eq!(dirs.len() % 16, 0, "dir row length");
    assert_eq!(prev.len(), (cols + 1) * 16, "prev row length");
    assert_eq!(cur.len(), (cols + 1) * 16, "cur row length");
    assert!(scores.len() >= cols * 16, "score row length");
    assert_eq!(gaps.len(), 16, "per-lane gaps");
    assert_eq!(minmax.len(), 32, "per-lane min/max");
    let gapv = _mm256_loadu_si256(gaps.as_ptr() as *const __m256i);
    let mut minv = _mm256_loadu_si256(minmax.as_ptr() as *const __m256i);
    let mut maxv = _mm256_loadu_si256(minmax.as_ptr().add(16) as *const __m256i);
    let dir_diag = _mm256_set1_epi16(BDIR_DIAG as i16);
    let dir_up = _mm256_set1_epi16(BDIR_UP as i16);
    let dir_left = _mm256_set1_epi16(BDIR_LEFT as i16);
    let mut diagv = _mm256_loadu_si256(prev.as_ptr() as *const __m256i);
    let mut leftv = _mm256_loadu_si256(cur.as_ptr() as *const __m256i);
    for j in 1..=cols {
        let upv = _mm256_loadu_si256(prev.as_ptr().add(j * 16) as *const __m256i);
        let sv = _mm256_loadu_si256(scores.as_ptr().add((j - 1) * 16) as *const __m256i);
        let t1 = _mm256_adds_epi16(diagv, sv);
        let t2 = _mm256_adds_epi16(upv, gapv);
        let t3 = _mm256_adds_epi16(leftv, gapv);
        let v = _mm256_max_epi16(_mm256_max_epi16(t1, t2), t3);
        _mm256_storeu_si256(cur.as_mut_ptr().add(j * 16) as *mut __m256i, v);
        // Precedence order after the max, exactly like the scalar
        // fill_dir: Diag wherever t1 == v, else Up wherever t2 == v.
        let d = _mm256_blendv_epi8(dir_left, dir_up, _mm256_cmpeq_epi16(t2, v));
        let d = _mm256_blendv_epi8(d, dir_diag, _mm256_cmpeq_epi16(t1, v));
        // Pack the 16 i16 codes to 16 bytes: packs gives [p_lo p_lo |
        // p_hi p_hi] per 128-bit half; permute qwords 0 and 2 together.
        let packed = _mm256_packs_epi16(d, d);
        let packed = _mm256_permute4x64_epi64::<0b1110_1000>(packed);
        _mm_storeu_si128(
            dirs.as_mut_ptr().add((j - 1) * 16) as *mut __m128i,
            _mm256_castsi256_si128(packed),
        );
        minv = _mm256_min_epi16(minv, v);
        maxv = _mm256_max_epi16(maxv, v);
        diagv = upv;
        leftv = v;
    }
    _mm256_storeu_si256(minmax.as_mut_ptr() as *mut __m256i, minv);
    _mm256_storeu_si256(minmax.as_mut_ptr().add(16) as *mut __m256i, maxv);
}

/// Eight-lane SSE4.1 variant of [`batch_row_update_avx2`]; identical
/// contract with a lane width of 8 (`prev`/`cur` are `(cols + 1) * 8`,
/// `dirs` is `cols * 8`, `minmax` is 8 + 8).
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("sse4.1")`.
#[target_feature(enable = "sse4.1")]
pub(crate) unsafe fn batch_row_update_sse41(
    prev: &[i16],
    cur: &mut [i16],
    scores: &[i16],
    gaps: &[i16],
    dirs: &mut [u8],
    minmax: &mut [i16],
) {
    let cols = dirs.len() / 8;
    // Release-mode guards: raw-pointer column loop below.
    assert_eq!(dirs.len() % 8, 0, "dir row length");
    assert_eq!(prev.len(), (cols + 1) * 8, "prev row length");
    assert_eq!(cur.len(), (cols + 1) * 8, "cur row length");
    assert!(scores.len() >= cols * 8, "score row length");
    assert_eq!(gaps.len(), 8, "per-lane gaps");
    assert_eq!(minmax.len(), 16, "per-lane min/max");
    let gapv = _mm_loadu_si128(gaps.as_ptr() as *const __m128i);
    let mut minv = _mm_loadu_si128(minmax.as_ptr() as *const __m128i);
    let mut maxv = _mm_loadu_si128(minmax.as_ptr().add(8) as *const __m128i);
    let dir_diag = _mm_set1_epi16(BDIR_DIAG as i16);
    let dir_up = _mm_set1_epi16(BDIR_UP as i16);
    let dir_left = _mm_set1_epi16(BDIR_LEFT as i16);
    let mut diagv = _mm_loadu_si128(prev.as_ptr() as *const __m128i);
    let mut leftv = _mm_loadu_si128(cur.as_ptr() as *const __m128i);
    for j in 1..=cols {
        let upv = _mm_loadu_si128(prev.as_ptr().add(j * 8) as *const __m128i);
        let sv = _mm_loadu_si128(scores.as_ptr().add((j - 1) * 8) as *const __m128i);
        let t1 = _mm_adds_epi16(diagv, sv);
        let t2 = _mm_adds_epi16(upv, gapv);
        let t3 = _mm_adds_epi16(leftv, gapv);
        let v = _mm_max_epi16(_mm_max_epi16(t1, t2), t3);
        _mm_storeu_si128(cur.as_mut_ptr().add(j * 8) as *mut __m128i, v);
        let d = _mm_blendv_epi8(dir_left, dir_up, _mm_cmpeq_epi16(t2, v));
        let d = _mm_blendv_epi8(d, dir_diag, _mm_cmpeq_epi16(t1, v));
        _mm_storel_epi64(
            dirs.as_mut_ptr().add((j - 1) * 8) as *mut __m128i,
            _mm_packs_epi16(d, d),
        );
        minv = _mm_min_epi16(minv, v);
        maxv = _mm_max_epi16(maxv, v);
        diagv = upv;
        leftv = v;
    }
    _mm_storeu_si128(minmax.as_mut_ptr() as *mut __m128i, minv);
    _mm_storeu_si128(minmax.as_mut_ptr().add(8) as *mut __m128i, maxv);
}

/// SSE4.1 version of [`super::row_update_portable`]: identical contract,
/// identical results, four columns per vector. `alignr` is SSSE3, which
/// SSE4.1 implies.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("sse4.1")`;
/// the dispatch layer does this once at `Kernel` construction.
#[target_feature(enable = "sse4.1")]
pub(crate) unsafe fn row_update_sse41(prev: &[i32], cur: &mut [i32], profile: &[i32], gap: i32) {
    let cols = profile.len();
    // Release-mode guards: the vector loop below reads and writes through
    // raw pointers (`.add(j)`), so an out-of-bounds row is UB, not a
    // panic — the checks must survive into optimized builds.
    assert_eq!(prev.len(), cols + 1, "prev row length");
    assert_eq!(cur.len(), cols + 1, "cur row length");
    let mut carry = cur[0];
    let mut j = 1usize;
    if j + 4 <= cols + 1 {
        let gapv = _mm_set1_epi32(gap);
        let minv = _mm_set1_epi32(i32::MIN);
        let step = _mm_set1_epi32(gap.wrapping_mul(4));
        let mut r = [0i32; 4];
        for (l, slot) in r.iter_mut().enumerate() {
            *slot = (l as i32 + 1).wrapping_mul(gap);
        }
        let mut ramp = _mm_loadu_si128(r.as_ptr() as *const __m128i);
        let mut carryv = _mm_set1_epi32(carry);
        while j + 4 <= cols + 1 {
            let diag = _mm_add_epi32(
                _mm_loadu_si128(prev.as_ptr().add(j - 1) as *const __m128i),
                _mm_loadu_si128(profile.as_ptr().add(j - 1) as *const __m128i),
            );
            let up = _mm_add_epi32(
                _mm_loadu_si128(prev.as_ptr().add(j) as *const __m128i),
                gapv,
            );
            let t = _mm_max_epi32(diag, up);
            let u = _mm_sub_epi32(t, ramp);
            // Shift-by-one / shift-by-two with MIN fill via alignr.
            let m1 = _mm_max_epi32(u, _mm_alignr_epi8::<12>(u, minv));
            let m2 = _mm_max_epi32(m1, _mm_alignr_epi8::<8>(m1, minv));
            let m = _mm_max_epi32(m2, carryv);
            _mm_storeu_si128(
                cur.as_mut_ptr().add(j) as *mut __m128i,
                _mm_add_epi32(m, ramp),
            );
            carryv = _mm_shuffle_epi32::<0xFF>(m);
            ramp = _mm_add_epi32(ramp, step);
            j += 4;
        }
        carry = _mm_extract_epi32::<3>(carryv);
    }
    while j <= cols {
        let diag = prev[j - 1] + profile[j - 1];
        let up = prev[j] + gap;
        let t = if diag > up { diag } else { up };
        let u = t - j as i32 * gap;
        carry = if u > carry { u } else { carry };
        cur[j] = carry + j as i32 * gap;
        j += 1;
    }
}

//! Portable fixed-width lane kernel: the always-on vector path.
//!
//! Straight-line `[i32; 8]` array code with no data-dependent branches in
//! the block body — the shape LLVM's autovectorizer reliably maps onto
//! whatever SIMD the target has, with no `unsafe` and no feature
//! detection. The math is the two-pass prefix-max scan documented in the
//! parent module; the scalar tail below the last full block uses the same
//! u-domain recurrence, so the whole routine is bit-identical to the
//! scalar kernel for every input.

/// Lane width of one block. Eight `i32`s = one AVX2 register; narrower
/// targets simply use two or four hardware vectors per block.
pub(crate) const LANES: usize = 8;

/// Computes row `cur` from row `prev` under the linear-gap recurrence.
///
/// Contract shared by every backend: `prev.len() == cur.len() ==
/// profile.len() + 1`, `profile[j-1] = S(a_i, b[j-1])` for this row's
/// residue, and `cur[0]` already holds the left-boundary value. On return
/// `cur[j] = max(prev[j-1] + profile[j-1], prev[j] + gap, cur[j-1] + gap)`
/// for every `j >= 1` — exactly the scalar kernel's row.
pub(crate) fn row_update(prev: &[i32], cur: &mut [i32], profile: &[i32], gap: i32) {
    let cols = profile.len();
    // Release-mode guards: dispatch hands arbitrary caller slices to this
    // fn, and the block loop indexes `prev[j + l]` up to `cols`; keep the
    // length contract checked in optimized builds too.
    assert_eq!(prev.len(), cols + 1, "prev row length");
    assert_eq!(cur.len(), cols + 1, "cur row length");
    // Running maximum over the ramp-free domain u[j] = H(i,j) - j*gap;
    // u[0] is the left boundary itself.
    let mut carry = cur[0];
    let mut j = 1usize;
    while j + LANES <= cols + 1 {
        // Pass A: the vertically independent terms, t[l] = max(diag, up).
        let mut t = [0i32; LANES];
        for l in 0..LANES {
            let diag = prev[j + l - 1] + profile[j + l - 1];
            let up = prev[j + l] + gap;
            t[l] = if diag > up { diag } else { up };
        }
        // Remove the gap ramp: in the u-domain the row-carried term
        // `cur[j-1] + gap` becomes a plain inclusive prefix maximum.
        let mut m = [0i32; LANES];
        for l in 0..LANES {
            m[l] = t[l] - (j + l) as i32 * gap;
        }
        // Pass B: log-step inclusive prefix max, shifting in i32::MIN.
        let mut s = [i32::MIN; LANES];
        s[1..].copy_from_slice(&m[..LANES - 1]);
        for l in 0..LANES {
            m[l] = if s[l] > m[l] { s[l] } else { m[l] };
        }
        let mut s = [i32::MIN; LANES];
        s[2..].copy_from_slice(&m[..LANES - 2]);
        for l in 0..LANES {
            m[l] = if s[l] > m[l] { s[l] } else { m[l] };
        }
        let mut s = [i32::MIN; LANES];
        s[4..].copy_from_slice(&m[..LANES - 4]);
        for l in 0..LANES {
            m[l] = if s[l] > m[l] { s[l] } else { m[l] };
        }
        // Fold in the carry from the previous block and restore the ramp.
        for v in m.iter_mut() {
            *v = if carry > *v { carry } else { *v };
        }
        carry = m[LANES - 1];
        for l in 0..LANES {
            cur[j + l] = m[l] + (j + l) as i32 * gap;
        }
        j += LANES;
    }
    // Scalar tail over the same u-domain recurrence.
    while j <= cols {
        let diag = prev[j - 1] + profile[j - 1];
        let up = prev[j] + gap;
        let t = if diag > up { diag } else { up };
        let u = t - j as i32 * gap;
        carry = if u > carry { u } else { carry };
        cur[j] = carry + j as i32 * gap;
        j += 1;
    }
}

//! Vectorized DP kernels: backend selection and dispatch.
//!
//! The scalar kernels in [`crate::kernel`] walk the recurrence
//!
//! ```text
//! H(i,j) = max( H(i-1,j-1) + S(a[i-1], b[j-1]),
//!               H(i-1,j)   + gap,
//!               H(i,j-1)   + gap )
//! ```
//!
//! one cell at a time. The `H(i,j-1) + gap` term carries a dependency
//! along the row — the same dependency the classic anti-diagonal
//! transformation removes by sweeping diagonals. This module removes it
//! algebraically instead, which keeps the memory accesses row-major and
//! unit-stride (the anti-diagonal layout scatters them):
//!
//! 1. **Pass A** (vertically independent, trivially vectorizable):
//!    `t[j] = max(H(i-1,j-1) + S(a_i, b_j), H(i-1,j) + gap)`.
//! 2. **Pass B** (prefix scan): with the gap ramp `r[j] = j·gap` define
//!    `u[j] = t[j] − r[j]`. Then `H(i,j) = r[j] + max(u[0..=j])` where
//!    `u[0]` is the left boundary — a plain inclusive prefix maximum,
//!    computed in `log₂(width)` shift-and-max steps per vector block.
//!
//! The identity is exact over the integers (max-plus algebra has no
//! rounding), so **every backend produces bit-identical scores, cell
//! counts, and tracebacks** — the property the differential suite in
//! `tests/kernel_equivalence.rs` enforces. Ties need no special care:
//! equal scores are equal bit patterns, and both score-based traceback
//! and the direction derivation in [`Kernel::fill_dir`] apply the shared
//! Diag ≻ Up ≻ Left precedence *after* the max, not during it.
//!
//! Backends:
//!
//! * [`KernelBackend::Scalar`] — the reference kernels, always available
//!   and the fallback on every non-x86-64 target;
//! * [`KernelBackend::Sse41`] / [`KernelBackend::Avx2`] /
//!   [`KernelBackend::Avx512`] — explicit `core::arch` kernels, admitted
//!   only after `is_x86_feature_detected!` (rule R6 pins their
//!   `#[target_feature]` functions to this module).
//!
//! (An earlier "portable lanes" backend — `[i32; 8]` blocks left to the
//! autovectorizer — measured at 0.2–0.3× *scalar* on x86-64 and was
//! removed; see BENCH_kernels.json history.)
//!
//! Scoring goes through a [`QueryProfile`] (contiguous per-residue score
//! rows) and scratch comes from a shared [`KernelArena`], so steady-state
//! block fills perform no allocation at all. The intra-sequence kernels
//! here speed up one pair; for many small independent pairs see the
//! inter-sequence [`crate::batch::BatchKernel`], whose striped
//! `#[target_feature]` kernels also live in this module's `x86` file.

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

use std::sync::Arc;

use flsa_scoring::{QueryProfile, ScoringScheme};

use crate::arena::KernelArena;
use crate::boundary::check_boundary;
use crate::kernel;
use crate::matrix::{Dir, DirMatrix, ScoreMatrix};
use crate::Metrics;

/// Rectangles narrower than this skip the vector path: profile build and
/// prefix-scan setup would dominate. Purely a performance cutoff — both
/// paths produce identical bits.
const MIN_VEC_COLS: usize = 16;

/// Which row-update implementation a [`Kernel`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// The reference scalar kernels in [`crate::kernel`].
    Scalar,
    /// Explicit SSE4.1 intrinsics (x86-64, runtime-detected).
    Sse41,
    /// Explicit AVX2 intrinsics (x86-64, runtime-detected).
    Avx2,
    /// Explicit AVX-512F intrinsics (x86-64, runtime-detected).
    Avx512,
}

impl KernelBackend {
    /// Every backend, in increasing vector width.
    pub const ALL: [KernelBackend; 4] = [
        KernelBackend::Scalar,
        KernelBackend::Sse41,
        KernelBackend::Avx2,
        KernelBackend::Avx512,
    ];

    /// Stable lowercase name (CLI values, trace events, bench reports).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse41 => "sse4.1",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
        }
    }

    /// Parses a backend name as accepted by `flsa align --kernel`.
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "sse4.1" | "sse41" => Some(KernelBackend::Sse41),
            "avx2" => Some(KernelBackend::Avx2),
            "avx512" | "avx512f" => Some(KernelBackend::Avx512),
            _ => None,
        }
    }

    /// True when this backend can run on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse41 => is_x86_feature_detected!("sse4.1"),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The widest backend available on this CPU:
    /// AVX-512 ≻ AVX2 ≻ SSE4.1 ≻ scalar.
    pub fn detect_best() -> KernelBackend {
        if KernelBackend::Avx512.is_available() {
            KernelBackend::Avx512
        } else if KernelBackend::Avx2.is_available() {
            KernelBackend::Avx2
        } else if KernelBackend::Sse41.is_available() {
            KernelBackend::Sse41
        } else {
            KernelBackend::Scalar
        }
    }

    /// Every backend available on this CPU.
    pub fn available() -> Vec<KernelBackend> {
        KernelBackend::ALL
            .into_iter()
            .filter(|b| b.is_available())
            .collect()
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Names of the CPU SIMD features relevant to kernel selection that the
/// current machine reports (empty on non-x86-64 targets). Recorded in
/// bench reports so numbers can be compared across machines.
pub fn detected_cpu_features() -> Vec<&'static str> {
    #[allow(unused_mut)] // non-x86 builds return it untouched
    let mut out = Vec::new();
    #[cfg(target_arch = "x86_64")]
    for (name, present) in [
        ("sse2", is_x86_feature_detected!("sse2")),
        ("sse4.1", is_x86_feature_detected!("sse4.1")),
        ("avx", is_x86_feature_detected!("avx")),
        ("avx2", is_x86_feature_detected!("avx2")),
        ("avx512f", is_x86_feature_detected!("avx512f")),
        ("avx512bw", is_x86_feature_detected!("avx512bw")),
    ] {
        if present {
            out.push(name);
        }
    }
    out
}

/// Portable one-row update in the u-domain formulation: pass A and the
/// prefix max fused into one scalar sweep. Identical results to
/// [`crate::kernel`]'s cell-at-a-time recurrence (the reformulation is
/// exact over the integers) and to every vector kernel in [`x86`].
///
/// Contract: `prev.len() == cur.len() == profile.len() + 1`, and
/// `cur[0]` holds the row's left-boundary value on entry.
fn row_update_portable(prev: &[i32], cur: &mut [i32], profile: &[i32], gap: i32) {
    let cols = profile.len();
    assert_eq!(prev.len(), cols + 1, "prev row length");
    assert_eq!(cur.len(), cols + 1, "cur row length");
    let mut carry = cur[0];
    for j in 1..=cols {
        let diag = prev[j - 1] + profile[j - 1];
        let up = prev[j] + gap;
        let t = if diag > up { diag } else { up };
        let u = t - j as i32 * gap;
        carry = if u > carry { u } else { carry };
        cur[j] = carry + j as i32 * gap;
    }
}

/// A requested backend the current CPU cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedBackend {
    /// The rejected backend.
    pub backend: KernelBackend,
}

impl std::fmt::Display for UnsupportedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel backend `{}` is not supported on this CPU",
            self.backend.name()
        )
    }
}

impl std::error::Error for UnsupportedBackend {}

/// A kernel handle: a backend plus the scratch arena its fills draw from.
///
/// Cheap to clone (the arena is shared through an [`Arc`]) and `Sync`, so
/// parallel tile workers can share one handle. All fill methods mirror
/// the free functions in [`crate::kernel`] exactly — same signatures,
/// same panics, same [`Metrics`] accounting, bit-identical output.
#[derive(Debug, Clone)]
pub struct Kernel {
    backend: KernelBackend,
    arena: Arc<KernelArena>,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::scalar()
    }
}

impl Kernel {
    /// A kernel on `backend`, rejecting backends the CPU cannot run.
    pub fn try_new(backend: KernelBackend) -> Result<Kernel, UnsupportedBackend> {
        if !backend.is_available() {
            return Err(UnsupportedBackend { backend });
        }
        Ok(Kernel {
            backend,
            arena: Arc::new(KernelArena::new()),
        })
    }

    /// The widest kernel available on this CPU.
    pub fn auto() -> Kernel {
        Kernel {
            backend: KernelBackend::detect_best(),
            arena: Arc::new(KernelArena::new()),
        }
    }

    /// The reference scalar kernel.
    pub fn scalar() -> Kernel {
        Kernel {
            backend: KernelBackend::Scalar,
            arena: Arc::new(KernelArena::new()),
        }
    }

    /// The active backend.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// The shared scratch arena.
    pub fn arena(&self) -> &Arc<KernelArena> {
        &self.arena
    }

    /// Permanently drops to the scalar backend and frees the arena's
    /// pooled scratch — the memory-pressure escape hatch: the scalar
    /// kernels run entirely in caller-owned buffers.
    pub fn degrade_to_scalar(&mut self) {
        self.backend = KernelBackend::Scalar;
        self.arena.clear();
    }

    fn vectorize(&self, rows: usize, cols: usize) -> bool {
        self.backend != KernelBackend::Scalar && rows >= 1 && cols >= MIN_VEC_COLS
    }

    /// Dispatches one row update to the active backend.
    #[inline]
    fn row_update(&self, prev: &[i32], cur: &mut [i32], profile: &[i32], gap: i32) {
        match self.backend {
            KernelBackend::Scalar => row_update_portable(prev, cur, profile, gap),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse41 => {
                // SAFETY: `try_new` admits Sse41 only after
                // `is_x86_feature_detected!("sse4.1")` returned true.
                unsafe { x86::row_update_sse41(prev, cur, profile, gap) }
            }
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => {
                // SAFETY: `try_new` admits Avx2 only after
                // `is_x86_feature_detected!("avx2")` returned true.
                unsafe { x86::row_update_avx2(prev, cur, profile, gap) }
            }
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => {
                // SAFETY: `try_new` admits Avx512 only after
                // `is_x86_feature_detected!("avx512f")` returned true.
                unsafe { x86::row_update_avx512(prev, cur, profile, gap) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Sse41 | KernelBackend::Avx2 | KernelBackend::Avx512 => {
                // `try_new` rejects these off x86-64, so this arm never
                // runs; the portable kernel keeps it correct regardless.
                row_update_portable(prev, cur, profile, gap)
            }
        }
    }

    /// Builds the query profile for `b` in arena-backed storage, sized
    /// exactly so the build never grows the buffer (which would escape the
    /// arena's byte accounting).
    fn take_profile(&self, scheme: &ScoringScheme, b: &[u8]) -> QueryProfile {
        let codes = scheme.matrix().alphabet().len();
        QueryProfile::build_in(scheme.matrix(), b, self.arena.take(codes * b.len()))
    }

    fn put_profile(&self, profile: QueryProfile) {
        self.arena.put(profile.into_storage());
    }

    /// [`crate::kernel::fill_full`] on the active backend.
    pub fn fill_full(
        &self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        scheme: &ScoringScheme,
        metrics: &Metrics,
    ) -> ScoreMatrix {
        self.fill_full_reusing(a, b, top, left, scheme, Vec::new(), metrics)
    }

    /// [`crate::kernel::fill_full_reusing`] on the active backend.
    #[allow(clippy::too_many_arguments)] // mirrors the DP recurrence inputs
    pub fn fill_full_reusing(
        &self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        scheme: &ScoringScheme,
        storage: Vec<i32>,
        metrics: &Metrics,
    ) -> ScoreMatrix {
        let rows = a.len();
        let cols = b.len();
        if !self.vectorize(rows, cols) {
            return kernel::fill_full_reusing(a, b, top, left, scheme, storage, metrics);
        }
        check_boundary(top, left, rows, cols);
        let gap = scheme.gap().linear_penalty();
        let profile = self.take_profile(scheme, b);
        let mut dpm = ScoreMatrix::from_storage(rows, cols, storage);
        dpm.row_mut(0).copy_from_slice(top);
        for i in 1..=rows {
            let (prev, cur) = dpm.rows_prev_cur(i);
            cur[0] = left[i];
            self.row_update(prev, cur, profile.row(a[i - 1]), gap);
        }
        self.put_profile(profile);
        metrics.add_cells(rows as u64 * cols as u64);
        dpm
    }

    /// [`crate::kernel::fill_last_row_col`] on the active backend.
    #[allow(clippy::too_many_arguments)] // mirrors the DP recurrence inputs
    pub fn fill_last_row_col(
        &self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        scheme: &ScoringScheme,
        out_bottom: &mut [i32],
        mut out_right: Option<&mut [i32]>,
        metrics: &Metrics,
    ) {
        let rows = a.len();
        let cols = b.len();
        if !self.vectorize(rows, cols) {
            return kernel::fill_last_row_col(
                a, b, top, left, scheme, out_bottom, out_right, metrics,
            );
        }
        check_boundary(top, left, rows, cols);
        assert_eq!(out_bottom.len(), cols + 1, "out_bottom length");
        if let Some(ref r) = out_right {
            assert_eq!(r.len(), rows + 1, "out_right length");
        }
        let gap = scheme.gap().linear_penalty();
        let profile = self.take_profile(scheme, b);
        let mut prev = self.arena.take(cols + 1);
        let mut cur = self.arena.take(cols + 1);
        prev.copy_from_slice(top);
        if let Some(ref mut r) = out_right {
            r[0] = top[cols];
        }
        for i in 1..=rows {
            cur[0] = left[i];
            self.row_update(&prev, &mut cur, profile.row(a[i - 1]), gap);
            if let Some(ref mut r) = out_right {
                r[i] = cur[cols];
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        out_bottom.copy_from_slice(&prev);
        self.arena.put(prev);
        self.arena.put(cur);
        self.put_profile(profile);
        metrics.add_cells(rows as u64 * cols as u64);
    }

    /// [`crate::kernel::fill_last_row`] on the active backend.
    #[allow(clippy::too_many_arguments)] // mirrors the DP recurrence inputs
    pub fn fill_last_row(
        &self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        scheme: &ScoringScheme,
        out_bottom: &mut [i32],
        metrics: &Metrics,
    ) {
        self.fill_last_row_col(a, b, top, left, scheme, out_bottom, None, metrics);
    }

    /// [`crate::kernel::fill_dir`] on the active backend. Directions are
    /// derived from the vectorized score rows with the shared Diag ≻ Up ≻
    /// Left precedence, so the packed matrix is byte-identical to the
    /// scalar kernel's.
    pub fn fill_dir(
        &self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        scheme: &ScoringScheme,
        metrics: &Metrics,
    ) -> (DirMatrix, Vec<i32>) {
        let rows = a.len();
        let cols = b.len();
        if !self.vectorize(rows, cols) {
            return kernel::fill_dir(a, b, top, left, scheme, metrics);
        }
        check_boundary(top, left, rows, cols);
        let gap = scheme.gap().linear_penalty();
        let profile = self.take_profile(scheme, b);

        let mut dirs = DirMatrix::new(rows, cols);
        dirs.set(0, 0, Dir::Stop);
        for j in 1..=cols {
            dirs.set(0, j, Dir::Left);
        }
        for i in 1..=rows {
            dirs.set(i, 0, Dir::Up);
        }

        let mut prev = self.arena.take(cols + 1);
        let mut cur = self.arena.take(cols + 1);
        prev.copy_from_slice(top);
        for i in 1..=rows {
            let prow = profile.row(a[i - 1]);
            cur[0] = left[i];
            self.row_update(&prev, &mut cur, prow, gap);
            for j in 1..=cols {
                // `v` is the max of the three terms, so comparing in
                // precedence order reproduces the scalar tie-break exactly.
                let v = cur[j];
                let d = if prev[j - 1] + prow[j - 1] == v {
                    Dir::Diag
                } else if prev[j] + gap == v {
                    Dir::Up
                } else {
                    Dir::Left
                };
                dirs.set(i, j, d);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        let row = prev.clone();
        self.arena.put(prev);
        self.arena.put(cur);
        self.put_profile(profile);
        metrics.add_cells(rows as u64 * cols as u64);
        (dirs, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Boundary;

    /// Deterministic xorshift so the tests need no external RNG.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn random_case(rng: &mut Rng) -> (Vec<u8>, Vec<u8>, ScoringScheme, Boundary) {
        let scheme = match rng.below(3) {
            0 => ScoringScheme::dna_default(),
            1 => ScoringScheme::paper_example(),
            _ => ScoringScheme::protein_default(),
        };
        let n_codes = scheme.alphabet().len();
        let rows = rng.below(40);
        let cols = rng.below(90); // often crosses MIN_VEC_COLS, with odd tails
        let a: Vec<u8> = (0..rows).map(|_| rng.below(n_codes) as u8).collect();
        let b: Vec<u8> = (0..cols).map(|_| rng.below(n_codes) as u8).collect();
        let bound = if rng.below(2) == 0 {
            Boundary::global(rows, cols, scheme.gap().linear_penalty())
        } else {
            // An arbitrary (still corner-consistent) boundary.
            let mut top: Vec<i32> = (0..=cols).map(|_| rng.below(2000) as i32 - 1000).collect();
            let mut left: Vec<i32> = (0..=rows).map(|_| rng.below(2000) as i32 - 1000).collect();
            top[0] = 0;
            left[0] = 0;
            Boundary::new(top, left)
        };
        (a, b, scheme, bound)
    }

    fn non_scalar_backends() -> Vec<KernelBackend> {
        KernelBackend::available()
            .into_iter()
            .filter(|b| *b != KernelBackend::Scalar)
            .collect()
    }

    #[test]
    fn every_backend_matches_scalar_on_random_rectangles() {
        let mut rng = Rng(0x5eed_cafe);
        for case in 0..200 {
            let (a, b, scheme, bound) = random_case(&mut rng);
            let metrics = Metrics::new();
            let reference = kernel::fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
            let ref_cells = metrics.snapshot();
            for backend in non_scalar_backends() {
                let k = Kernel::try_new(backend).expect("available backend");
                let metrics = Metrics::new();
                let m = k.fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
                for i in 0..=a.len() {
                    assert_eq!(
                        m.row(i),
                        reference.row(i),
                        "case {case} backend {backend} row {i}"
                    );
                }
                assert_eq!(metrics.snapshot(), ref_cells, "case {case} {backend}");
            }
        }
    }

    #[test]
    fn last_row_col_matches_scalar_including_corner() {
        let mut rng = Rng(0xabcd_1234);
        for case in 0..200 {
            let (a, b, scheme, bound) = random_case(&mut rng);
            let metrics = Metrics::new();
            let mut want_b = vec![0; b.len() + 1];
            let mut want_r = vec![0; a.len() + 1];
            kernel::fill_last_row_col(
                &a,
                &b,
                &bound.top,
                &bound.left,
                &scheme,
                &mut want_b,
                Some(&mut want_r),
                &metrics,
            );
            for backend in non_scalar_backends() {
                let k = Kernel::try_new(backend).expect("available backend");
                let mut got_b = vec![0; b.len() + 1];
                let mut got_r = vec![0; a.len() + 1];
                k.fill_last_row_col(
                    &a,
                    &b,
                    &bound.top,
                    &bound.left,
                    &scheme,
                    &mut got_b,
                    Some(&mut got_r),
                    &metrics,
                );
                assert_eq!(got_b, want_b, "case {case} backend {backend} bottom row");
                assert_eq!(got_r, want_r, "case {case} backend {backend} right col");
            }
        }
    }

    #[test]
    fn fill_dir_directions_and_final_row_match_scalar() {
        let mut rng = Rng(0x0ddb_1175);
        for case in 0..120 {
            let (a, b, scheme, bound) = random_case(&mut rng);
            let metrics = Metrics::new();
            let (want_dirs, want_row) =
                kernel::fill_dir(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
            for backend in non_scalar_backends() {
                let k = Kernel::try_new(backend).expect("available backend");
                let (got_dirs, got_row) =
                    k.fill_dir(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
                assert_eq!(got_row, want_row, "case {case} backend {backend} final row");
                for i in 0..=a.len() {
                    for j in 0..=b.len() {
                        assert_eq!(
                            got_dirs.get(i, j),
                            want_dirs.get(i, j),
                            "case {case} backend {backend} dir ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn repeated_fills_are_allocation_free_in_steady_state() {
        let k = Kernel::auto();
        let scheme = ScoringScheme::dna_default();
        let a: Vec<u8> = (0..200).map(|i| (i % 4) as u8).collect();
        let b: Vec<u8> = (0..300).map(|i| (i % 3) as u8).collect();
        let bound = Boundary::global(a.len(), b.len(), scheme.gap().linear_penalty());
        let metrics = Metrics::new();
        let mut bottom = vec![0; b.len() + 1];
        let mut right = vec![0; a.len() + 1];
        // Warm-up: first fill grows the arena to its high-water mark.
        k.fill_last_row_col(
            &a,
            &b,
            &bound.top,
            &bound.left,
            &scheme,
            &mut bottom,
            Some(&mut right),
            &metrics,
        );
        let allocs = k.arena().fresh_allocs();
        let held = k.arena().held_bytes();
        for _ in 0..50 {
            k.fill_last_row_col(
                &a,
                &b,
                &bound.top,
                &bound.left,
                &scheme,
                &mut bottom,
                Some(&mut right),
                &metrics,
            );
        }
        assert_eq!(
            k.arena().fresh_allocs(),
            allocs,
            "steady-state fills must not allocate"
        );
        assert_eq!(k.arena().held_bytes(), held);
        assert!(k.arena().reuses() >= 150, "three buffers per fill reused");
    }

    #[test]
    fn backend_parse_and_names_round_trip() {
        for b in KernelBackend::ALL {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
        }
        assert_eq!(KernelBackend::parse("SSE41"), Some(KernelBackend::Sse41));
        assert_eq!(KernelBackend::parse("bogus"), None);
    }

    #[test]
    fn scalar_is_always_available_and_detect_best_is_admitted() {
        assert!(KernelBackend::Scalar.is_available());
        assert!(KernelBackend::available().contains(&KernelBackend::detect_best()));
        Kernel::try_new(KernelBackend::Scalar).expect("scalar is always available");
        // Backend order is widest-first: anything detect_best skips over
        // an available backend must itself be available.
        #[cfg(target_arch = "x86_64")]
        if KernelBackend::Avx512.is_available() {
            assert_eq!(KernelBackend::detect_best(), KernelBackend::Avx512);
        }
    }

    #[test]
    fn degrade_to_scalar_frees_the_arena() {
        let mut k = Kernel::auto();
        let scheme = ScoringScheme::dna_default();
        let a = vec![0u8; 64];
        let b = vec![1u8; 64];
        let bound = Boundary::global(64, 64, scheme.gap().linear_penalty());
        let metrics = Metrics::new();
        let mut bottom = vec![0; 65];
        k.fill_last_row(
            &a,
            &b,
            &bound.top,
            &bound.left,
            &scheme,
            &mut bottom,
            &metrics,
        );
        k.degrade_to_scalar();
        assert_eq!(k.backend(), KernelBackend::Scalar);
        assert_eq!(k.arena().held_bytes(), 0);
        // And the scalar path still produces the right answer.
        let mut again = vec![0; 65];
        k.fill_last_row(
            &a,
            &b,
            &bound.top,
            &bound.left,
            &scheme,
            &mut again,
            &metrics,
        );
        assert_eq!(again, bottom);
    }
}

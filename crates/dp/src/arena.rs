//! A reusable buffer pool for kernel scratch space.
//!
//! FastLSA recurses into up to `2k − 1` sub-blocks per level, and every
//! block fill needs the same kinds of scratch: rolling DP rows, boundary
//! copies, query-profile tables. Allocating those per block costs a trip
//! to the allocator per rectangle and defeats the cache; the paper's whole
//! point is that the working set is a handful of linear buffers.
//!
//! [`KernelArena`] checks buffers out ([`KernelArena::take`]) and back in
//! ([`KernelArena::put`]); after the first few blocks every `take` is
//! satisfied from the pool and the arena's held byte count stops growing.
//! The arena is `Sync` (a mutexed free list plus relaxed counters) so the
//! parallel tile executor can share one arena across workers, and it
//! exposes [`KernelArena::held_bytes`] so the layer that owns a
//! `MemoryGovernor` can charge the arena's high-water mark against the
//! run's byte budget at its consistent points.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on pooled buffers; beyond this, returned buffers are freed
/// (and their bytes released) instead of cached. Large enough for every
/// concurrent checkout pattern in the workspace (a tile needs four
/// buffers, plus profile and rolling rows on the sequential path).
const MAX_POOLED: usize = 32;

/// A `Sync` pool of reusable `i32` / `i16` / `u8` buffers for DP kernels.
///
/// The `i32` pool serves the intra-sequence kernels' rolling rows and
/// query profiles; the `i16` and `u8` pools serve the inter-sequence
/// batch kernel's striped rows, 16-bit profiles, and direction slabs.
/// All three share one byte ledger ([`KernelArena::held_bytes`]) so the
/// governor charge covers everything the arena owns.
#[derive(Debug, Default)]
pub struct KernelArena {
    pool: Mutex<Vec<Vec<i32>>>,
    pool_i16: Mutex<Vec<Vec<i16>>>,
    pool_u8: Mutex<Vec<Vec<u8>>>,
    /// Capacity bytes of every buffer this arena owns — pooled or checked
    /// out. Monotone except when the pool overflows or is cleared.
    held: AtomicUsize,
    /// Number of `take` calls that had to allocate or grow a buffer.
    fresh_allocs: AtomicU64,
    /// Number of `take` calls served entirely from the pool.
    reuses: AtomicU64,
}

/// Checks out a zero-filled buffer of exactly `len` elements from one
/// typed pool, charging growth to the shared counters.
fn take_from<T: Copy + Default>(
    pool: &Mutex<Vec<Vec<T>>>,
    len: usize,
    held: &AtomicUsize,
    fresh_allocs: &AtomicU64,
    reuses: &AtomicU64,
) -> Vec<T> {
    let recycled = {
        let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
        // Best fit: the smallest pooled buffer that already holds `len`,
        // falling back to the largest (which we grow) so small requests
        // don't chew up big buffers.
        let mut best: Option<(usize, usize)> = None;
        let mut largest: Option<(usize, usize)> = None;
        for (i, v) in pool.iter().enumerate() {
            let cap = v.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
            if largest.is_none_or(|(_, c)| cap > c) {
                largest = Some((i, cap));
            }
        }
        best.or(largest).map(|(i, _)| pool.swap_remove(i))
    };
    let from_pool = recycled.is_some();
    let mut v = recycled.unwrap_or_default();
    let old_cap = v.capacity();
    v.clear();
    v.resize(len, T::default());
    let new_cap = v.capacity();
    if new_cap > old_cap {
        let grown = (new_cap - old_cap) * std::mem::size_of::<T>();
        // Relaxed: advisory accounting/reporting counters; readers
        // tolerate any interleaving and order nothing on them.
        held.fetch_add(grown, Ordering::Relaxed);
        fresh_allocs.fetch_add(1, Ordering::Relaxed);
    } else if from_pool {
        // Relaxed: reporting counter only.
        reuses.fetch_add(1, Ordering::Relaxed);
    }
    v
}

/// Returns a buffer to one typed pool, releasing its bytes if the pool
/// is full.
fn put_to<T>(pool: &Mutex<Vec<Vec<T>>>, v: Vec<T>, held: &AtomicUsize) {
    if v.capacity() == 0 {
        return;
    }
    let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
    if pool.len() < MAX_POOLED {
        pool.push(v);
    } else {
        drop(pool);
        let freed = v.capacity() * std::mem::size_of::<T>();
        // Relaxed: reporting counter only.
        held.fetch_sub(freed, Ordering::Relaxed);
    }
}

/// Frees one typed pool's buffers, returning the element count released.
fn clear_pool<T>(pool: &Mutex<Vec<Vec<T>>>) -> usize {
    let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
    let freed: usize = pool.iter().map(Vec::capacity).sum();
    pool.clear();
    freed
}

impl KernelArena {
    /// An empty arena.
    pub fn new() -> Self {
        KernelArena::default()
    }

    /// Checks out a zero-filled `i32` buffer of exactly `len` elements.
    pub fn take(&self, len: usize) -> Vec<i32> {
        take_from(&self.pool, len, &self.held, &self.fresh_allocs, &self.reuses)
    }

    /// Returns an `i32` buffer to the pool for reuse.
    pub fn put(&self, v: Vec<i32>) {
        put_to(&self.pool, v, &self.held);
    }

    /// Checks out a zero-filled `i16` buffer of exactly `len` elements.
    pub fn take_i16(&self, len: usize) -> Vec<i16> {
        take_from(
            &self.pool_i16,
            len,
            &self.held,
            &self.fresh_allocs,
            &self.reuses,
        )
    }

    /// Returns an `i16` buffer to the pool for reuse.
    pub fn put_i16(&self, v: Vec<i16>) {
        put_to(&self.pool_i16, v, &self.held);
    }

    /// Checks out a zero-filled `u8` buffer of exactly `len` elements.
    pub fn take_u8(&self, len: usize) -> Vec<u8> {
        take_from(
            &self.pool_u8,
            len,
            &self.held,
            &self.fresh_allocs,
            &self.reuses,
        )
    }

    /// Returns a `u8` buffer to the pool for reuse.
    pub fn put_u8(&self, v: Vec<u8>) {
        put_to(&self.pool_u8, v, &self.held);
    }

    /// Frees every pooled buffer and releases its bytes. Checked-out
    /// buffers are unaffected (their bytes stay held until `put`).
    pub fn clear(&self) {
        let bytes = clear_pool(&self.pool) * std::mem::size_of::<i32>()
            + clear_pool(&self.pool_i16) * std::mem::size_of::<i16>()
            + clear_pool(&self.pool_u8) * std::mem::size_of::<u8>();
        // Relaxed: reporting counter only.
        self.held.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Capacity bytes currently owned by the arena (pooled + checked out).
    pub fn held_bytes(&self) -> usize {
        // Relaxed: reporting counter only.
        self.held.load(Ordering::Relaxed)
    }

    /// `take` calls that hit the allocator (fresh or growing).
    pub fn fresh_allocs(&self) -> u64 {
        // Relaxed: reporting counter only.
        self.fresh_allocs.load(Ordering::Relaxed)
    }

    /// `take` calls served from the pool without touching the allocator.
    pub fn reuses(&self) -> u64 {
        // Relaxed: reporting counter only.
        self.reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_capacity() {
        let arena = KernelArena::new();
        let a = arena.take(1000);
        assert_eq!(a.len(), 1000);
        assert_eq!(arena.fresh_allocs(), 1);
        let held = arena.held_bytes();
        assert!(held >= 4000);
        arena.put(a);
        let b = arena.take(500);
        assert_eq!(b.len(), 500);
        assert_eq!(arena.fresh_allocs(), 1, "smaller request must reuse");
        assert_eq!(arena.reuses(), 1);
        assert_eq!(arena.held_bytes(), held, "held bytes stay flat on reuse");
        arena.put(b);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let arena = KernelArena::new();
        // Warm up with the largest shape, then cycle smaller shapes.
        for len in [4096usize, 128, 1024, 4096, 33, 4095] {
            let v = arena.take(len);
            arena.put(v);
        }
        let allocs = arena.fresh_allocs();
        let held = arena.held_bytes();
        for _ in 0..100 {
            let a = arena.take(4096);
            let b = arena.take(128);
            arena.put(a);
            arena.put(b);
        }
        // One extra alloc is allowed for the second concurrent checkout the
        // warm-up never exercised; after that the arena must be steady.
        assert!(
            arena.fresh_allocs() <= allocs + 1,
            "steady-state takes must not allocate: {} -> {}",
            allocs,
            arena.fresh_allocs()
        );
        assert!(arena.held_bytes() <= held + 4096 * 4);
        assert!(arena.reuses() >= 199);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let arena = KernelArena::new();
        let small = arena.take(10);
        let big = arena.take(1000);
        arena.put(small);
        arena.put(big);
        let v = arena.take(8);
        assert!(
            v.capacity() < 1000,
            "must not burn the big buffer on a tiny request"
        );
        arena.put(v);
    }

    #[test]
    fn clear_releases_pooled_bytes() {
        let arena = KernelArena::new();
        let v = arena.take(256);
        arena.put(v);
        assert!(arena.held_bytes() >= 1024);
        arena.clear();
        assert_eq!(arena.held_bytes(), 0);
    }

    #[test]
    fn zeroed_region_after_reuse() {
        let arena = KernelArena::new();
        let mut v = arena.take(8);
        v.iter_mut().for_each(|x| *x = -1);
        arena.put(v);
        let v = arena.take(16);
        assert!(v.iter().all(|&x| x == 0), "take must zero the buffer");
        arena.put(v);
    }

    #[test]
    fn typed_pools_share_the_byte_ledger() {
        let arena = KernelArena::new();
        let a = arena.take_i16(1000);
        let b = arena.take_u8(1000);
        assert!(arena.held_bytes() >= 2000 + 1000, "i16 + u8 bytes charged");
        arena.put_i16(a);
        arena.put_u8(b);
        let a = arena.take_i16(500);
        assert_eq!(arena.reuses(), 1, "i16 pool reuses its own buffers");
        assert!(a.iter().all(|&x| x == 0), "typed take must zero the buffer");
        arena.put_i16(a);
        arena.clear();
        assert_eq!(arena.held_bytes(), 0, "clear releases every typed pool");
    }

    #[test]
    fn arena_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<KernelArena>();
    }
}

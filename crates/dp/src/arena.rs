//! A reusable buffer pool for kernel scratch space.
//!
//! FastLSA recurses into up to `2k − 1` sub-blocks per level, and every
//! block fill needs the same kinds of scratch: rolling DP rows, boundary
//! copies, query-profile tables. Allocating those per block costs a trip
//! to the allocator per rectangle and defeats the cache; the paper's whole
//! point is that the working set is a handful of linear buffers.
//!
//! [`KernelArena`] checks buffers out ([`KernelArena::take`]) and back in
//! ([`KernelArena::put`]); after the first few blocks every `take` is
//! satisfied from the pool and the arena's held byte count stops growing.
//! The arena is `Sync` (a mutexed free list plus relaxed counters) so the
//! parallel tile executor can share one arena across workers, and it
//! exposes [`KernelArena::held_bytes`] so the layer that owns a
//! `MemoryGovernor` can charge the arena's high-water mark against the
//! run's byte budget at its consistent points.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on pooled buffers; beyond this, returned buffers are freed
/// (and their bytes released) instead of cached. Large enough for every
/// concurrent checkout pattern in the workspace (a tile needs four
/// buffers, plus profile and rolling rows on the sequential path).
const MAX_POOLED: usize = 32;

/// A `Sync` pool of reusable `i32` buffers for DP kernels.
#[derive(Debug, Default)]
pub struct KernelArena {
    pool: Mutex<Vec<Vec<i32>>>,
    /// Capacity bytes of every buffer this arena owns — pooled or checked
    /// out. Monotone except when the pool overflows or is cleared.
    held: AtomicUsize,
    /// Number of `take` calls that had to allocate or grow a buffer.
    fresh_allocs: AtomicU64,
    /// Number of `take` calls served entirely from the pool.
    reuses: AtomicU64,
}

impl KernelArena {
    /// An empty arena.
    pub fn new() -> Self {
        KernelArena::default()
    }

    /// Checks out a zero-filled buffer of exactly `len` elements.
    pub fn take(&self, len: usize) -> Vec<i32> {
        let recycled = {
            let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            // Best fit: the smallest pooled buffer that already holds `len`,
            // falling back to the largest (which we grow) so small requests
            // don't chew up big buffers.
            let mut best: Option<(usize, usize)> = None;
            let mut largest: Option<(usize, usize)> = None;
            for (i, v) in pool.iter().enumerate() {
                let cap = v.capacity();
                if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                    best = Some((i, cap));
                }
                if largest.is_none_or(|(_, c)| cap > c) {
                    largest = Some((i, cap));
                }
            }
            best.or(largest).map(|(i, _)| pool.swap_remove(i))
        };
        let from_pool = recycled.is_some();
        let mut v = recycled.unwrap_or_default();
        let old_cap = v.capacity();
        v.clear();
        v.resize(len, 0);
        let new_cap = v.capacity();
        if new_cap > old_cap {
            let grown = (new_cap - old_cap) * std::mem::size_of::<i32>();
            // Relaxed: advisory accounting/reporting counters; readers
            // tolerate any interleaving and order nothing on them.
            self.held.fetch_add(grown, Ordering::Relaxed);
            self.fresh_allocs.fetch_add(1, Ordering::Relaxed);
        } else if from_pool {
            // Relaxed: reporting counter only.
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&self, v: Vec<i32>) {
        if v.capacity() == 0 {
            return;
        }
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < MAX_POOLED {
            pool.push(v);
        } else {
            drop(pool);
            let freed = v.capacity() * std::mem::size_of::<i32>();
            // Relaxed: reporting counter only.
            self.held.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    /// Frees every pooled buffer and releases its bytes. Checked-out
    /// buffers are unaffected (their bytes stay held until `put`).
    pub fn clear(&self) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let freed: usize = pool.iter().map(Vec::capacity).sum();
        pool.clear();
        drop(pool);
        let bytes = freed * std::mem::size_of::<i32>();
        // Relaxed: reporting counter only.
        self.held.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Capacity bytes currently owned by the arena (pooled + checked out).
    pub fn held_bytes(&self) -> usize {
        // Relaxed: reporting counter only.
        self.held.load(Ordering::Relaxed)
    }

    /// `take` calls that hit the allocator (fresh or growing).
    pub fn fresh_allocs(&self) -> u64 {
        // Relaxed: reporting counter only.
        self.fresh_allocs.load(Ordering::Relaxed)
    }

    /// `take` calls served from the pool without touching the allocator.
    pub fn reuses(&self) -> u64 {
        // Relaxed: reporting counter only.
        self.reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_capacity() {
        let arena = KernelArena::new();
        let a = arena.take(1000);
        assert_eq!(a.len(), 1000);
        assert_eq!(arena.fresh_allocs(), 1);
        let held = arena.held_bytes();
        assert!(held >= 4000);
        arena.put(a);
        let b = arena.take(500);
        assert_eq!(b.len(), 500);
        assert_eq!(arena.fresh_allocs(), 1, "smaller request must reuse");
        assert_eq!(arena.reuses(), 1);
        assert_eq!(arena.held_bytes(), held, "held bytes stay flat on reuse");
        arena.put(b);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let arena = KernelArena::new();
        // Warm up with the largest shape, then cycle smaller shapes.
        for len in [4096usize, 128, 1024, 4096, 33, 4095] {
            let v = arena.take(len);
            arena.put(v);
        }
        let allocs = arena.fresh_allocs();
        let held = arena.held_bytes();
        for _ in 0..100 {
            let a = arena.take(4096);
            let b = arena.take(128);
            arena.put(a);
            arena.put(b);
        }
        // One extra alloc is allowed for the second concurrent checkout the
        // warm-up never exercised; after that the arena must be steady.
        assert!(
            arena.fresh_allocs() <= allocs + 1,
            "steady-state takes must not allocate: {} -> {}",
            allocs,
            arena.fresh_allocs()
        );
        assert!(arena.held_bytes() <= held + 4096 * 4);
        assert!(arena.reuses() >= 199);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let arena = KernelArena::new();
        let small = arena.take(10);
        let big = arena.take(1000);
        arena.put(small);
        arena.put(big);
        let v = arena.take(8);
        assert!(
            v.capacity() < 1000,
            "must not burn the big buffer on a tiny request"
        );
        arena.put(v);
    }

    #[test]
    fn clear_releases_pooled_bytes() {
        let arena = KernelArena::new();
        let v = arena.take(256);
        arena.put(v);
        assert!(arena.held_bytes() >= 1024);
        arena.clear();
        assert_eq!(arena.held_bytes(), 0);
    }

    #[test]
    fn zeroed_region_after_reuse() {
        let arena = KernelArena::new();
        let mut v = arena.take(8);
        v.iter_mut().for_each(|x| *x = -1);
        arena.put(v);
        let v = arena.take(16);
        assert!(v.iter().all(|&x| x == 0), "take must zero the buffer");
        arena.put(v);
    }

    #[test]
    fn arena_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<KernelArena>();
    }
}

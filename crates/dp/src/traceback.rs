//! FindPath: backward path recovery.
//!
//! The paper's FindPath phase (§2.1) walks the DPM backwards from a start
//! entry, at each step choosing a predecessor whose value explains the
//! current entry. With exact scores at least one predecessor always
//! qualifies; when several do (multiple optimal paths) every implementation
//! in this workspace breaks the tie identically — **Diag ≻ Up ≻ Left** —
//! so full-matrix and FastLSA tracebacks recover the *same* optimal path.

use flsa_scoring::ScoringScheme;

use crate::matrix::{Dir, DirMatrix, ScoreMatrix};
use crate::path::{Move, PathBuilder};
use crate::Metrics;

/// Walks backwards through a filled score matrix from `start` (matrix-local
/// coordinates) until reaching the matrix's top row or left column,
/// prepending moves to `out`. Returns the exit coordinate (local).
///
/// # Panics
///
/// Panics when no predecessor explains a cell value — that can only happen
/// if the matrix was not produced by the matching fill kernel/scheme, i.e.
/// a logic error worth failing loudly on.
pub fn trace_from(
    dpm: &ScoreMatrix,
    a: &[u8],
    b: &[u8],
    scheme: &ScoringScheme,
    start: (usize, usize),
    out: &mut PathBuilder,
    metrics: &Metrics,
) -> (usize, usize) {
    let gap = scheme.gap().linear_penalty();
    let matrix = scheme.matrix();
    let (mut i, mut j) = start;
    assert!(
        i <= dpm.rows() && j <= dpm.cols(),
        "traceback start out of range"
    );
    let mut steps = 0u64;
    while i > 0 && j > 0 {
        let v = dpm.get(i, j);
        let m = if dpm.get(i - 1, j - 1) + matrix.score(a[i - 1], b[j - 1]) == v {
            i -= 1;
            j -= 1;
            Move::Diag
        } else if dpm.get(i - 1, j) + gap == v {
            i -= 1;
            Move::Up
        } else if dpm.get(i, j - 1) + gap == v {
            j -= 1;
            Move::Left
        } else {
            // flsa-check: allow(panic) — unreachable on any DPM produced
            // by the fill kernels: every interior cell has a predecessor
            // by construction, so this fires only on memory corruption.
            panic!("traceback found no predecessor at ({i},{j}): corrupt DPM");
        };
        out.push_back(m);
        steps += 1;
    }
    metrics.add_traceback_steps(steps);
    (i, j)
}

/// Walks a packed direction matrix backwards from `start` until a
/// [`Dir::Stop`] entry, prepending moves to `out`. Returns the stop
/// coordinate.
///
/// Unlike [`trace_from`] this follows row 0 / column 0 entries too (they
/// are filled as Left/Up by [`crate::kernel::fill_dir`]), so for a global
/// problem it walks all the way to `(0, 0)`.
pub fn trace_dirs(
    dirs: &DirMatrix,
    start: (usize, usize),
    out: &mut PathBuilder,
    metrics: &Metrics,
) -> (usize, usize) {
    let (mut i, mut j) = start;
    assert!(
        i <= dirs.rows() && j <= dirs.cols(),
        "traceback start out of range"
    );
    let mut steps = 0u64;
    loop {
        match dirs.get(i, j) {
            Dir::Stop => break,
            Dir::Diag => {
                debug_assert!(i > 0 && j > 0);
                i -= 1;
                j -= 1;
                out.push_back(Move::Diag);
            }
            Dir::Up => {
                debug_assert!(i > 0);
                i -= 1;
                out.push_back(Move::Up);
            }
            Dir::Left => {
                debug_assert!(j > 0);
                j -= 1;
                out.push_back(Move::Left);
            }
        }
        steps += 1;
    }
    metrics.add_traceback_steps(steps);
    (i, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{fill_dir, fill_full};
    use crate::Boundary;
    use flsa_seq::Sequence;

    fn paper_setup() -> (Vec<u8>, Vec<u8>, ScoringScheme) {
        let scheme = ScoringScheme::paper_example();
        let a = Sequence::from_str("a", scheme.alphabet(), "TDVLKAD").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "TLDKLLKD").unwrap();
        (a.codes().to_vec(), b.codes().to_vec(), scheme)
    }

    #[test]
    fn score_traceback_recovers_an_optimal_path() {
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let dpm = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        let mut builder = PathBuilder::new();
        let exit = trace_from(
            &dpm,
            &a,
            &b,
            &scheme,
            (a.len(), b.len()),
            &mut builder,
            &metrics,
        );
        // The paper's optimal path reaches the top-left region; with this
        // instance it exits exactly at the origin.
        assert_eq!(exit, (0, 0));
        let path = builder.finish((0, 0));
        // Re-score: must equal the optimal 82. Note path coordinates are
        // (row, col) = (a-index, b-index).
        let a_seq = Sequence::from_str("a", scheme.alphabet(), "TDVLKAD").unwrap();
        let b_seq = Sequence::from_str("b", scheme.alphabet(), "TLDKLLKD").unwrap();
        assert_eq!(path.score(&a_seq, &b_seq, &scheme), 82);
        assert!(path.is_global(a.len(), b.len()));
        assert_eq!(metrics.snapshot().traceback_steps as usize, path.len());
    }

    #[test]
    fn dir_traceback_matches_score_traceback() {
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();

        let dpm = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        let mut sb = PathBuilder::new();
        let exit = trace_from(&dpm, &a, &b, &scheme, (a.len(), b.len()), &mut sb, &metrics);
        assert_eq!(exit, (0, 0));
        let score_path = sb.finish((0, 0));

        let (dirs, _) = fill_dir(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        let mut db = PathBuilder::new();
        let stop = trace_dirs(&dirs, (a.len(), b.len()), &mut db, &metrics);
        assert_eq!(stop, (0, 0));
        let dir_path = db.finish((0, 0));

        assert_eq!(score_path, dir_path, "tie-breaks must agree");
    }

    #[test]
    fn traceback_stops_at_boundary_not_origin() {
        // Start the trace from a cell on the bottom edge away from the
        // corner; the walk must stop the moment it reaches row 0 or col 0.
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let dpm = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        let mut builder = PathBuilder::new();
        let (ei, ej) = trace_from(&dpm, &a, &b, &scheme, (a.len(), 2), &mut builder, &metrics);
        assert!(ei == 0 || ej == 0);
    }

    #[test]
    fn dir_traceback_follows_boundary_to_origin() {
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let (dirs, _) = fill_dir(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        let mut builder = PathBuilder::new();
        // Start on the top row: all moves must be Left until (0,0).
        let stop = trace_dirs(&dirs, (0, 3), &mut builder, &metrics);
        assert_eq!(stop, (0, 0));
        let p = builder.finish((0, 0));
        assert_eq!(p.moves(), &[Move::Left, Move::Left, Move::Left]);
    }

    #[test]
    #[should_panic(expected = "corrupt DPM")]
    fn corrupt_matrix_is_detected() {
        let (a, b, scheme) = paper_setup();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let mut dpm = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        dpm.set(3, 3, 999_999);
        let mut builder = PathBuilder::new();
        trace_from(&dpm, &a, &b, &scheme, (3, 3), &mut builder, &metrics);
    }
}

//! Input boundaries for DPM sub-rectangles.
//!
//! Every fill kernel computes a rectangle of the logical DPM given the DP
//! values along the rectangle's *top row* and *left column* (the paper's
//! `cacheRow`/`cacheColumn`). For the whole problem these are the gap ramp
//! `0, g, 2g, …`; inside FastLSA they are slices of the grid cache.

/// An owned input boundary: the DP values along a rectangle's top row and
/// left column. `top[0] == left[0]` is the shared corner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Boundary {
    /// Values along the top row, length `cols + 1`.
    pub top: Vec<i32>,
    /// Values along the left column, length `rows + 1`.
    pub left: Vec<i32>,
}

impl Boundary {
    /// Boundary of the *global* alignment problem over an `rows × cols`
    /// rectangle with linear gap penalty `gap`: `top[j] = j·gap`,
    /// `left[i] = i·gap`.
    pub fn global(rows: usize, cols: usize, gap: i32) -> Self {
        Boundary {
            top: (0..=cols as i64).map(|j| (j * gap as i64) as i32).collect(),
            left: (0..=rows as i64).map(|i| (i * gap as i64) as i32).collect(),
        }
    }

    /// Builds a boundary from explicit vectors.
    ///
    /// # Panics
    ///
    /// Panics when either vector is empty or the corners disagree — a
    /// corner mismatch means the caller sliced its caches inconsistently,
    /// which would corrupt every downstream score.
    pub fn new(top: Vec<i32>, left: Vec<i32>) -> Self {
        assert!(
            !top.is_empty() && !left.is_empty(),
            "boundary vectors must be non-empty"
        );
        assert_eq!(top[0], left[0], "boundary corner mismatch");
        Boundary { top, left }
    }

    /// Rows of the rectangle this boundary describes.
    pub fn rows(&self) -> usize {
        self.left.len() - 1
    }

    /// Columns of the rectangle this boundary describes.
    pub fn cols(&self) -> usize {
        self.top.len() - 1
    }
}

/// Validates a `(top, left)` slice pair for a `rows × cols` rectangle.
/// Kernels call this once per invocation (debug-style sanity that is cheap
/// relative to any fill).
#[inline]
pub fn check_boundary(top: &[i32], left: &[i32], rows: usize, cols: usize) {
    assert_eq!(top.len(), cols + 1, "top boundary length");
    assert_eq!(left.len(), rows + 1, "left boundary length");
    assert_eq!(top[0], left[0], "boundary corner mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_boundary_is_gap_ramp() {
        let b = Boundary::global(3, 4, -10);
        assert_eq!(b.top, vec![0, -10, -20, -30, -40]);
        assert_eq!(b.left, vec![0, -10, -20, -30]);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 4);
    }

    #[test]
    fn global_boundary_matches_figure_1_margins() {
        // Figure 1: the first row runs 0, -10, …, -80 over 8 columns and
        // the first column 0, -10, …, -70 over 7 rows.
        let b = Boundary::global(7, 8, -10);
        assert_eq!(*b.top.last().unwrap(), -80);
        assert_eq!(*b.left.last().unwrap(), -70);
    }

    #[test]
    #[should_panic(expected = "corner mismatch")]
    fn corner_mismatch_panics() {
        Boundary::new(vec![0, -10], vec![5, -10]);
    }

    #[test]
    fn zero_sized_rectangle_is_legal() {
        let b = Boundary::global(0, 0, -10);
        assert_eq!(b.rows(), 0);
        assert_eq!(b.cols(), 0);
        check_boundary(&b.top, &b.left, 0, 0);
    }
}

//! Property tests at the R10 overflow-certificate boundary.
//!
//! The audit (`cargo run -p flsa-check --bin audit`) certifies that for
//! the workspace's extremal scoring magnitudes `S` (substitution) and
//! `G` (per-symbol gap), every i32 kernel intermediate stays in range
//! while `|H| + span·(max(S,G)+G) + G ≤ i32::MAX` — that is what makes
//! `fastlsa_core::max_safe_span` a sound admission cap. These tests
//! drive the real kernels (scalar plus every vector backend this CPU
//! offers) right up against that envelope: small rectangles whose boundary
//! values simulate sitting at the far corner of a certified-maximal
//! problem, so cell values come within a hair of `i32::MAX` /
//! `i32::MIN`. An `i64` reference computed in-test proves nothing
//! wrapped: any intermediate overflow in the two-pass u-domain kernels
//! would diverge from it.

use flsa_dp::{Kernel, KernelBackend, Metrics};
use flsa_scoring::{GapModel, ScoringScheme, SubstitutionMatrix};
use flsa_seq::Alphabet;
use proptest::prelude::*;

/// Workspace-certified extremal magnitudes (the audit derives the same
/// values from the baked tables and gap constructors; `audit_self.rs`
/// cross-checks the runtime guard against the certificate itself).
const S_MAX: i32 = 24;
const G_MAX: i32 = 14;

fn scheme_for(s: i32, g: i32) -> ScoringScheme {
    ScoringScheme::new(
        SubstitutionMatrix::match_mismatch("ovf", Alphabet::dna(), s, -s),
        GapModel::linear(-g),
    )
}

/// The largest |corner offset| the certificate's envelope leaves for a
/// `rows × cols` rectangle under magnitudes `(s, g)`: anything below it
/// keeps every cell and every u-domain intermediate inside `i32`.
fn offset_budget(rows: usize, cols: usize, s: i32, g: i32) -> i64 {
    let unit = i64::from(s.max(g) + g);
    i64::from(i32::MAX) - (rows + cols) as i64 * unit - i64::from(g)
}

/// Gap-ramp boundary starting from `offset` at the shared corner — what
/// the surrounding (certified-maximal) problem would hand this block.
fn ramp(offset: i64, len: usize, g: i32) -> Vec<i32> {
    (0..=len)
        .map(|k| i32::try_from(offset - k as i64 * i64::from(g)).expect("ramp within i32"))
        .collect()
}

/// The linear-gap recurrence in `i64`: immune to i32 wrap, so agreement
/// proves the kernels did not overflow.
fn reference_bottom(a: &[u8], b: &[u8], s: i32, g: i32, top: &[i32], left: &[i32]) -> Vec<i64> {
    let cols = b.len();
    let mut prev: Vec<i64> = top.iter().map(|&v| i64::from(v)).collect();
    let mut cur = vec![0i64; cols + 1];
    for i in 1..=a.len() {
        cur[0] = i64::from(left[i]);
        for j in 1..=cols {
            let sub = i64::from(if a[i - 1] == b[j - 1] { s } else { -s });
            cur[j] = (prev[j - 1] + sub)
                .max(prev[j] - i64::from(g))
                .max(cur[j - 1] - i64::from(g));
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

fn kernel_bottom(
    kernel: &Kernel,
    a: &[u8],
    b: &[u8],
    scheme: &ScoringScheme,
    top: &[i32],
    left: &[i32],
) -> Vec<i32> {
    let metrics = Metrics::new();
    let mut bottom = vec![0i32; b.len() + 1];
    kernel.fill_last_row(a, b, top, left, scheme, &mut bottom, &metrics);
    bottom
}

fn assert_kernels_match_reference(a: &[u8], b: &[u8], s: i32, g: i32, offset: i64) {
    let scheme = scheme_for(s, g);
    let top = ramp(offset, b.len(), g);
    let left = ramp(offset, a.len(), g);
    let want = reference_bottom(a, b, s, g, &top, &left);
    for backend in KernelBackend::available() {
        let kernel = Kernel::try_new(backend).expect("available backend constructs");
        let bottom = kernel_bottom(&kernel, a, b, &scheme, &top, &left);
        for (j, &w) in want.iter().enumerate() {
            let w32 = i32::try_from(w).expect("certified envelope keeps cells in i32");
            assert_eq!(
                bottom[j],
                w32,
                "{} wrapped at column {j} (offset {offset})",
                backend.name()
            );
        }
    }
}

proptest! {
    /// Random schemes up to the certified magnitudes, rectangles pinned
    /// at a corner offset within a few thousand of the envelope edge,
    /// both score signs: i32 kernels must equal the i64 reference.
    #[test]
    fn kernels_match_i64_reference_near_certified_extremes(
        s in 1..=S_MAX,
        g in 1..=G_MAX,
        a in prop::collection::vec(0u8..4, 1..24),
        b in prop::collection::vec(0u8..4, 16..48),
        slack in 0i64..4096,
        negative in 0u8..2,
    ) {
        let budget = offset_budget(a.len(), b.len(), s, g) - slack;
        prop_assert!(budget > 0);
        let offset = if negative == 1 { -budget } else { budget };
        assert_kernels_match_reference(&a, &b, s, g, offset);
    }
}

#[test]
fn extremal_scheme_at_zero_slack_does_not_wrap() {
    // The exact corner of the certificate: maximal magnitudes, offset
    // flush against the envelope, all-mismatch and all-match inputs
    // (the two monotone extremes of the recurrence).
    let a_mis: Vec<u8> = vec![0; 20];
    let b_mis: Vec<u8> = vec![1; 33];
    let a_mat: Vec<u8> = vec![2; 20];
    let b_mat: Vec<u8> = vec![2; 33];
    for (a, b) in [(&a_mis, &b_mis), (&a_mat, &b_mat)] {
        let budget = offset_budget(a.len(), b.len(), S_MAX, G_MAX);
        assert_kernels_match_reference(a, b, S_MAX, G_MAX, budget);
        assert_kernels_match_reference(a, b, S_MAX, G_MAX, -budget);
    }
}

#[test]
fn certified_magnitudes_cover_every_baked_scheme() {
    // S_MAX/G_MAX above must stay in sync with what the workspace
    // actually bakes in; the audit certificate is derived from the
    // same sources, and audit_self.rs ties it to the runtime guard.
    for scheme in [
        ScoringScheme::paper_example(),
        ScoringScheme::protein_default(),
        ScoringScheme::dna_default(),
    ] {
        let m = scheme.matrix();
        assert!(m.max_score().abs() <= S_MAX, "{}", m.name());
        assert!(m.min_score().abs() <= S_MAX, "{}", m.name());
        assert!(scheme.gap().max_penalty_abs() <= i64::from(G_MAX));
    }
}

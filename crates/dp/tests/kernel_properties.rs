//! Property-based tests over the DP kernels: the invariants every aligner
//! in the workspace relies on.

use flsa_dp::kernel::{fill_dir, fill_full, fill_last_row_col};
use flsa_dp::traceback::{trace_dirs, trace_from};
use flsa_dp::{Boundary, Metrics, PathBuilder};
use flsa_scoring::{GapModel, ScoringScheme};
use flsa_seq::{Alphabet, Sequence};
use proptest::prelude::*;

fn dna_codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 0..max_len)
}

fn scheme() -> ScoringScheme {
    ScoringScheme::dna_default()
}

proptest! {
    /// The linear-space scan must produce exactly the full fill's edges.
    #[test]
    fn last_row_col_agrees_with_full_fill(a in dna_codes(40), b in dna_codes(40)) {
        let scheme = scheme();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let full = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        let mut bottom = vec![0; b.len() + 1];
        let mut right = vec![0; a.len() + 1];
        fill_last_row_col(&a, &b, &bound.top, &bound.left, &scheme,
                          &mut bottom, Some(&mut right), &metrics);
        prop_assert_eq!(&bottom[..], full.row(a.len()));
        prop_assert_eq!(right, full.col(b.len()));
    }

    /// Score-based and direction-based tracebacks recover the same path,
    /// and that path re-scores to the DP optimum.
    #[test]
    fn tracebacks_agree_and_rescore(a in dna_codes(30), b in dna_codes(30)) {
        let scheme = scheme();
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();

        let dpm = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        let optimal = dpm.get(a.len(), b.len()) as i64;

        let mut sb = PathBuilder::new();
        let (ei, ej) = trace_from(&dpm, &a, &b, &scheme, (a.len(), b.len()), &mut sb, &metrics);
        // Close the path along the boundary (gap ramp ⇒ optimal).
        for _ in 0..ei { sb.push_back(flsa_dp::Move::Up); }
        for _ in 0..ej { sb.push_back(flsa_dp::Move::Left); }
        let score_path = sb.finish((0, 0));

        let (dirs, last) = fill_dir(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        prop_assert_eq!(last[b.len()] as i64, optimal);
        let mut db = PathBuilder::new();
        let stop = trace_dirs(&dirs, (a.len(), b.len()), &mut db, &metrics);
        prop_assert_eq!(stop, (0, 0));
        let dir_path = db.finish((0, 0));

        prop_assert_eq!(&score_path, &dir_path);
        prop_assert!(score_path.is_global(a.len(), b.len()));

        let alpha = Alphabet::dna();
        let sa = Sequence::from_codes("a", &alpha, a.clone());
        let sbq = Sequence::from_codes("b", &alpha, b.clone());
        prop_assert_eq!(score_path.score(&sa, &sbq, &scheme), optimal);
    }

    /// Vertical composition: filling the top half then feeding its bottom
    /// row into the bottom half equals filling the whole rectangle
    /// (the grid-cache correctness property, row direction).
    #[test]
    fn fills_compose_vertically(a in dna_codes(40), b in dna_codes(40), frac in 0.0f64..1.0) {
        let scheme = scheme();
        let split = ((a.len() as f64) * frac) as usize;
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let whole = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);

        let top_half = fill_full(&a[..split], &b, &bound.top, &bound.left[..=split], &scheme, &metrics);
        let mid = top_half.row(split).to_vec();
        let bottom_half = fill_full(&a[split..], &b, &mid, &bound.left[split..], &scheme, &metrics);
        for i in 0..=(a.len() - split) {
            prop_assert_eq!(bottom_half.row(i), whole.row(i + split));
        }
    }

    /// DP value monotonicity under the triangle-ish property: the optimal
    /// score never exceeds min(m,n) * max_sub and never falls below the
    /// all-gaps score.
    #[test]
    fn optimal_score_bounds(a in dna_codes(30), b in dna_codes(30)) {
        let scheme = scheme();
        let gap = scheme.gap().linear_penalty() as i64;
        let bound = Boundary::global(a.len(), b.len(), -10);
        let metrics = Metrics::new();
        let dpm = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);
        let opt = dpm.get(a.len(), b.len()) as i64;
        let min_len = a.len().min(b.len()) as i64;
        let max_len_diff = (a.len() as i64 - b.len() as i64).abs();
        let upper = min_len * scheme.matrix().max_score() as i64 + max_len_diff * gap;
        let lower = (a.len() as i64 + b.len() as i64) * gap;
        prop_assert!(opt <= upper, "opt {opt} > upper {upper}");
        prop_assert!(opt >= lower, "opt {opt} < lower {lower}");
    }

    /// With LCS scoring (match 1, mismatch 0, gap 0) the optimum equals
    /// the LCS length computed by an independent textbook recurrence.
    #[test]
    fn lcs_scheme_computes_lcs(a in dna_codes(25), b in dna_codes(25)) {
        let scheme = ScoringScheme::new(
            flsa_scoring::tables::identity(Alphabet::dna()),
            GapModel::linear(0),
        );
        let bound = Boundary::global(a.len(), b.len(), 0);
        let metrics = Metrics::new();
        let dpm = fill_full(&a, &b, &bound.top, &bound.left, &scheme, &metrics);

        // Independent LCS implementation.
        let mut lcs = vec![vec![0i32; b.len() + 1]; a.len() + 1];
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                lcs[i][j] = if a[i - 1] == b[j - 1] {
                    lcs[i - 1][j - 1] + 1
                } else {
                    lcs[i - 1][j].max(lcs[i][j - 1])
                };
            }
        }
        prop_assert_eq!(dpm.get(a.len(), b.len()), lcs[a.len()][b.len()]);
    }
}

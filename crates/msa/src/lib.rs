//! Center-star multiple sequence alignment (MSA) on top of FastLSA.
//!
//! The paper's introduction motivates pairwise alignment as the
//! fundamental operation of homology search; the classic *downstream*
//! consumer is multiple alignment. This crate implements the center-star
//! method (Gusfield's 2-approximation for sum-of-pairs):
//!
//! 1. align every pair with FastLSA and pick the **center** sequence
//!    maximizing total similarity to the others;
//! 2. align every other sequence to the center (optimal pairwise paths);
//! 3. merge the pairwise alignments with the *"once a gap, always a
//!    gap"* rule: the master column layout inserts, between consecutive
//!    center residues, the maximum number of insertion columns any
//!    pairwise alignment needs there.
//!
//! All pairwise work runs through [`fastlsa_core::align_with`], so large
//! families of long sequences stay within FastLSA's linear-space
//! footprint.
#![forbid(unsafe_code)]

pub mod msa;
pub mod star;

pub use msa::Msa;
pub use star::{center_star, CenterStarResult, MsaError};

//! The multiple-alignment result type.

use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

/// A multiple sequence alignment: `n` rows of equal length over the
/// alphabet plus `-`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msa {
    /// Sequence identifiers, row order.
    pub ids: Vec<String>,
    /// Aligned rows (equal lengths, `-` for gaps).
    pub rows: Vec<String>,
}

impl Msa {
    /// Builds an MSA, validating shape.
    ///
    /// # Panics
    ///
    /// Panics when rows have unequal lengths or counts mismatch.
    pub fn new(ids: Vec<String>, rows: Vec<String>) -> Self {
        assert_eq!(ids.len(), rows.len(), "one id per row");
        if let Some(first) = rows.first() {
            assert!(
                rows.iter().all(|r| r.len() == first.len()),
                "all MSA rows must have equal length"
            );
        }
        Msa { ids, rows }
    }

    /// Number of sequences.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of alignment columns.
    pub fn num_cols(&self) -> usize {
        self.rows.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Row `i` with gaps removed (the original sequence text).
    pub fn ungapped(&self, i: usize) -> String {
        self.rows[i].chars().filter(|&c| c != '-').collect()
    }

    /// Sum-of-pairs score under `scheme` (linear gaps; gap–gap columns
    /// score 0, residue–gap pairs score the gap penalty).
    pub fn sum_of_pairs(&self, scheme: &ScoringScheme) -> i64 {
        let gap = scheme.gap().linear_penalty() as i64;
        let alpha = scheme.alphabet();
        let bytes: Vec<&[u8]> = self.rows.iter().map(|r| r.as_bytes()).collect();
        let mut total = 0i64;
        for col in 0..self.num_cols() {
            for i in 0..bytes.len() {
                for j in i + 1..bytes.len() {
                    let (ci, cj) = (bytes[i][col] as char, bytes[j][col] as char);
                    total += match (ci == '-', cj == '-') {
                        (true, true) => 0,
                        (true, false) | (false, true) => gap,
                        (false, false) => {
                            // flsa-check: allow(unwrap) — rows render from encoded seqs
                            let a = alpha.encode_symbol(ci).expect("row symbol in alphabet");
                            // flsa-check: allow(unwrap) — same invariant as above
                            let b = alpha.encode_symbol(cj).expect("row symbol in alphabet");
                            scheme.sub(a, b) as i64
                        }
                    };
                }
            }
        }
        total
    }

    /// Fraction of columns where every row carries the identical residue
    /// (no gaps).
    pub fn conservation(&self) -> f64 {
        let cols = self.num_cols();
        if cols == 0 || self.rows.is_empty() {
            return 0.0;
        }
        let bytes: Vec<&[u8]> = self.rows.iter().map(|r| r.as_bytes()).collect();
        let conserved = (0..cols)
            .filter(|&c| {
                let first = bytes[0][c];
                first != b'-' && bytes.iter().all(|r| r[c] == first)
            })
            .count();
        conserved as f64 / cols as f64
    }

    /// Checks the MSA is a faithful alignment of `originals` (same ids,
    /// same residues after removing gaps). Test/validation helper.
    pub fn is_alignment_of(&self, originals: &[Sequence]) -> bool {
        self.num_rows() == originals.len()
            && originals
                .iter()
                .enumerate()
                .all(|(i, s)| self.ids[i] == s.id() && self.ungapped(i) == s.to_string())
    }
}

impl std::fmt::Display for Msa {
    /// Clustal-like block rendering, 60 columns per block.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const W: usize = 60;
        let name_w = self.ids.iter().map(String::len).max().unwrap_or(0).min(20);
        let cols = self.num_cols();
        let mut pos = 0;
        while pos < cols {
            let end = (pos + W).min(cols);
            for (id, row) in self.ids.iter().zip(&self.rows) {
                writeln!(f, "{:<name_w$}  {}", truncate(id, 20), &row[pos..end])?;
            }
            if end < cols {
                writeln!(f)?;
            }
            pos = end;
        }
        Ok(())
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_seq::Alphabet;

    fn msa() -> Msa {
        Msa::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["AC-GT".into(), "ACCGT".into(), "AC-G-".into()],
        )
    }

    #[test]
    fn shape_accessors() {
        let m = msa();
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 5);
        assert_eq!(m.ungapped(0), "ACGT");
        assert_eq!(m.ungapped(2), "ACG");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        Msa::new(
            vec!["a".into(), "b".into()],
            vec!["AC".into(), "ACG".into()],
        );
    }

    #[test]
    fn sum_of_pairs_hand_computed() {
        let scheme = ScoringScheme::dna_default();
        let m = Msa::new(
            vec!["a".into(), "b".into()],
            vec!["AC-T".into(), "ACGT".into()],
        );
        // Columns: A/A (+5), C/C (+5), -/G (-10), T/T (+5) = 5.
        assert_eq!(m.sum_of_pairs(&scheme), 5);
    }

    #[test]
    fn gap_gap_columns_score_zero() {
        let scheme = ScoringScheme::dna_default();
        let m = Msa::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["A-T".into(), "A-T".into(), "AGT".into()],
        );
        // col0: 3 pairs of A/A = 15; col1: -/- 0, -/G -10, -/G -10;
        // col2: 15. Total 10.
        assert_eq!(m.sum_of_pairs(&scheme), 10);
    }

    #[test]
    fn conservation_counts_all_identical_columns() {
        let m = msa();
        // Conserved columns: A, C, G (col 3). Col 2 has a gap, col 4 mixed.
        assert!((m.conservation() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn is_alignment_of_checks_residues() {
        let m = msa();
        let alpha = Alphabet::dna();
        let originals = vec![
            Sequence::from_str("a", &alpha, "ACGT").unwrap(),
            Sequence::from_str("b", &alpha, "ACCGT").unwrap(),
            Sequence::from_str("c", &alpha, "ACG").unwrap(),
        ];
        assert!(m.is_alignment_of(&originals));
        let wrong = vec![
            Sequence::from_str("a", &alpha, "ACGA").unwrap(),
            Sequence::from_str("b", &alpha, "ACCGT").unwrap(),
            Sequence::from_str("c", &alpha, "ACG").unwrap(),
        ];
        assert!(!m.is_alignment_of(&wrong));
    }

    #[test]
    fn display_blocks() {
        let m = Msa::new(
            vec!["s1".into(), "s2".into()],
            vec!["A".repeat(70), "A".repeat(70)],
        );
        let text = format!("{m}");
        assert_eq!(text.lines().filter(|l| !l.is_empty()).count(), 4);
    }
}

//! The center-star construction.

use fastlsa_core::{AlignError, FastLsaConfig};
use flsa_dp::kernel::fill_last_row;
use flsa_dp::{Boundary, Metrics, Move, Path};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

use crate::Msa;

/// Errors from MSA construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsaError {
    /// No sequences supplied.
    Empty,
    /// A sequence is not encoded in the scoring scheme's alphabet.
    AlphabetMismatch {
        /// `id()` of the offending sequence.
        id: String,
    },
    /// A pairwise FastLSA alignment failed.
    Align(AlignError),
}

impl std::fmt::Display for MsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsaError::Empty => write!(f, "center-star MSA needs at least one sequence"),
            MsaError::AlphabetMismatch { id } => {
                write!(f, "sequence {id} is not encoded in the scheme's alphabet")
            }
            MsaError::Align(e) => write!(f, "pairwise alignment failed: {e}"),
        }
    }
}

impl std::error::Error for MsaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MsaError::Align(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlignError> for MsaError {
    fn from(e: AlignError) -> Self {
        MsaError::Align(e)
    }
}

/// Outcome of [`center_star`].
#[derive(Debug, Clone)]
pub struct CenterStarResult {
    /// The multiple alignment.
    pub msa: Msa,
    /// Index of the chosen center sequence (into the input slice).
    pub center: usize,
    /// Optimal pairwise score of every sequence against the center
    /// (`pairwise[center] = 0` by convention).
    pub pairwise: Vec<i64>,
}

/// Optimal pairwise score only (one rolling-row pass; no path).
fn pair_score(a: &Sequence, b: &Sequence, scheme: &ScoringScheme, metrics: &Metrics) -> i64 {
    let gap = scheme.gap().linear_penalty();
    let bound = Boundary::global(a.len(), b.len(), gap);
    let mut bottom = vec![0i32; b.len() + 1];
    fill_last_row(
        a.codes(),
        b.codes(),
        &bound.top,
        &bound.left,
        scheme,
        &mut bottom,
        metrics,
    );
    bottom[b.len()] as i64
}

/// Number of Left moves (insertions in the center) before each center
/// residue; slot `m` collects trailing insertions.
fn insertion_profile(path: &Path, center_len: usize) -> Vec<usize> {
    let mut ins = vec![0usize; center_len + 1];
    let mut p = 0usize;
    for m in path.moves() {
        match m {
            Move::Left => ins[p] += 1,
            Move::Diag | Move::Up => p += 1,
        }
    }
    debug_assert_eq!(p, center_len);
    ins
}

/// Renders a non-center row into the master column layout.
fn render_other(path: &Path, other: &Sequence, master: &[usize]) -> String {
    let alpha = other.alphabet();
    let mut out = String::new();
    let mut p = 0usize; // center position
    let mut q = 0usize; // other position
    let mut slot_used = 0usize;
    for m in path.moves() {
        match m {
            Move::Left => {
                out.push(alpha.decode(other.codes()[q]));
                q += 1;
                slot_used += 1;
            }
            Move::Diag | Move::Up => {
                // Close slot p: pad to the master insertion count.
                out.extend(std::iter::repeat_n('-', master[p] - slot_used));
                slot_used = 0;
                if matches!(m, Move::Diag) {
                    out.push(alpha.decode(other.codes()[q]));
                    q += 1;
                } else {
                    out.push('-');
                }
                p += 1;
            }
        }
    }
    out.extend(std::iter::repeat_n('-', master[p] - slot_used));
    out
}

/// Renders the center row into the master layout.
fn render_center(center: &Sequence, master: &[usize]) -> String {
    let alpha = center.alphabet();
    let mut out = String::new();
    for (p, &ins) in master.iter().enumerate() {
        out.extend(std::iter::repeat_n('-', ins));
        if p < center.len() {
            out.push(alpha.decode(center.codes()[p]));
        }
    }
    out
}

/// Center-star multiple alignment of `seqs` under `scheme`, with every
/// pairwise alignment computed by FastLSA (`config`).
///
/// # Examples
///
/// ```
/// use flsa_msa::center_star;
/// use fastlsa_core::FastLsaConfig;
/// use flsa_dp::Metrics;
/// use flsa_scoring::ScoringScheme;
/// use flsa_seq::Sequence;
///
/// let scheme = ScoringScheme::dna_default();
/// let seqs: Vec<Sequence> = ["ACGTACGT", "ACGTCGT", "ACGGACGT"]
///     .iter()
///     .enumerate()
///     .map(|(i, s)| Sequence::from_str(&format!("s{i}"), scheme.alphabet(), s).unwrap())
///     .collect();
/// let metrics = Metrics::new();
/// let result = center_star(&seqs, &scheme, FastLsaConfig::default(), &metrics).unwrap();
/// assert!(result.msa.is_alignment_of(&seqs));
/// assert_eq!(result.msa.num_rows(), 3);
/// ```
pub fn center_star(
    seqs: &[Sequence],
    scheme: &ScoringScheme,
    config: FastLsaConfig,
    metrics: &Metrics,
) -> Result<CenterStarResult, MsaError> {
    if seqs.is_empty() {
        return Err(MsaError::Empty);
    }
    for s in seqs {
        if s.alphabet() != scheme.alphabet() {
            return Err(MsaError::AlphabetMismatch {
                id: s.id().to_string(),
            });
        }
    }
    if seqs.len() == 1 {
        return Ok(CenterStarResult {
            msa: Msa::new(vec![seqs[0].id().to_string()], vec![seqs[0].to_string()]),
            center: 0,
            pairwise: vec![0],
        });
    }

    // 1. Pick the center: maximize the total pairwise score to the rest.
    let n = seqs.len();
    let mut totals = vec![0i64; n];
    for i in 0..n {
        for j in i + 1..n {
            let s = pair_score(&seqs[i], &seqs[j], scheme, metrics);
            totals[i] += s;
            totals[j] += s;
        }
    }
    let center = (0..n).max_by_key(|&i| totals[i]).expect("non-empty"); // flsa-check: allow(unwrap) — seqs.is_empty() rejected above
    let center_seq = &seqs[center];

    // 2. Optimal FastLSA path of every other sequence against the center.
    let mut paths: Vec<Option<Path>> = vec![None; n];
    let mut pairwise = vec![0i64; n];
    for (i, seq) in seqs.iter().enumerate() {
        if i == center {
            continue;
        }
        let r = fastlsa_core::align_with(center_seq, seq, scheme, config, metrics)?;
        pairwise[i] = r.score;
        paths[i] = Some(r.path);
    }

    // 3. Master layout: the per-slot maximum insertion counts.
    let mut master = vec![0usize; center_seq.len() + 1];
    for path in paths.iter().flatten() {
        for (p, ins) in insertion_profile(path, center_seq.len())
            .into_iter()
            .enumerate()
        {
            master[p] = master[p].max(ins);
        }
    }

    // 4. Render all rows in input order.
    let mut ids = Vec::with_capacity(n);
    let mut rows = Vec::with_capacity(n);
    for (i, seq) in seqs.iter().enumerate() {
        ids.push(seq.id().to_string());
        rows.push(match &paths[i] {
            None => render_center(center_seq, &master),
            Some(path) => render_other(path, seq, &master),
        });
    }
    Ok(CenterStarResult {
        msa: Msa::new(ids, rows),
        center,
        pairwise,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_seq::generate::{mutate, random_sequence, MutationModel};
    use flsa_seq::Alphabet;

    fn dna_seqs(texts: &[&str]) -> (Vec<Sequence>, ScoringScheme) {
        let scheme = ScoringScheme::dna_default();
        let seqs = texts
            .iter()
            .enumerate()
            .map(|(i, t)| Sequence::from_str(&format!("s{i}"), scheme.alphabet(), t).unwrap())
            .collect();
        (seqs, scheme)
    }

    fn build(texts: &[&str]) -> (CenterStarResult, Vec<Sequence>, ScoringScheme) {
        let (seqs, scheme) = dna_seqs(texts);
        let metrics = Metrics::new();
        let r = center_star(&seqs, &scheme, FastLsaConfig::new(2, 64), &metrics).unwrap();
        (r, seqs, scheme)
    }

    #[test]
    fn identical_sequences_align_without_gaps() {
        let (r, seqs, _) = build(&["ACGTACGT", "ACGTACGT", "ACGTACGT"]);
        assert!(r.msa.is_alignment_of(&seqs));
        assert_eq!(r.msa.num_cols(), 8);
        assert!((r.msa.conservation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deletion_in_one_sequence_becomes_a_gap_column() {
        let (r, seqs, _) = build(&["ACGTACGT", "ACGTCGT", "ACGTACGT"]);
        assert!(r.msa.is_alignment_of(&seqs));
        assert_eq!(r.msa.num_cols(), 8);
        assert_eq!(r.msa.rows[1].matches('-').count(), 1);
    }

    #[test]
    fn insertion_against_center_expands_all_rows() {
        let (r, seqs, _) = build(&[
            "ACGTACGT",
            "ACGTXACGT".replace('X', "T").as_str(),
            "ACGTACGT",
        ]);
        assert!(r.msa.is_alignment_of(&seqs));
        // One sequence has 9 residues: the MSA needs >= 9 columns.
        assert!(r.msa.num_cols() >= 9);
    }

    #[test]
    fn center_is_the_most_similar_sequence() {
        // s1 is similar to both others; s0 and s2 differ from each other.
        let (r, _, _) = build(&["AAAAAAAA", "AAAACCCC", "CCCCCCCC"]);
        assert_eq!(r.center, 1);
    }

    #[test]
    fn single_sequence_is_trivial() {
        let (r, seqs, _) = build(&["ACGT"]);
        assert!(r.msa.is_alignment_of(&seqs));
        assert_eq!(r.msa.num_cols(), 4);
    }

    #[test]
    fn empty_input_is_an_error() {
        let scheme = ScoringScheme::dna_default();
        let metrics = Metrics::new();
        assert_eq!(
            center_star(&[], &scheme, FastLsaConfig::default(), &metrics).unwrap_err(),
            MsaError::Empty
        );
    }

    #[test]
    fn mutated_family_round_trips() {
        let scheme = ScoringScheme::dna_default();
        let alpha = Alphabet::dna();
        let ancestor = random_sequence("anc", &alpha, 300, 7);
        let model = MutationModel::with_identity(0.85);
        let mut family = vec![ancestor.clone()];
        for seed in 1..=4 {
            family.push(mutate(&ancestor, &model, seed).unwrap());
        }
        let metrics = Metrics::new();
        let r = center_star(&family, &scheme, FastLsaConfig::new(4, 1024), &metrics).unwrap();
        assert!(r.msa.is_alignment_of(&family));
        assert!(
            r.msa.conservation() > 0.4,
            "conservation {}",
            r.msa.conservation()
        );
        // Sum-of-pairs should beat the trivial no-alignment baseline of
        // stacking unaligned sequences... compare against an MSA that
        // left-justifies rows and pads with gaps.
        let max_len = family.iter().map(Sequence::len).max().unwrap();
        let naive = Msa::new(
            family.iter().map(|s| s.id().to_string()).collect(),
            family
                .iter()
                .map(|s| format!("{}{}", s, "-".repeat(max_len - s.len())))
                .collect(),
        );
        assert!(
            r.msa.sum_of_pairs(&scheme) > naive.sum_of_pairs(&scheme),
            "center-star {} vs naive {}",
            r.msa.sum_of_pairs(&scheme),
            naive.sum_of_pairs(&scheme)
        );
    }

    #[test]
    fn sum_of_pairs_never_exceeds_exact_three_way_optimum() {
        // Exhaustive 3D DP oracle for three tiny sequences: center-star
        // is an approximation, so SP(center-star) <= SP(optimal).
        let cases = [
            ["ACGT", "AGT", "ACT"],
            ["AAAA", "AACA", "CAAA"],
            ["ACAC", "CACA", "ACCA"],
            ["GGG", "G", "GGGGG"],
        ];
        for texts in cases {
            let (r, seqs, scheme) = {
                let (seqs, scheme) = dna_seqs(&texts);
                let metrics = Metrics::new();
                let r = center_star(&seqs, &scheme, FastLsaConfig::new(2, 16), &metrics).unwrap();
                (r, seqs, scheme)
            };
            let opt = optimal_sp_3d(&seqs[0], &seqs[1], &seqs[2], &scheme);
            let cs = r.msa.sum_of_pairs(&scheme);
            assert!(cs <= opt, "{texts:?}: center-star {cs} > optimal {opt}");
            // And it should not be catastrophically below the optimum on
            // these near-identical cases.
            assert!(
                cs >= opt - 40,
                "{texts:?}: center-star {cs} vs optimal {opt}"
            );
        }
    }

    /// Exact 3-sequence sum-of-pairs optimum by 3-dimensional DP.
    fn optimal_sp_3d(a: &Sequence, b: &Sequence, c: &Sequence, scheme: &ScoringScheme) -> i64 {
        let gap = scheme.gap().linear_penalty() as i64;
        let (la, lb, lc) = (a.len(), b.len(), c.len());
        let idx = |i: usize, j: usize, k: usize| (i * (lb + 1) + j) * (lc + 1) + k;
        let mut dp = vec![i64::MIN / 2; (la + 1) * (lb + 1) * (lc + 1)];
        dp[0] = 0;
        let col = |x: Option<u8>, y: Option<u8>, z: Option<u8>| -> i64 {
            let pair = |p: Option<u8>, q: Option<u8>| -> i64 {
                match (p, q) {
                    (Some(r), Some(s)) => scheme.sub(r, s) as i64,
                    (None, None) => 0,
                    _ => gap,
                }
            };
            pair(x, y) + pair(x, z) + pair(y, z)
        };
        for i in 0..=la {
            for j in 0..=lb {
                for k in 0..=lc {
                    let cur = dp[idx(i, j, k)];
                    if cur <= i64::MIN / 4 {
                        continue;
                    }
                    let ra = (i < la).then(|| a.codes()[i]);
                    let rb = (j < lb).then(|| b.codes()[j]);
                    let rc = (k < lc).then(|| c.codes()[k]);
                    for da in 0..=1usize {
                        for db in 0..=1usize {
                            for dc in 0..=1usize {
                                if da + db + dc == 0 {
                                    continue;
                                }
                                if (da == 1 && ra.is_none())
                                    || (db == 1 && rb.is_none())
                                    || (dc == 1 && rc.is_none())
                                {
                                    continue;
                                }
                                let gain = col(
                                    if da == 1 { ra } else { None },
                                    if db == 1 { rb } else { None },
                                    if dc == 1 { rc } else { None },
                                );
                                let t = idx(i + da, j + db, k + dc);
                                dp[t] = dp[t].max(cur + gain);
                            }
                        }
                    }
                }
            }
        }
        dp[idx(la, lb, lc)]
    }
}

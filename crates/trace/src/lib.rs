//! Structured event tracing for FastLSA runs.
//!
//! The paper's contribution is analytical — the re-computation factor
//! ≤ (k/(k−1))², the three-phase wavefront pipeline of §5, Theorem 4's
//! wall-cost bound — and aggregate counters ([`flsa_dp::Metrics`]-style)
//! cannot show *where time goes* inside one run. This crate records a
//! timeline instead:
//!
//! * **recursion spans** — FillCache / BaseCase / Traceback phases of
//!   every FastLSA recursion node, with depth, rectangle dimensions, the
//!   division factors and cell counts;
//! * **wavefront fills and tiles** — each parallel fill region and each
//!   tile inside it (coordinates, anti-diagonal index, worker thread,
//!   start/end timestamps);
//! * **kernel events** — one instant event per fill-kernel invocation
//!   with the cells it computed (summing them reproduces
//!   `Metrics::cells_computed` exactly).
//!
//! ## Architecture
//!
//! [`Recorder`] is the sink: each recording thread gets a dense thread id
//! on first contact and appends to its own shard (a `Mutex<Vec<Event>>`
//! that is effectively uncontended because the shard index is derived
//! from the thread id). Timestamps are nanoseconds since the recorder's
//! `Instant` epoch. When no recorder is attached, the instrumented code
//! paths reduce to a branch on an `Option` — zero-cost in the sense
//! checked by the `trace_overhead` bench guard.
//!
//! [`Trace`] is the collected result. [`analysis::analyze`] derives
//! per-thread utilization, a per-fill pipeline-phase decomposition
//! (ramp-up / saturated / drain, directly comparable to §5's
//! R+C−1 / (T−1)(R+C) / R+C−1 accounting), recursion-tree summaries and
//! tile-latency histograms. [`export`] writes JSONL or Chrome
//! `trace_event` JSON (loadable in Perfetto / `chrome://tracing`) and
//! reads both back for `flsa report`.
#![forbid(unsafe_code)]

pub mod analysis;
pub mod event;
pub mod export;
pub mod json;
pub mod recorder;

pub use analysis::{
    analyze, render_report, Analysis, DegradeStats, FillStats, Histogram, KernelBackendStats,
    LifecycleEvent, LifecycleKind, PhaseStats, SpanDepthStats, ThreadStats,
};
pub use event::{
    intern_backend, DegradeReason, Event, EventKind, SpanKind, TileKind, Trace, TraceMeta,
};
pub use export::{read_trace, write_chrome, write_jsonl};
pub use recorder::{Recorder, TileTracer};

//! The event sink: per-thread sharded buffers merged on snapshot.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Event, EventKind, TileKind, Trace, TraceMeta};

/// Shard count; recording threads map `tid % SHARDS`, so up to `SHARDS`
/// threads record with no lock contention at all.
const SHARDS: usize = 64;

static RECORDER_IDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `(recorder id, dense tid)` pairs for this OS thread. Linear scan:
    /// a thread rarely touches more than a couple of live recorders.
    static THREAD_IDS: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
}

/// Collects [`Event`]s from any number of threads with minimal overhead.
///
/// Each recording thread is lazily assigned a dense thread id (0, 1, …)
/// the first time it records; events land in the shard owned by that id.
/// Timestamps are nanoseconds since the recorder's creation instant.
pub struct Recorder {
    id: u64,
    epoch: Instant,
    shards: Vec<Mutex<Vec<Event>>>,
    next_tid: AtomicU32,
    next_fill: AtomicU32,
    meta: Mutex<TraceMeta>,
    /// Interned name of the DP kernel backend currently in effect;
    /// stamped onto every kernel event so per-backend throughput
    /// survives into reports.
    kernel_backend: Mutex<&'static str>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("id", &self.id)
            // Relaxed: debug readout of a counter.
            .field("threads_seen", &self.next_tid.load(Ordering::Relaxed))
            .finish()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Recorder {
            id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed), // Relaxed: unique-id tick
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            next_tid: AtomicU32::new(0),
            next_fill: AtomicU32::new(0),
            meta: Mutex::new(TraceMeta::default()),
            kernel_backend: Mutex::new("scalar"),
        }
    }

    /// Nanoseconds since this recorder's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The calling thread's dense id under this recorder (assigned on
    /// first use).
    pub fn thread_id(&self) -> u32 {
        THREAD_IDS.with(|ids| {
            let mut ids = ids.borrow_mut();
            if let Some(&(_, tid)) = ids.iter().find(|&&(rid, _)| rid == self.id) {
                return tid;
            }
            // Relaxed: dense-id allocation; the id itself carries the data.
            let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
            ids.push((self.id, tid));
            tid
        })
    }

    /// A fresh wavefront-fill id (links a fill region to its tiles).
    pub fn next_fill_id(&self) -> u32 {
        self.next_fill.fetch_add(1, Ordering::Relaxed) // Relaxed: unique-id tick
    }

    /// Records one event on the calling thread's timeline.
    pub fn record(&self, start_ns: u64, end_ns: u64, kind: EventKind) {
        let tid = self.thread_id();
        let event = Event {
            tid,
            start_ns,
            end_ns,
            kind,
        };
        let shard = &self.shards[tid as usize % SHARDS];
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event);
    }

    /// Records one kernel invocation as an instant event, stamped with
    /// the backend set by [`Recorder::set_kernel_backend`].
    #[inline]
    pub fn record_kernel(&self, cells: u64) {
        let now = self.now_ns();
        let backend = *self
            .kernel_backend
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.record(now, now, EventKind::Kernel { cells, backend });
    }

    /// Sets the interned backend name stamped onto subsequent kernel
    /// events. The engine calls this when it resolves (or degrades) its
    /// kernel dispatch, so a single trace can carry a backend switch.
    pub fn set_kernel_backend(&self, backend: &'static str) {
        *self
            .kernel_backend
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = backend;
    }

    /// Sets the run label shown in reports and exports.
    pub fn set_label(&self, label: impl Into<String>) {
        self.meta
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .label = label.into();
    }

    /// Sets the configured thread count recorded in the trace metadata.
    pub fn set_threads(&self, threads: u32) {
        self.meta
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .threads = threads;
    }

    /// Number of distinct threads that have recorded so far.
    pub fn threads_seen(&self) -> u32 {
        self.next_tid.load(Ordering::Relaxed) // Relaxed: approximate readout
    }

    /// Copies all events out into a start-time-ordered [`Trace`].
    /// Non-destructive: recording may continue afterwards.
    pub fn snapshot(&self) -> Trace {
        let mut events = Vec::new();
        for shard in &self.shards {
            events.extend_from_slice(
                &shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
        }
        let meta = self
            .meta
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        Trace { meta, events }.sorted()
    }
}

/// Per-fill tile instrumentation handle, passed into the wavefront layer.
///
/// Holds the fill id and kind so the hot per-tile path only takes two
/// timestamps and pushes one event. `Sync` because tiles run on pool
/// worker threads.
pub struct TileTracer<'r> {
    recorder: &'r Recorder,
    kind: TileKind,
    fill: u32,
}

impl<'r> TileTracer<'r> {
    /// Creates a tracer for one wavefront fill, drawing a fresh fill id.
    pub fn new(recorder: &'r Recorder, kind: TileKind) -> Self {
        TileTracer {
            recorder,
            kind,
            fill: recorder.next_fill_id(),
        }
    }

    pub fn fill_id(&self) -> u32 {
        self.fill
    }

    /// Times one tile's work closure and records the tile event.
    #[inline]
    pub fn tile<F: FnOnce()>(&self, row: usize, col: usize, work: F) {
        let start = self.recorder.now_ns();
        work();
        self.recorder.record(
            start,
            self.recorder.now_ns(),
            EventKind::Tile {
                kind: self.kind,
                fill: self.fill,
                row: row as u32,
                col: col as u32,
                diag: (row + col) as u32,
            },
        );
    }

    /// Times the whole fill region (an `rows × cols` tile grid run on
    /// `threads` threads) around `run`, recording the fill event.
    pub fn region<T, F: FnOnce() -> T>(
        &self,
        rows: usize,
        cols: usize,
        threads: usize,
        run: F,
    ) -> T {
        let start = self.recorder.now_ns();
        let out = run();
        self.recorder.record(
            start,
            self.recorder.now_ns(),
            EventKind::Fill {
                kind: self.kind,
                fill: self.fill,
                rows: rows as u32,
                cols: cols as u32,
                threads: threads as u32,
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn dense_thread_ids_and_merged_snapshot() {
        let recorder = std::sync::Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = std::sync::Arc::clone(&recorder);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    r.record_kernel(5);
                }
                r.thread_id()
            }));
        }
        let mut tids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        tids.sort_unstable();
        assert_eq!(tids, vec![0, 1, 2, 3]);
        let trace = recorder.snapshot();
        assert_eq!(trace.events.len(), 40);
        assert_eq!(trace.kernel_cells(), 200);
        assert!(trace
            .events
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn distinct_recorders_assign_independent_ids() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.record_kernel(1);
        assert_eq!(a.thread_id(), 0);
        assert_eq!(b.thread_id(), 0, "each recorder numbers threads from 0");
    }

    #[test]
    fn tile_tracer_links_fill_and_tiles() {
        let recorder = Recorder::new();
        let tracer = TileTracer::new(&recorder, TileKind::GridFill);
        tracer.region(2, 2, 1, || {
            for r in 0..2 {
                for c in 0..2 {
                    tracer.tile(r, c, || {});
                }
            }
        });
        let trace = recorder.snapshot();
        let tiles: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Tile { fill, diag, .. } => Some((fill, diag)),
                _ => None,
            })
            .collect();
        assert_eq!(tiles.len(), 4);
        assert!(tiles.iter().all(|&(f, _)| f == tracer.fill_id()));
        assert_eq!(tiles.iter().filter(|&&(_, d)| d == 1).count(), 2);
        let fills = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Fill { .. }))
            .count();
        assert_eq!(fills, 1);
    }
}

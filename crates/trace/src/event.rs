//! The event model: what one FastLSA run's timeline is made of.

/// Phase of a FastLSA recursion node (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// fillGridCache: computing the grid cache rows/columns of one
    /// rectangle (Figure 2 line 5).
    FillCache,
    /// The base-case full-matrix solve (Figure 2 lines 1–2), fill only.
    BaseCase,
    /// FindPath traceback through a solved base-case matrix.
    Traceback,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::FillCache => "FillCache",
            SpanKind::BaseCase => "BaseCase",
            SpanKind::Traceback => "Traceback",
        }
    }
}

/// Which kind of wavefront fill a tile belongs to (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileKind {
    /// Tiled fillGridCache (Figure 13): boundary-only tiles.
    GridFill,
    /// Tiled Base Case: every entry stored.
    BaseFill,
}

impl TileKind {
    pub fn name(self) -> &'static str {
        match self {
            TileKind::GridFill => "GridFill",
            TileKind::BaseFill => "BaseFill",
        }
    }
}

/// Why the engine stepped down the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// An allocation was refused (budget, allocator, or injected fault).
    AllocFailed,
    /// A parallel worker panicked; the retry strips parallelism.
    WorkerPanic,
}

impl DegradeReason {
    pub fn name(self) -> &'static str {
        match self {
            DegradeReason::AllocFailed => "AllocFailed",
            DegradeReason::WorkerPanic => "WorkerPanic",
        }
    }
}

/// Payload of one recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// One recursion phase over a `rows × cols` rectangle at `depth` in
    /// the FastLSA recursion tree. `k_r`/`k_c` are the division factors
    /// in effect (0 for base cases); `cells` is the rectangle area.
    Span {
        kind: SpanKind,
        depth: u32,
        rows: u64,
        cols: u64,
        k_r: u32,
        k_c: u32,
        cells: u64,
    },
    /// One whole wavefront fill region: an `rows × cols` **tile grid**
    /// executed on `threads` threads. `fill` links its tiles.
    Fill {
        kind: TileKind,
        fill: u32,
        rows: u32,
        cols: u32,
        threads: u32,
    },
    /// One tile of wavefront fill `fill` at tile coordinates
    /// `(row, col)`, anti-diagonal `diag = row + col`.
    Tile {
        kind: TileKind,
        fill: u32,
        row: u32,
        col: u32,
        diag: u32,
    },
    /// One fill-kernel invocation computing `cells` DPM entries
    /// (instant event: `start_ns == end_ns`). Summing `cells` over a
    /// trace reproduces `Metrics::cells_computed`. `backend` is the
    /// interned name of the DP kernel backend that ran ("scalar",
    /// "sse4.1", "avx2", "avx512") so reports can break throughput down
    /// per backend.
    Kernel { cells: u64, backend: &'static str },
    /// The engine degraded its configuration (instant event): attempt
    /// `rung` failed for `reason` and the run was retried with the given
    /// `k`/`base_cells`/`threads`. `flsa report` surfaces these so a
    /// degraded run is visible after the fact.
    Degrade {
        reason: DegradeReason,
        rung: u32,
        k: u32,
        base_cells: u64,
        threads: u32,
    },
    /// A consistent snapshot of the recursion state was persisted
    /// (instant event). `seq` numbers snapshots within one process
    /// lifetime; `blocks` is the completed-grid-block progress counter;
    /// `frames` the recursion-stack depth captured; `bytes` the
    /// serialized snapshot size.
    Checkpoint {
        seq: u32,
        blocks: u64,
        frames: u32,
        bytes: u64,
    },
    /// The run was reconstructed from a durable snapshot (instant
    /// event). `generation` counts resumes in the lineage (1 = first
    /// resume); `blocks`/`frames` describe the snapshot picked up.
    Resume {
        generation: u32,
        blocks: u64,
        frames: u32,
    },
}

/// One timeline entry: who, when, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Dense per-recorder thread id (0 = first thread that recorded).
    pub tid: u32,
    /// Nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// End timestamp; equals `start_ns` for instant events.
    pub end_ns: u64,
    pub kind: EventKind,
}

impl Event {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The kernel backend names [`EventKind::Kernel`] may carry. Interning
/// keeps `EventKind` `Copy` while exports stay human-readable.
pub const KERNEL_BACKENDS: [&str; 4] = ["scalar", "sse4.1", "avx2", "avx512"];

/// Maps a backend name read from an external trace file back to its
/// interned `'static` form. Unknown names (future backends, foreign
/// traces) collapse to `"unknown"` rather than failing the parse.
pub fn intern_backend(name: &str) -> &'static str {
    for known in KERNEL_BACKENDS {
        if name == known {
            return known;
        }
    }
    "unknown"
}

/// Run-level context carried alongside the events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Free-form run label (e.g. "fastlsa 10000x10000").
    pub label: String,
    /// Threads the run was configured with (0 = unknown).
    pub threads: u32,
}

/// A collected run timeline.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub meta: TraceMeta,
    pub events: Vec<Event>,
}

impl Trace {
    /// Events ordered by start time (ties: by end, then thread).
    pub fn sorted(mut self) -> Self {
        self.events.sort_by_key(|e| (e.start_ns, e.end_ns, e.tid));
        self
    }

    /// Wall-clock extent covered by the events, in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        let lo = self.events.iter().map(|e| e.start_ns).min().unwrap_or(0);
        let hi = self.events.iter().map(|e| e.end_ns).max().unwrap_or(0);
        hi.saturating_sub(lo)
    }

    /// Total cells recorded by kernel events.
    pub fn kernel_cells(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                EventKind::Kernel { cells, .. } => cells,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_and_kernel_totals() {
        let t = Trace {
            meta: TraceMeta::default(),
            events: vec![
                Event {
                    tid: 0,
                    start_ns: 10,
                    end_ns: 30,
                    kind: EventKind::Kernel {
                        cells: 7,
                        backend: "scalar",
                    },
                },
                Event {
                    tid: 1,
                    start_ns: 5,
                    end_ns: 25,
                    kind: EventKind::Tile {
                        kind: TileKind::GridFill,
                        fill: 0,
                        row: 0,
                        col: 0,
                        diag: 0,
                    },
                },
                Event {
                    tid: 0,
                    start_ns: 40,
                    end_ns: 40,
                    kind: EventKind::Kernel {
                        cells: 3,
                        backend: "avx2",
                    },
                },
            ],
        };
        assert_eq!(t.wall_ns(), 35);
        assert_eq!(t.kernel_cells(), 10);
        let sorted = t.sorted();
        assert_eq!(sorted.events[0].start_ns, 5);
    }
}

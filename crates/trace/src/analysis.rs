//! Post-run trace analysis: utilization, pipeline phases, recursion
//! summaries, latency histograms, and the human-readable report.
//!
//! The phase decomposition mirrors `flsa_wavefront::phases` exactly: a
//! wavefront line (anti-diagonal) with at least `P` live tiles is
//! *saturated*; lines before the first saturated one are *ramp-up*; later
//! narrow lines are *drain* (paper §5.2, Figure 13). Because it is
//! computed from the recorded tile events, the census here is the
//! *measured* counterpart of the analytical `phase_breakdown` — the two
//! must agree tile-for-tile on the same grid, which the integration tests
//! assert.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{DegradeReason, EventKind, SpanKind, TileKind, Trace};

/// One recorded degradation step (the engine retried with a smaller
/// configuration after a fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeStats {
    pub reason: DegradeReason,
    /// 1-based retry index.
    pub rung: u32,
    /// Configuration of the retry.
    pub k: u32,
    pub base_cells: u64,
    pub threads: u32,
}

/// One entry on the run-lifecycle timeline: the instant events that
/// describe how the run survived (or didn't) — degradations, persisted
/// checkpoints, and resumes — in wall-clock order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleKind {
    Degrade(DegradeStats),
    Checkpoint {
        seq: u32,
        blocks: u64,
        frames: u32,
        bytes: u64,
    },
    Resume {
        generation: u32,
        blocks: u64,
        frames: u32,
    },
}

/// A lifecycle event positioned on the trace timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// Nanoseconds from the trace's first event.
    pub at_ns: u64,
    pub kind: LifecycleKind,
}

/// Busy time and event count for one recording thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadStats {
    pub tid: u32,
    /// Events attributed to this thread.
    pub events: usize,
    /// Union length of this thread's event intervals, ns (overlapping
    /// spans — e.g. a recursion span over its tiles — count once).
    pub busy_ns: u64,
    /// `busy_ns` over the trace's wall time.
    pub utilization: f64,
}

/// Measured census of one pipeline phase of one wavefront fill.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Wavefront lines (anti-diagonals) in this phase.
    pub lines: usize,
    /// Tiles in those lines.
    pub tiles: usize,
    /// Sum of tile durations, ns.
    pub busy_ns: u64,
    /// Extent from the phase's first tile start to its last tile end, ns.
    pub wall_ns: u64,
}

/// One wavefront fill: identity, grid shape, and its three-phase census.
#[derive(Debug, Clone, PartialEq)]
pub struct FillStats {
    pub fill: u32,
    pub kind: TileKind,
    /// Tile-grid dimensions (from the fill event; 0 if absent).
    pub rows: u32,
    pub cols: u32,
    /// Threads the fill ran on (from the fill event; ≥1).
    pub threads: u32,
    /// Whole-fill wall time, ns.
    pub wall_ns: u64,
    pub tiles: usize,
    /// Ramp-up, saturated, drain.
    pub phases: [PhaseStats; 3],
}

/// Aggregate over all recursion spans of one kind at one depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanDepthStats {
    pub kind: SpanKind,
    pub depth: u32,
    pub count: usize,
    /// Summed rectangle areas.
    pub cells: u64,
    /// Summed span durations, ns.
    pub total_ns: u64,
}

/// Kernel-event aggregate for one DP kernel backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelBackendStats {
    /// Interned backend name ("scalar", "sse4.1", "avx2", "avx512").
    pub backend: &'static str,
    /// Kernel invocations recorded under this backend.
    pub calls: usize,
    /// DPM cells those invocations computed.
    pub cells: u64,
    /// Extent from this backend's first kernel event to its last, ns —
    /// the denominator for its cells/sec figure.
    pub span_ns: u64,
}

impl KernelBackendStats {
    /// Throughput in cells per second over this backend's active extent
    /// (`None` when the extent is zero, e.g. a single instant event).
    pub fn cells_per_sec(&self) -> Option<f64> {
        if self.span_ns == 0 {
            return None;
        }
        Some(self.cells as f64 * 1e9 / self.span_ns as f64)
    }
}

/// Power-of-two histogram of tile durations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `(upper_bound_ns, count)`; bounds double per bucket.
    pub buckets: Vec<(u64, usize)>,
}

impl Histogram {
    fn add(&mut self, value_ns: u64) {
        let mut bound = 1_000u64; // first bucket: ≤ 1 µs
        let mut idx = 0usize;
        while value_ns > bound && idx < 30 {
            bound *= 2;
            idx += 1;
        }
        while self.buckets.len() <= idx {
            let next = self.buckets.last().map_or(1_000, |&(b, _)| b * 2);
            self.buckets.push((next, 0));
        }
        self.buckets[idx].1 += 1;
    }

    pub fn total(&self) -> usize {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }
}

/// Everything [`analyze`] derives from a trace.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    pub label: String,
    /// Wall time covered by the trace, ns.
    pub wall_ns: u64,
    pub total_events: usize,
    /// Sum of kernel-event cells (equals `Metrics::cells_computed`).
    pub kernel_cells: u64,
    pub kernel_events: usize,
    /// Kernel-event totals broken down by DP kernel backend, largest
    /// cell count first.
    pub kernel_backends: Vec<KernelBackendStats>,
    pub threads: Vec<ThreadStats>,
    pub fills: Vec<FillStats>,
    pub spans: Vec<SpanDepthStats>,
    pub tile_hist: Histogram,
    /// Degradation-ladder steps, in the order they happened.
    pub degradations: Vec<DegradeStats>,
    /// Degrade/checkpoint/resume events on one timeline, in wall-clock
    /// order, so an operator can see where a job died and where it
    /// picked back up.
    pub lifecycle: Vec<LifecycleEvent>,
}

/// Union length of a set of half-open intervals, ns.
fn merged_len(intervals: &mut [(u64, u64)]) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(s, e) in intervals.iter() {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Derives the full [`Analysis`] from a trace.
pub fn analyze(trace: &Trace) -> Analysis {
    let mut out = Analysis {
        label: trace.meta.label.clone(),
        wall_ns: trace.wall_ns(),
        total_events: trace.events.len(),
        ..Analysis::default()
    };

    // Per-thread busy intervals (instant events contribute no time).
    let mut per_thread: BTreeMap<u32, (usize, Vec<(u64, u64)>)> = BTreeMap::new();
    // Tiles grouped by fill id; fill events by id.
    struct TileRec {
        row: u32,
        col: u32,
        diag: u32,
        start: u64,
        end: u64,
        kind: TileKind,
    }
    let mut tiles_by_fill: BTreeMap<u32, Vec<TileRec>> = BTreeMap::new();
    let mut fill_meta: BTreeMap<u32, (TileKind, u32, u32, u32, u64)> = BTreeMap::new();
    let mut spans: BTreeMap<(u8, u32), SpanDepthStats> = BTreeMap::new();
    // Per-backend kernel totals: (calls, cells, first start, last end).
    let mut backends: BTreeMap<&'static str, (usize, u64, u64, u64)> = BTreeMap::new();
    let t0 = trace.events.iter().map(|e| e.start_ns).min().unwrap_or(0);

    for e in &trace.events {
        let entry = per_thread.entry(e.tid).or_default();
        entry.0 += 1;
        if e.end_ns > e.start_ns {
            entry.1.push((e.start_ns, e.end_ns));
        }
        match e.kind {
            EventKind::Kernel { cells, backend } => {
                out.kernel_cells += cells;
                out.kernel_events += 1;
                let b = backends
                    .entry(backend)
                    .or_insert((0, 0, e.start_ns, e.end_ns));
                b.0 += 1;
                b.1 += cells;
                b.2 = b.2.min(e.start_ns);
                b.3 = b.3.max(e.end_ns);
            }
            EventKind::Tile {
                kind,
                fill,
                row,
                col,
                diag,
            } => {
                out.tile_hist.add(e.duration_ns());
                tiles_by_fill.entry(fill).or_default().push(TileRec {
                    row,
                    col,
                    diag,
                    start: e.start_ns,
                    end: e.end_ns,
                    kind,
                });
            }
            EventKind::Fill {
                kind,
                fill,
                rows,
                cols,
                threads,
            } => {
                fill_meta.insert(fill, (kind, rows, cols, threads, e.duration_ns()));
            }
            EventKind::Span {
                kind, depth, cells, ..
            } => {
                let key = (kind as u8, depth);
                let s = spans.entry(key).or_insert(SpanDepthStats {
                    kind,
                    depth,
                    count: 0,
                    cells: 0,
                    total_ns: 0,
                });
                s.count += 1;
                s.cells += cells;
                s.total_ns += e.duration_ns();
            }
            EventKind::Degrade {
                reason,
                rung,
                k,
                base_cells,
                threads,
            } => {
                let d = DegradeStats {
                    reason,
                    rung,
                    k,
                    base_cells,
                    threads,
                };
                out.degradations.push(d);
                out.lifecycle.push(LifecycleEvent {
                    at_ns: e.start_ns.saturating_sub(t0),
                    kind: LifecycleKind::Degrade(d),
                });
            }
            EventKind::Checkpoint {
                seq,
                blocks,
                frames,
                bytes,
            } => {
                out.lifecycle.push(LifecycleEvent {
                    at_ns: e.start_ns.saturating_sub(t0),
                    kind: LifecycleKind::Checkpoint {
                        seq,
                        blocks,
                        frames,
                        bytes,
                    },
                });
            }
            EventKind::Resume {
                generation,
                blocks,
                frames,
            } => {
                out.lifecycle.push(LifecycleEvent {
                    at_ns: e.start_ns.saturating_sub(t0),
                    kind: LifecycleKind::Resume {
                        generation,
                        blocks,
                        frames,
                    },
                });
            }
        }
    }
    out.lifecycle.sort_by_key(|l| l.at_ns);

    out.kernel_backends = backends
        .into_iter()
        .map(
            |(backend, (calls, cells, first, last))| KernelBackendStats {
                backend,
                calls,
                cells,
                span_ns: last.saturating_sub(first),
            },
        )
        .collect();
    out.kernel_backends
        .sort_by(|a, b| b.cells.cmp(&a.cells).then(a.backend.cmp(b.backend)));

    out.threads = per_thread
        .into_iter()
        .map(|(tid, (events, mut intervals))| {
            let busy_ns = merged_len(&mut intervals);
            ThreadStats {
                tid,
                events,
                busy_ns,
                utilization: if out.wall_ns > 0 {
                    busy_ns as f64 / out.wall_ns as f64
                } else {
                    0.0
                },
            }
        })
        .collect();

    out.spans = spans.into_values().collect();

    for (fill, tiles) in tiles_by_fill {
        let (kind, rows, cols, threads, fill_wall) =
            fill_meta.get(&fill).copied().unwrap_or_else(|| {
                // No fill event (e.g. kernel-only tracing): infer the grid
                // from the tiles themselves, assume one thread.
                let rows = tiles.iter().map(|t| t.row).max().unwrap_or(0) + 1;
                let cols = tiles.iter().map(|t| t.col).max().unwrap_or(0) + 1;
                (tiles[0].kind, rows, cols, 1, 0)
            });
        let threads = threads.max(1);

        // Measured census, same classification as wavefront::phases:
        // walk anti-diagonals in order; width ≥ P ⇒ saturated, narrow
        // lines before the first saturated one ⇒ ramp, after ⇒ drain.
        let mut widths: BTreeMap<u32, Vec<&TileRec>> = BTreeMap::new();
        for t in &tiles {
            widths.entry(t.diag).or_default().push(t);
        }
        let mut phases = [PhaseStats::default(); 3];
        let mut phase_bounds: [Option<(u64, u64)>; 3] = [None; 3];
        let mut seen_saturated = false;
        for (_, line) in widths {
            let width = line.len();
            let phase = if width >= threads as usize {
                seen_saturated = true;
                1
            } else if !seen_saturated {
                0
            } else {
                2
            };
            phases[phase].lines += 1;
            phases[phase].tiles += width;
            for t in &line {
                phases[phase].busy_ns += t.end.saturating_sub(t.start);
                let b = phase_bounds[phase].get_or_insert((t.start, t.end));
                b.0 = b.0.min(t.start);
                b.1 = b.1.max(t.end);
            }
        }
        for (p, b) in phases.iter_mut().zip(phase_bounds) {
            p.wall_ns = b.map_or(0, |(s, e)| e.saturating_sub(s));
        }
        let wall_ns = if fill_wall > 0 {
            fill_wall
        } else {
            let lo = tiles.iter().map(|t| t.start).min().unwrap_or(0);
            let hi = tiles.iter().map(|t| t.end).max().unwrap_or(0);
            hi.saturating_sub(lo)
        };
        out.fills.push(FillStats {
            fill,
            kind,
            rows,
            cols,
            threads,
            wall_ns,
            tiles: tiles.len(),
            phases,
        });
    }

    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Renders the analysis as the human-readable `flsa report` text.
pub fn render_report(a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace report{}{}",
        if a.label.is_empty() { "" } else { ": " },
        a.label
    );
    let _ = writeln!(
        out,
        "  wall {}   events {}   kernel calls {}   kernel cells {}",
        fmt_ns(a.wall_ns),
        a.total_events,
        a.kernel_events,
        a.kernel_cells
    );

    if a.kernel_backends.is_empty() {
        // Say so explicitly: a silently missing section reads as "the
        // report forgot", when the real story is that the trace holds no
        // Kernel events (kernel-level recording off, or a run that never
        // reached a fill).
        let _ = writeln!(
            out,
            "\nkernel backends:\n  no kernel activity recorded — the trace contains zero Kernel \
             events\n  (was the run traced end-to-end, and did it reach a fill?)"
        );
    } else {
        let _ = writeln!(out, "\nkernel backends:");
        for b in &a.kernel_backends {
            let rate = match b.cells_per_sec() {
                Some(r) if r >= 1e9 => format!("{:.2} Gcells/s", r / 1e9),
                Some(r) if r >= 1e6 => format!("{:.1} Mcells/s", r / 1e6),
                Some(r) => format!("{r:.0} cells/s"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:<8} {:>9} calls {:>16} cells  {:>14}  over {}",
                b.backend,
                b.calls,
                b.cells,
                rate,
                fmt_ns(b.span_ns)
            );
        }
    }

    let _ = writeln!(out, "\nper-thread utilization:");
    for t in &a.threads {
        let bars = (t.utilization * 40.0).round() as usize;
        let _ = writeln!(
            out,
            "  t{:<3} busy {:>12}  {:>6.1}%  |{:<40}|  {} events",
            t.tid,
            fmt_ns(t.busy_ns),
            t.utilization * 100.0,
            "#".repeat(bars.min(40)),
            t.events
        );
    }

    if !a.spans.is_empty() {
        let _ = writeln!(out, "\nrecursion tree (spans by kind and depth):");
        let _ = writeln!(
            out,
            "  {:<10} {:>5} {:>7} {:>16} {:>14}",
            "kind", "depth", "count", "cells", "total"
        );
        let mut spans = a.spans.clone();
        spans.sort_by_key(|s| (s.depth, s.kind as u8));
        for s in &spans {
            let _ = writeln!(
                out,
                "  {:<10} {:>5} {:>7} {:>16} {:>14}",
                s.kind.name(),
                s.depth,
                s.count,
                s.cells,
                fmt_ns(s.total_ns)
            );
        }
    }

    if !a.fills.is_empty() {
        let _ = writeln!(
            out,
            "\nwavefront fills (measured ramp-up / saturated / drain):"
        );
        let _ = writeln!(
            out,
            "  {:<5} {:<9} {:>9} {:>3} {:>22} {:>22} {:>22} {:>12}",
            "fill", "kind", "grid", "P", "ramp (lines/tiles)", "saturated", "drain", "wall"
        );
        for f in &a.fills {
            let ph = |p: &PhaseStats| format!("{}/{} {}", p.lines, p.tiles, fmt_ns(p.wall_ns));
            let _ = writeln!(
                out,
                "  {:<5} {:<9} {:>9} {:>3} {:>22} {:>22} {:>22} {:>12}",
                f.fill,
                f.kind.name(),
                format!("{}x{}", f.rows, f.cols),
                f.threads,
                ph(&f.phases[0]),
                ph(&f.phases[1]),
                ph(&f.phases[2]),
                fmt_ns(f.wall_ns)
            );
        }
        let totals = |i: usize| a.fills.iter().map(|f| f.phases[i].tiles).sum::<usize>();
        let _ = writeln!(
            out,
            "  totals: ramp {} tiles, saturated {} tiles, drain {} tiles over {} fills",
            totals(0),
            totals(1),
            totals(2),
            a.fills.len()
        );
    }

    if !a.lifecycle.is_empty() {
        let _ = writeln!(
            out,
            "\nrun lifecycle (degrade / checkpoint / resume timeline):"
        );
        for l in &a.lifecycle {
            let what = match l.kind {
                LifecycleKind::Degrade(d) => format!(
                    "degrade   rung {} ({}) -> k={} base_cells={} threads={}",
                    d.rung,
                    d.reason.name(),
                    d.k,
                    d.base_cells,
                    d.threads
                ),
                LifecycleKind::Checkpoint {
                    seq,
                    blocks,
                    frames,
                    bytes,
                } => {
                    format!("checkpoint #{seq} at {blocks} blocks ({frames} frames, {bytes} bytes)")
                }
                LifecycleKind::Resume {
                    generation,
                    blocks,
                    frames,
                } => format!(
                    "resume    generation {generation} from {blocks} blocks ({frames} frames)"
                ),
            };
            let _ = writeln!(out, "  +{:<12} {}", fmt_ns(l.at_ns), what);
        }
    }

    if !a.degradations.is_empty() {
        let _ = writeln!(out, "\ndegradation ladder (what degraded and why):");
        for d in &a.degradations {
            let _ = writeln!(
                out,
                "  rung {:<2} {:<12} -> retried with k={} base_cells={} threads={}",
                d.rung,
                d.reason.name(),
                d.k,
                d.base_cells,
                d.threads
            );
        }
    }

    if a.tile_hist.total() > 0 {
        let _ = writeln!(out, "\ntile latency histogram:");
        let total = a.tile_hist.total();
        for &(bound, count) in &a.tile_hist.buckets {
            if count == 0 {
                continue;
            }
            let bars = (count * 40).div_ceil(total);
            let _ = writeln!(
                out,
                "  ≤{:>10}  {:>7}  |{:<40}|",
                fmt_ns(bound),
                count,
                "#".repeat(bars.min(40))
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TraceMeta};

    fn tile(tid: u32, fill: u32, row: u32, col: u32, start: u64, end: u64) -> Event {
        Event {
            tid,
            start_ns: start,
            end_ns: end,
            kind: EventKind::Tile {
                kind: TileKind::GridFill,
                fill,
                row,
                col,
                diag: row + col,
            },
        }
    }

    /// 3×3 tile grid on 2 threads: diag widths 1,2,3,2,1 → ramp 1 line /
    /// 1 tile, saturated 3 lines / 7 tiles, drain 1 line / 1 tile.
    #[test]
    fn census_matches_hand_computed_phases() {
        let mut events = vec![Event {
            tid: 0,
            start_ns: 0,
            end_ns: 1000,
            kind: EventKind::Fill {
                kind: TileKind::GridFill,
                fill: 0,
                rows: 3,
                cols: 3,
                threads: 2,
            },
        }];
        let mut t = 0u64;
        for r in 0..3u32 {
            for c in 0..3u32 {
                events.push(tile(0, 0, r, c, t, t + 50));
                t += 60;
            }
        }
        let trace = Trace {
            meta: TraceMeta::default(),
            events,
        }
        .sorted();
        let a = analyze(&trace);
        assert_eq!(a.fills.len(), 1);
        let f = &a.fills[0];
        assert_eq!(f.tiles, 9);
        assert_eq!((f.phases[0].lines, f.phases[0].tiles), (1, 1));
        assert_eq!((f.phases[1].lines, f.phases[1].tiles), (3, 7));
        assert_eq!((f.phases[2].lines, f.phases[2].tiles), (1, 1));
        assert_eq!(f.phases[0].busy_ns, 50);
        assert_eq!(f.phases[1].busy_ns, 350);
    }

    #[test]
    fn utilization_merges_overlapping_intervals() {
        let events = vec![
            Event {
                tid: 0,
                start_ns: 0,
                end_ns: 100,
                kind: EventKind::Span {
                    kind: SpanKind::FillCache,
                    depth: 0,
                    rows: 10,
                    cols: 10,
                    k_r: 2,
                    k_c: 2,
                    cells: 100,
                },
            },
            tile(0, 0, 0, 0, 10, 60), // nested inside the span
            tile(1, 0, 0, 1, 40, 90),
        ];
        let trace = Trace {
            meta: TraceMeta::default(),
            events,
        }
        .sorted();
        let a = analyze(&trace);
        assert_eq!(a.wall_ns, 100);
        let t0 = a.threads.iter().find(|t| t.tid == 0).unwrap();
        assert_eq!(t0.busy_ns, 100, "span subsumes its nested tile");
        let t1 = a.threads.iter().find(|t| t.tid == 1).unwrap();
        assert_eq!(t1.busy_ns, 50);
        assert!((t1.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn kernel_cells_and_span_groups_aggregate() {
        let events = vec![
            Event {
                tid: 0,
                start_ns: 5,
                end_ns: 5,
                kind: EventKind::Kernel {
                    cells: 30,
                    backend: "avx2",
                },
            },
            Event {
                tid: 0,
                start_ns: 9,
                end_ns: 9,
                kind: EventKind::Kernel {
                    cells: 12,
                    backend: "scalar",
                },
            },
            Event {
                tid: 0,
                start_ns: 0,
                end_ns: 10,
                kind: EventKind::Span {
                    kind: SpanKind::BaseCase,
                    depth: 2,
                    rows: 6,
                    cols: 7,
                    k_r: 0,
                    k_c: 0,
                    cells: 42,
                },
            },
            Event {
                tid: 0,
                start_ns: 12,
                end_ns: 20,
                kind: EventKind::Span {
                    kind: SpanKind::BaseCase,
                    depth: 2,
                    rows: 6,
                    cols: 7,
                    k_r: 0,
                    k_c: 0,
                    cells: 42,
                },
            },
        ];
        let trace = Trace {
            meta: TraceMeta::default(),
            events,
        }
        .sorted();
        let a = analyze(&trace);
        assert_eq!(a.kernel_cells, 42);
        assert_eq!(a.kernel_events, 2);
        assert_eq!(a.kernel_backends.len(), 2);
        assert_eq!(a.kernel_backends[0].backend, "avx2");
        assert_eq!(a.kernel_backends[0].cells, 30);
        assert_eq!(a.kernel_backends[1].backend, "scalar");
        assert_eq!(a.kernel_backends[1].calls, 1);
        assert_eq!(a.spans.len(), 1);
        assert_eq!(a.spans[0].count, 2);
        assert_eq!(a.spans[0].cells, 84);
        assert_eq!(a.spans[0].total_ns, 18);
        let report = render_report(&a);
        assert!(report.contains("BaseCase"));
        assert!(report.contains("kernel cells 42"));
        assert!(report.contains("kernel backends:"));
        assert!(report.contains("avx2"));
    }

    /// Regression: a trace with zero Kernel events used to omit the
    /// backends section entirely, which read as a report bug. It must
    /// say explicitly that no kernel activity was recorded.
    #[test]
    fn kernel_free_trace_reports_no_kernel_activity_explicitly() {
        let trace = Trace {
            meta: TraceMeta::default(),
            events: vec![tile(0, 0, 0, 0, 0, 50)],
        }
        .sorted();
        let a = analyze(&trace);
        assert!(a.kernel_backends.is_empty());
        let report = render_report(&a);
        assert!(report.contains("kernel backends:"), "{report}");
        assert!(report.contains("no kernel activity recorded"), "{report}");
        // And a trace *with* kernel events must not carry the notice.
        let with_kernels = analyze(&Trace {
            meta: TraceMeta::default(),
            events: vec![Event {
                tid: 0,
                start_ns: 0,
                end_ns: 0,
                kind: EventKind::Kernel {
                    cells: 10,
                    backend: "scalar",
                },
            }],
        });
        assert!(!render_report(&with_kernels).contains("no kernel activity"));
    }

    #[test]
    fn backend_throughput_uses_event_extent() {
        let kernel = |start: u64, cells: u64| Event {
            tid: 0,
            start_ns: start,
            end_ns: start,
            kind: EventKind::Kernel {
                cells,
                backend: "avx512",
            },
        };
        let a = analyze(&Trace {
            meta: TraceMeta::default(),
            events: vec![kernel(0, 500), kernel(1_000_000_000, 500)],
        });
        let b = &a.kernel_backends[0];
        assert_eq!(b.backend, "avx512");
        assert_eq!(b.calls, 2);
        assert_eq!(b.cells, 1000);
        assert_eq!(b.span_ns, 1_000_000_000);
        let rate = b.cells_per_sec().unwrap();
        assert!((rate - 1000.0).abs() < 1e-6, "1000 cells over 1 s");
        // A single instant event has no extent and no rate.
        let single = analyze(&Trace {
            meta: TraceMeta::default(),
            events: vec![kernel(5, 10)],
        });
        assert!(single.kernel_backends[0].cells_per_sec().is_none());
    }

    #[test]
    fn lifecycle_timeline_orders_degrade_checkpoint_resume() {
        let events = vec![
            Event {
                tid: 0,
                start_ns: 300,
                end_ns: 300,
                kind: EventKind::Resume {
                    generation: 1,
                    blocks: 9,
                    frames: 2,
                },
            },
            Event {
                tid: 0,
                start_ns: 100,
                end_ns: 100,
                kind: EventKind::Degrade {
                    reason: DegradeReason::AllocFailed,
                    rung: 1,
                    k: 4,
                    base_cells: 512,
                    threads: 1,
                },
            },
            Event {
                tid: 0,
                start_ns: 200,
                end_ns: 200,
                kind: EventKind::Checkpoint {
                    seq: 0,
                    blocks: 9,
                    frames: 2,
                    bytes: 4096,
                },
            },
        ];
        let a = analyze(&Trace {
            meta: TraceMeta::default(),
            events,
        });
        // Ordered by time, offsets relative to the first event.
        assert_eq!(a.lifecycle.len(), 3);
        assert_eq!(a.lifecycle[0].at_ns, 0);
        assert!(matches!(a.lifecycle[0].kind, LifecycleKind::Degrade(_)));
        assert!(matches!(
            a.lifecycle[1].kind,
            LifecycleKind::Checkpoint {
                seq: 0,
                bytes: 4096,
                ..
            }
        ));
        assert!(matches!(
            a.lifecycle[2].kind,
            LifecycleKind::Resume { generation: 1, .. }
        ));
        let report = render_report(&a);
        assert!(report.contains("run lifecycle"));
        assert!(report.contains("checkpoint #0 at 9 blocks"));
        assert!(report.contains("resume    generation 1"));
    }

    #[test]
    fn histogram_buckets_double() {
        let mut h = Histogram::default();
        h.add(500); // ≤ 1 µs
        h.add(1500); // ≤ 2 µs
        h.add(1_000_000); // ≤ 1.024 ms-ish bucket
        assert_eq!(h.total(), 3);
        assert_eq!(h.buckets[0], (1_000, 1));
        assert_eq!(h.buckets[1], (2_000, 1));
        for w in h.buckets.windows(2) {
            assert_eq!(w[1].0, w[0].0 * 2);
        }
    }
}

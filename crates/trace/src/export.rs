//! Trace serialization: JSONL event dumps and Chrome `trace_event` JSON.
//!
//! Both formats embed every event field, so [`read_trace`] reconstructs
//! the exact [`Trace`] from either one (`flsa report` accepts both). The
//! Chrome format loads directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`: spans and tiles appear as duration slices per
//! thread, kernels as instant markers.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::event::{
    intern_backend, DegradeReason, Event, EventKind, SpanKind, TileKind, Trace, TraceMeta,
};
use crate::json::{self, Value};

fn span_kind_from(name: &str) -> Result<SpanKind, String> {
    match name {
        "FillCache" => Ok(SpanKind::FillCache),
        "BaseCase" => Ok(SpanKind::BaseCase),
        "Traceback" => Ok(SpanKind::Traceback),
        other => Err(format!("unknown span kind {other:?}")),
    }
}

fn tile_kind_from(name: &str) -> Result<TileKind, String> {
    match name {
        "GridFill" => Ok(TileKind::GridFill),
        "BaseFill" => Ok(TileKind::BaseFill),
        other => Err(format!("unknown tile kind {other:?}")),
    }
}

fn degrade_reason_from(name: &str) -> Result<DegradeReason, String> {
    match name {
        "AllocFailed" => Ok(DegradeReason::AllocFailed),
        "WorkerPanic" => Ok(DegradeReason::WorkerPanic),
        other => Err(format!("unknown degrade reason {other:?}")),
    }
}

/// One event as a flat JSON object (the JSONL line / Chrome `args` form).
fn event_object(e: &Event) -> String {
    let mut s = String::with_capacity(128);
    match e.kind {
        EventKind::Span {
            kind,
            depth,
            rows,
            cols,
            k_r,
            k_c,
            cells,
        } => {
            let _ = write!(
                s,
                "{{\"type\":\"span\",\"kind\":\"{}\",\"depth\":{depth},\"rows\":{rows},\
                 \"cols\":{cols},\"k_r\":{k_r},\"k_c\":{k_c},\"cells\":{cells}",
                kind.name()
            );
        }
        EventKind::Fill {
            kind,
            fill,
            rows,
            cols,
            threads,
        } => {
            let _ = write!(
                s,
                "{{\"type\":\"fill\",\"kind\":\"{}\",\"fill\":{fill},\"rows\":{rows},\
                 \"cols\":{cols},\"threads\":{threads}",
                kind.name()
            );
        }
        EventKind::Tile {
            kind,
            fill,
            row,
            col,
            diag,
        } => {
            let _ = write!(
                s,
                "{{\"type\":\"tile\",\"kind\":\"{}\",\"fill\":{fill},\"row\":{row},\
                 \"col\":{col},\"diag\":{diag}",
                kind.name()
            );
        }
        EventKind::Kernel { cells, backend } => {
            let _ = write!(
                s,
                "{{\"type\":\"kernel\",\"cells\":{cells},\"backend\":\"{backend}\""
            );
        }
        EventKind::Degrade {
            reason,
            rung,
            k,
            base_cells,
            threads,
        } => {
            let _ = write!(
                s,
                "{{\"type\":\"degrade\",\"reason\":\"{}\",\"rung\":{rung},\"k\":{k},\
                 \"base_cells\":{base_cells},\"threads\":{threads}",
                reason.name()
            );
        }
        EventKind::Checkpoint {
            seq,
            blocks,
            frames,
            bytes,
        } => {
            let _ = write!(
                s,
                "{{\"type\":\"checkpoint\",\"seq\":{seq},\"blocks\":{blocks},\
                 \"frames\":{frames},\"bytes\":{bytes}"
            );
        }
        EventKind::Resume {
            generation,
            blocks,
            frames,
        } => {
            let _ = write!(
                s,
                "{{\"type\":\"resume\",\"generation\":{generation},\"blocks\":{blocks},\
                 \"frames\":{frames}"
            );
        }
    }
    let _ = write!(
        s,
        ",\"tid\":{},\"start_ns\":{},\"end_ns\":{}}}",
        e.tid, e.start_ns, e.end_ns
    );
    s
}

fn event_from_object(v: &Value) -> Result<Event, String> {
    let field = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing numeric field {key:?}"))
    };
    let kind_name = |v: &Value| {
        v.get("kind")
            .and_then(Value::as_str)
            .ok_or("missing kind")
            .map(str::to_string)
    };
    let kind = match v.get("type").and_then(Value::as_str) {
        Some("span") => EventKind::Span {
            kind: span_kind_from(&kind_name(v)?)?,
            depth: field("depth")? as u32,
            rows: field("rows")?,
            cols: field("cols")?,
            k_r: field("k_r")? as u32,
            k_c: field("k_c")? as u32,
            cells: field("cells")?,
        },
        Some("fill") => EventKind::Fill {
            kind: tile_kind_from(&kind_name(v)?)?,
            fill: field("fill")? as u32,
            rows: field("rows")? as u32,
            cols: field("cols")? as u32,
            threads: field("threads")? as u32,
        },
        Some("tile") => EventKind::Tile {
            kind: tile_kind_from(&kind_name(v)?)?,
            fill: field("fill")? as u32,
            row: field("row")? as u32,
            col: field("col")? as u32,
            diag: field("diag")? as u32,
        },
        Some("kernel") => EventKind::Kernel {
            cells: field("cells")?,
            // Tolerant default: traces written before the backend field
            // existed parse as scalar-kernel runs.
            backend: intern_backend(v.get("backend").and_then(Value::as_str).unwrap_or("scalar")),
        },
        Some("degrade") => EventKind::Degrade {
            reason: degrade_reason_from(
                v.get("reason")
                    .and_then(Value::as_str)
                    .ok_or("missing reason")?,
            )?,
            rung: field("rung")? as u32,
            k: field("k")? as u32,
            base_cells: field("base_cells")?,
            threads: field("threads")? as u32,
        },
        Some("checkpoint") => EventKind::Checkpoint {
            seq: field("seq")? as u32,
            blocks: field("blocks")?,
            frames: field("frames")? as u32,
            bytes: field("bytes")?,
        },
        Some("resume") => EventKind::Resume {
            generation: field("generation")? as u32,
            blocks: field("blocks")?,
            frames: field("frames")? as u32,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(Event {
        tid: field("tid")? as u32,
        start_ns: field("start_ns")?,
        end_ns: field("end_ns")?,
        kind,
    })
}

fn meta_object(meta: &TraceMeta) -> String {
    format!(
        "{{\"type\":\"meta\",\"label\":\"{}\",\"threads\":{}}}",
        json::escape(&meta.label),
        meta.threads
    )
}

fn meta_from_object(v: &Value) -> TraceMeta {
    TraceMeta {
        label: v
            .get("label")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string(),
        threads: v.get("threads").and_then(Value::as_u64).unwrap_or(0) as u32,
    }
}

/// Writes the trace as JSONL: a meta line followed by one event per line.
pub fn write_jsonl<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    writeln!(w, "{}", meta_object(&trace.meta))?;
    for e in &trace.events {
        writeln!(w, "{}", event_object(e))?;
    }
    Ok(())
}

fn chrome_event_name(e: &Event) -> String {
    match e.kind {
        EventKind::Span {
            kind,
            depth,
            rows,
            cols,
            ..
        } => {
            format!("{} d{depth} {rows}x{cols}", kind.name())
        }
        EventKind::Fill {
            kind,
            fill,
            rows,
            cols,
            ..
        } => {
            format!("{} #{fill} {rows}x{cols} tiles", kind.name())
        }
        EventKind::Tile { row, col, .. } => format!("tile ({row},{col})"),
        EventKind::Kernel { cells, backend } => format!("kernel {cells} [{backend}]"),
        EventKind::Degrade {
            reason, rung, k, ..
        } => format!("degrade #{rung} ({}) -> k={k}", reason.name()),
        EventKind::Checkpoint { seq, blocks, .. } => {
            format!("checkpoint #{seq} @{blocks} blocks")
        }
        EventKind::Resume {
            generation, blocks, ..
        } => format!("resume gen {generation} @{blocks} blocks"),
    }
}

fn chrome_category(e: &Event) -> &'static str {
    match e.kind {
        EventKind::Span { .. } => "span",
        EventKind::Fill { .. } => "fill",
        EventKind::Tile { .. } => "tile",
        EventKind::Kernel { .. } => "kernel",
        EventKind::Degrade { .. } => "degrade",
        EventKind::Checkpoint { .. } => "checkpoint",
        EventKind::Resume { .. } => "resume",
    }
}

/// Writes the trace in Chrome `trace_event` JSON (object form), loadable
/// in Perfetto / `chrome://tracing`. Durations use complete (`"X"`)
/// events; kernels use instant (`"i"`) events. Timestamps are in µs as
/// the format requires; the exact nanosecond values ride along in `args`.
pub fn write_chrome<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    writeln!(
        w,
        "{{\"otherData\":{{\"label\":\"{}\",\"threads\":{}}},\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
        json::escape(&trace.meta.label),
        trace.meta.threads
    )?;
    for (i, e) in trace.events.iter().enumerate() {
        let comma = if i + 1 == trace.events.len() { "" } else { "," };
        let common = format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"args\":{}",
            json::escape(&chrome_event_name(e)),
            chrome_category(e),
            e.tid,
            e.start_ns as f64 / 1_000.0,
            event_object(e)
        );
        if e.start_ns == e.end_ns {
            writeln!(w, "{{\"ph\":\"i\",\"s\":\"t\",{common}}}{comma}")?;
        } else {
            writeln!(
                w,
                "{{\"ph\":\"X\",\"dur\":{:.3},{common}}}{comma}",
                e.duration_ns() as f64 / 1_000.0
            )?;
        }
    }
    writeln!(w, "]}}")?;
    Ok(())
}

/// Reads a trace back from either export format (auto-detected).
pub fn read_trace(text: &str) -> Result<Trace, String> {
    // Chrome form: one JSON object holding "traceEvents".
    if let Ok(doc) = json::parse(text) {
        if let Some(events) = doc.get("traceEvents").and_then(Value::as_arr) {
            let meta = doc
                .get("otherData")
                .map(meta_from_object)
                .unwrap_or_default();
            let events = events
                .iter()
                .map(|e| {
                    let args = e.get("args").ok_or("trace event without args")?;
                    event_from_object(args)
                })
                .collect::<Result<Vec<_>, String>>()?;
            return Ok(Trace { meta, events }.sorted());
        }
        // A single JSON object that is not a Chrome trace: fall through
        // to the JSONL path (it may be a one-line dump).
    }
    let mut meta = TraceMeta::default();
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if v.get("type").and_then(Value::as_str) == Some("meta") {
            meta = meta_from_object(&v);
        } else {
            events.push(event_from_object(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
    }
    if events.is_empty() {
        return Err("no trace events found (expected Chrome trace JSON or JSONL)".to_string());
    }
    Ok(Trace { meta, events }.sorted())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            meta: TraceMeta {
                label: "demo \"run\"".to_string(),
                threads: 4,
            },
            events: vec![
                Event {
                    tid: 0,
                    start_ns: 100,
                    end_ns: 900,
                    kind: EventKind::Span {
                        kind: SpanKind::FillCache,
                        depth: 0,
                        rows: 1000,
                        cols: 800,
                        k_r: 8,
                        k_c: 8,
                        cells: 800_000,
                    },
                },
                Event {
                    tid: 0,
                    start_ns: 110,
                    end_ns: 860,
                    kind: EventKind::Fill {
                        kind: TileKind::GridFill,
                        fill: 0,
                        rows: 16,
                        cols: 16,
                        threads: 4,
                    },
                },
                Event {
                    tid: 2,
                    start_ns: 120,
                    end_ns: 180,
                    kind: EventKind::Tile {
                        kind: TileKind::GridFill,
                        fill: 0,
                        row: 0,
                        col: 0,
                        diag: 0,
                    },
                },
                Event {
                    tid: 2,
                    start_ns: 180,
                    end_ns: 180,
                    kind: EventKind::Kernel {
                        cells: 4096,
                        backend: "avx2",
                    },
                },
                Event {
                    tid: 0,
                    start_ns: 950,
                    end_ns: 950,
                    kind: EventKind::Degrade {
                        reason: DegradeReason::AllocFailed,
                        rung: 1,
                        k: 4,
                        base_cells: 512,
                        threads: 4,
                    },
                },
                Event {
                    tid: 0,
                    start_ns: 960,
                    end_ns: 960,
                    kind: EventKind::Checkpoint {
                        seq: 3,
                        blocks: 48,
                        frames: 2,
                        bytes: 18_432,
                    },
                },
                Event {
                    tid: 0,
                    start_ns: 970,
                    end_ns: 970,
                    kind: EventKind::Resume {
                        generation: 1,
                        blocks: 48,
                        frames: 2,
                    },
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_jsonl(&trace, &mut buf).unwrap();
        let back = read_trace(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back.meta, trace.meta);
        assert_eq!(back.events, trace.events);
    }

    #[test]
    fn chrome_round_trip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_chrome(&trace, &mut buf).unwrap();
        let text = std::str::from_utf8(&buf).unwrap();
        // Structure sanity: valid JSON with one traceEvent per event.
        let doc = json::parse(text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 7);
        let back = read_trace(text).unwrap();
        assert_eq!(back.meta, trace.meta);
        assert_eq!(back.events, trace.events);
    }

    #[test]
    fn instant_events_use_instant_phase() {
        let trace = sample();
        let mut buf = Vec::new();
        write_chrome(&trace, &mut buf).unwrap();
        let text = std::str::from_utf8(&buf).unwrap();
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ph\":\"X\""));
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(read_trace("not json").is_err());
        assert!(read_trace("{\"traceEvents\":[{\"no_args\":1}]}").is_err());
        assert!(read_trace("").is_err());
    }
}

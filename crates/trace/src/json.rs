//! A small self-contained JSON reader/writer.
//!
//! The workspace builds offline with no serialization crates, so the
//! exporters hand-write JSON and `flsa report` parses it back with this
//! recursive-descent parser. Numbers are kept as `f64` — every value this
//! crate round-trips (timestamps in ns, cell counts, ids) stays below
//! 2⁵³, so the conversion is exact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` as the *interior* of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one complete JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        // flsa-check: allow(unwrap) — the scanned span is ASCII digits/signs
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Validate only a
                    // 4-byte window (the maximum scalar length) — validating
                    // the whole tail here made parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        // The window may clip the *next* scalar; everything
                        // up to the error is still valid and non-empty.
                        Err(e) if e.valid_up_to() > 0 => {
                            // flsa-check: allow(unwrap) — valid_up_to bytes are valid UTF-8
                            std::str::from_utf8(&window[..e.valid_up_to()]).unwrap()
                        }
                        Err(_) => return Err("invalid UTF-8 in string".to_string()),
                    };
                    // flsa-check: allow(unwrap) — `valid` is non-empty
                    let ch = valid.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']', found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2.5, true, null], "b": {"c": "x\ny"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" back\\ tab\t nl\n unicode→";
        let doc = format!("{{\"s\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn large_integers_stay_exact() {
        let n = (1u64 << 52) + 12345;
        let v = parse(&format!("{{\"t\": {n}}}")).unwrap();
        assert_eq!(v.get("t").unwrap().as_u64(), Some(n));
    }
}

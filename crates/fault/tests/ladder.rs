//! Degradation-ladder property: every rung is still exact.
//!
//! For random byte budgets, every configuration on
//! [`fastlsa_core::degradation_ladder`]'s descent — from the budget-fit
//! config down to the Hirschberg-style minimal footprint — must produce
//! the same optimal score as the default configuration and a valid
//! global path. (Paths on different rungs may differ only when scores
//! tie; with the workspace's shared Diag > Up > Left tie-break they are
//! in fact identical, but the property asserted here is the one the
//! ladder relies on: the score never changes.)

use fastlsa_core::{align_with, degradation_ladder, FastLsaConfig, MIN_BASE_CELLS};
use flsa_dp::Metrics;
use flsa_fault::SplitMix64;
use flsa_fullmatrix::needleman_wunsch;
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;

#[test]
fn every_rung_of_random_budget_ladders_scores_optimally() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = homologous_pair("t", &Alphabet::dna(), 240, 0.8, 3).unwrap();
    let oracle = needleman_wunsch(&a, &b, &scheme, &Metrics::new());

    let mut rng = SplitMix64::new(0xfa57_15a0);
    for case in 0..12 {
        let budget = 1024 + rng.below(512 << 10) as usize;
        let cfg = FastLsaConfig::for_memory(budget, a.len(), b.len());
        let ladder = degradation_ladder(&cfg);
        assert_eq!(ladder[0], cfg, "case {case}: ladder must start at cfg");
        let bottom = ladder.last().unwrap();
        assert_eq!(bottom.k, 2);
        assert!(bottom.base_cells <= cfg.base_cells.max(MIN_BASE_CELLS));

        for (i, rung) in ladder.iter().enumerate() {
            let metrics = Metrics::new();
            let r = align_with(&a, &b, &scheme, *rung, &metrics)
                .unwrap_or_else(|e| panic!("case {case} rung {i} ({rung:?}) failed: {e}"));
            assert_eq!(
                r.score, oracle.score,
                "case {case} rung {i} ({rung:?}): wrong score"
            );
            assert!(
                r.path.is_global(a.len(), b.len()),
                "case {case} rung {i}: path is not global"
            );
        }
    }
}

//! The fault-injection property suite (ISSUE 3 acceptance matrix).
//!
//! A matrix of ≥64 seeded [`FaultPlan`]s — covering injected allocation
//! failures, tile panics, cancellation, and byte budgets — runs against
//! a Needleman–Wunsch oracle. Every plan must yield either the
//! byte-identical optimal alignment (when the degradation ladder
//! sufficed) or a structured error matching the injected fault class;
//! never a corrupted path, a deadlock (every run is under a watchdog),
//! or a panic escaping the `align*` API.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use fastlsa_core::{align_opts, AlignError, AlignOptions, FastLsaConfig};
use flsa_dp::{AlignResult, Metrics};
use flsa_fault::{FaultInjector, FaultPlan};
use flsa_fullmatrix::needleman_wunsch;
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::{Alphabet, Sequence};
use flsa_trace::{analyze, render_report, DegradeReason, EventKind, Recorder};

/// Upper bound for one faulted run; far beyond any healthy execution, so
/// hitting it means the drain protocol deadlocked.
const WATCHDOG: Duration = Duration::from_secs(60);

fn test_pair(pair_seed: u64) -> (Sequence, Sequence) {
    homologous_pair("t", &Alphabet::dna(), 280, 0.8, pair_seed).unwrap()
}

/// Runs one plan under a watchdog; panics on timeout (deadlock) or on a
/// panic escaping `align_opts` (the worker thread would die without
/// sending).
fn run_plan(
    plan: FaultPlan,
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    cfg: FastLsaConfig,
    recorder: &Arc<Recorder>,
) -> (Result<AlignResult, AlignError>, Arc<FaultInjector>) {
    let injector = FaultInjector::new(plan);
    let opts = injector.options();
    let (tx, rx) = mpsc::channel();
    let (a, b, scheme) = (a.clone(), b.clone(), scheme.clone());
    let rec = Arc::clone(recorder);
    let worker = thread::spawn(move || {
        let metrics = Metrics::with_recorder(rec);
        let out = align_opts(&a, &b, &scheme, cfg, &opts, &metrics);
        // If a panic escaped align_opts we never get here and the channel
        // closes, which the receiver reports as an escaped panic.
        tx.send(out).ok();
    });
    let outcome = match rx.recv_timeout(WATCHDOG) {
        Ok(out) => out,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("plan {plan:?} did not finish within {WATCHDOG:?}: drain deadlocked")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("plan {plan:?}: a panic escaped align_opts")
        }
    };
    worker
        .join()
        .unwrap_or_else(|_| panic!("plan {plan:?}: worker panicked after reporting"));
    (outcome, injector)
}

fn degrade_events(recorder: &Recorder) -> Vec<(DegradeReason, u32)> {
    recorder
        .snapshot()
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Degrade { reason, rung, .. } => Some((reason, rung)),
            _ => None,
        })
        .collect()
}

#[test]
fn matrix_of_64_seeded_plans_is_safe_and_exact() {
    let scheme = ScoringScheme::dna_default();
    // Three sequence pairs, shared across plans so the oracle is computed
    // once per pair.
    let pairs: Vec<(Sequence, Sequence)> = (0..3).map(test_pair).collect();
    let oracles: Vec<AlignResult> = pairs
        .iter()
        .map(|(a, b)| needleman_wunsch(a, b, &scheme, &Metrics::new()))
        .collect();

    let mut ok_runs = 0usize;
    let mut err_runs = 0usize;
    for seed in 0..64u64 {
        let plan = FaultPlan::from_seed(seed);
        let (a, b) = &pairs[(seed % 3) as usize];
        let oracle = &oracles[(seed % 3) as usize];
        let threads = 2 + (seed % 3) as usize;
        let cfg = FastLsaConfig::new(4, 512).with_threads(threads);
        let recorder = Arc::new(Recorder::new());

        let (outcome, injector) = run_plan(plan, a, b, &scheme, cfg, &recorder);
        let degrades = degrade_events(&recorder);

        match outcome {
            Ok(r) => {
                ok_runs += 1;
                // Byte-identical optimal alignment: same score AND the
                // same canonical path as the full-matrix oracle, no
                // matter what was injected or how far the run degraded.
                assert_eq!(r.score, oracle.score, "seed {seed}: score corrupted");
                assert_eq!(r.path, oracle.path, "seed {seed}: path corrupted");
                // A fault that actually fired on a successful run must
                // have left a visible degradation trail.
                if plan.fail_alloc_at.is_some()
                    && injector.allocs_seen() > plan.fail_alloc_at.unwrap()
                {
                    assert!(
                        !degrades.is_empty(),
                        "seed {seed}: alloc fault fired but no degrade event recorded"
                    );
                }
            }
            Err(e) => {
                err_runs += 1;
                // Structured error matching an injected fault class only.
                match e {
                    AlignError::Cancelled => assert!(
                        plan.cancel_at_step.is_some(),
                        "seed {seed}: spurious cancellation"
                    ),
                    AlignError::AllocFailed { .. } => assert!(
                        plan.may_fail_alloc(),
                        "seed {seed}: spurious allocation failure"
                    ),
                    AlignError::WorkerPanic => assert!(
                        plan.panic_tile.is_some(),
                        "seed {seed}: spurious worker panic"
                    ),
                    other => panic!("seed {seed}: unexpected error class {other:?}"),
                }
            }
        }
    }
    // The matrix must exercise both outcomes, otherwise it proves nothing.
    assert!(ok_runs > 0, "no plan completed successfully");
    assert!(err_runs > 0, "no plan surfaced a structured error");
}

#[test]
fn injected_tile_panic_degrades_to_sequential_and_stays_optimal() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = test_pair(7);
    let oracle = needleman_wunsch(&a, &b, &scheme, &Metrics::new());
    let plan = FaultPlan {
        seed: 0,
        panic_tile: Some((0, 0)),
        ..FaultPlan::default()
    };
    let cfg = FastLsaConfig::new(4, 512).with_threads(4);
    let recorder = Arc::new(Recorder::new());
    let (outcome, _inj) = run_plan(plan, &a, &b, &scheme, cfg, &recorder);
    let r = outcome.expect("tile panic must degrade, not fail the run");
    assert_eq!(r.score, oracle.score);
    assert_eq!(r.path, oracle.path);
    let degrades = degrade_events(&recorder);
    assert!(
        degrades
            .iter()
            .any(|(reason, _)| *reason == DegradeReason::WorkerPanic),
        "expected a WorkerPanic degrade event, got {degrades:?}"
    );
}

#[test]
fn byte_budget_walks_the_ladder_and_report_shows_it() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = test_pair(11);
    let oracle = needleman_wunsch(&a, &b, &scheme, &Metrics::new());
    // Far too small for the requested 256 KiB base buffer, but plenty for
    // the Hirschberg-style bottom rungs: the run must degrade and still
    // produce the exact optimal alignment.
    let opts = AlignOptions {
        budget_bytes: Some(48 << 10),
        ..AlignOptions::default()
    };
    let recorder = Arc::new(Recorder::new());
    let metrics = Metrics::with_recorder(Arc::clone(&recorder));
    let cfg = FastLsaConfig::new(8, 1 << 16);
    let r = align_opts(&a, &b, &scheme, cfg, &opts, &metrics).expect("budget should degrade");
    assert_eq!(r.score, oracle.score);
    assert_eq!(r.path, oracle.path);

    let degrades = degrade_events(&recorder);
    assert!(
        !degrades.is_empty(),
        "a 48 KiB budget must force at least one degradation"
    );
    assert!(degrades
        .iter()
        .all(|(reason, _)| *reason == DegradeReason::AllocFailed));
    // Rungs are recorded in order, starting at 1.
    for (i, (_, rung)) in degrades.iter().enumerate() {
        assert_eq!(*rung as usize, i + 1);
    }

    // `flsa report`'s analysis surfaces what degraded and why.
    let analysis = analyze(&recorder.snapshot());
    assert_eq!(analysis.degradations.len(), degrades.len());
    let report = render_report(&analysis);
    assert!(
        report.contains("degradation ladder"),
        "report must show the degradation section:\n{report}"
    );
    assert!(report.contains("AllocFailed"));
}

#[test]
fn cancellation_token_stops_a_run_cleanly() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = test_pair(13);
    let plan = FaultPlan {
        seed: 0,
        cancel_at_step: Some(5),
        ..FaultPlan::default()
    };
    let cfg = FastLsaConfig::new(4, 512).with_threads(3);
    let recorder = Arc::new(Recorder::new());
    let (outcome, inj) = run_plan(plan, &a, &b, &scheme, cfg, &recorder);
    assert_eq!(outcome.unwrap_err(), AlignError::Cancelled);
    assert!(inj.token().is_cancelled());
}

#[test]
fn deadline_token_cancels_immediately() {
    use fastlsa_core::CancelToken;
    let scheme = ScoringScheme::dna_default();
    let (a, b) = test_pair(17);
    let opts = AlignOptions {
        cancel: Some(CancelToken::with_deadline(Duration::ZERO)),
        ..AlignOptions::default()
    };
    let err = align_opts(
        &a,
        &b,
        &scheme,
        FastLsaConfig::new(4, 512),
        &opts,
        &Metrics::new(),
    )
    .unwrap_err();
    assert_eq!(err, AlignError::Cancelled);
}

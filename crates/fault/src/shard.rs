//! Seeded fault plans for sharded multi-process execution
//! (`flsa-shard`).
//!
//! Same philosophy as [`crate::serve`], one more layer out: a 64-bit
//! seed deterministically describes a *fleet-level* fault scenario —
//! how many worker processes, which of them are faulty, what each
//! faulty worker does (real SIGKILL, hang with the write lock held,
//! CRC-corrupt a result, stall mid-frame), and at which wavefront
//! phase the fault fires. The plan is pure data: `flsa-shard`'s chaos
//! harness (which dev-depends on this crate) renders it into per-slot
//! `--fault` specs for [`ShardFaultPlan::worker_faults`] and asserts
//! that every scenario ends with a result **byte-identical** to the
//! sequential reference or a typed `ShardError` — never a hang, a
//! wrong answer, or a liveness gauge that fails to return to baseline.
//!
//! Seeds rotate through the classes (`seed % 4`), so any 4 consecutive
//! seeds cover kill/hang/corrupt/slow-pipe, and the in-range seeds also
//! sweep the wavefront phase (`Early`/`Mid`/`Late`) and the all-workers-
//! faulty + cursed-respawn combinations that drive quarantine and the
//! in-process fallback rung.

use crate::SplitMix64;

/// Which process-level failure a faulty worker injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultKind {
    /// The worker SIGKILLs itself when the target task arrives — a real
    /// uncatchable kill, detected as pipe EOF.
    WorkerKill,
    /// The worker seizes its write lock and sleeps forever — heartbeats
    /// stop; only staleness detection can reclaim the task.
    WorkerHang,
    /// The worker flips a bit inside the target result's frame body —
    /// framing stays intact, the CRC fails, trust is burned.
    CorruptResult,
    /// The worker stalls mid-frame on every result write — a half
    /// -written frame parks the coordinator's reader; short stalls must
    /// be absorbed, long ones must trip the task deadline.
    SlowPipe,
}

impl ShardFaultKind {
    /// Stable name for test labels.
    pub fn name(self) -> &'static str {
        match self {
            ShardFaultKind::WorkerKill => "worker-kill",
            ShardFaultKind::WorkerHang => "worker-hang",
            ShardFaultKind::CorruptResult => "corrupt-result",
            ShardFaultKind::SlowPipe => "slow-pipe",
        }
    }
}

/// When in a worker's task stream the fault fires (per-worker task
/// ordinal, which tracks the wavefront: a worker's first task is early
/// in the frontier, later ordinals land mid- and late-wavefront or in
/// the trace chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Ordinal 0: the worker's very first task.
    Early,
    /// Ordinals 1–3: mid-wavefront.
    Mid,
    /// Ordinals 4–7: late wavefront / trace chain.
    Late,
}

impl FaultPhase {
    /// Stable name for test labels.
    pub fn name(self) -> &'static str {
        match self {
            FaultPhase::Early => "early",
            FaultPhase::Mid => "mid",
            FaultPhase::Late => "late",
        }
    }
}

/// One deterministic fleet-chaos scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFaultPlan {
    /// The seed the plan came from (diagnostics).
    pub seed: u64,
    /// Fault class (`seed % 4`).
    pub kind: ShardFaultKind,
    /// Wavefront phase the fault targets.
    pub phase: FaultPhase,
    /// Worker slots the scenario runs with.
    pub shards: usize,
    /// How many leading slots are faulty (`1..=shards`; all-faulty
    /// scenarios exercise quarantine and the in-process fallback).
    pub faulty: usize,
    /// Per-worker task ordinal the fault fires at.
    pub at_task: u64,
    /// `SlowPipe`: mid-frame stall per result, milliseconds.
    pub slow_ms: u64,
    /// Respawned workers inherit the slot's fault spec — a cursed host,
    /// the ladder's path to quarantine and the fallback rung.
    pub refault_respawns: bool,
}

impl ShardFaultPlan {
    /// Derives a scenario from `seed`; consecutive seeds rotate through
    /// every fault class.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x51a2_d51a_2d51_a2d5);
        let kind = match seed % 4 {
            0 => ShardFaultKind::WorkerKill,
            1 => ShardFaultKind::WorkerHang,
            2 => ShardFaultKind::CorruptResult,
            _ => ShardFaultKind::SlowPipe,
        };
        let phase = match rng.below(3) {
            0 => FaultPhase::Early,
            1 => FaultPhase::Mid,
            _ => FaultPhase::Late,
        };
        let at_task = match phase {
            FaultPhase::Early => 0,
            FaultPhase::Mid => 1 + rng.below(3),
            FaultPhase::Late => 4 + rng.below(4),
        };
        let shards = 2 + rng.below(3) as usize;
        // Mostly one bad apple; sometimes the whole fleet, which (with
        // cursed respawns) is the only road to total quarantine.
        let faulty = if rng.below(4) == 0 {
            shards
        } else {
            1 + rng.below(shards as u64) as usize
        };
        let slow_ms = if rng.below(3) == 0 {
            // Past any sane task deadline: must trip it, not hang.
            600 + rng.below(200)
        } else {
            15 + rng.below(60)
        };
        let refault_respawns = rng.below(3) == 0;
        ShardFaultPlan {
            seed,
            kind,
            phase,
            shards,
            faulty,
            at_task,
            slow_ms,
            refault_respawns,
        }
    }

    /// Renders the per-slot `--fault` specs (the grammar of
    /// `flsa_shard::WorkerFault::parse`): the leading `faulty` slots get
    /// the fault, the rest run clean.
    pub fn worker_faults(&self) -> Vec<String> {
        let spec = match self.kind {
            ShardFaultKind::WorkerKill => format!("kill:{}", self.at_task),
            ShardFaultKind::WorkerHang => format!("hang:{}", self.at_task),
            ShardFaultKind::CorruptResult => format!("corrupt:{}", self.at_task),
            ShardFaultKind::SlowPipe => format!("slow:{}", self.slow_ms),
        };
        (0..self.shards)
            .map(|i| {
                if i < self.faulty {
                    spec.clone()
                } else {
                    String::new()
                }
            })
            .collect()
    }

    /// Stable label for diagnostics.
    pub fn label(&self) -> String {
        format!(
            "seed={} {}@{} shards={} faulty={}{}",
            self.seed,
            self.kind.name(),
            self.phase.name(),
            self.shards,
            self.faulty,
            if self.refault_respawns { " cursed" } else { "" }
        )
    }
}

/// The chaos matrix: ≥ 24 seeded plans covering every fault class at
/// every wavefront phase, single-slot and whole-fleet faults, clean and
/// cursed respawns.
pub fn chaos_matrix() -> Vec<ShardFaultPlan> {
    (0..28).map(ShardFaultPlan::from_seed).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_reproducible() {
        for seed in 0..64 {
            assert_eq!(
                ShardFaultPlan::from_seed(seed),
                ShardFaultPlan::from_seed(seed)
            );
        }
    }

    #[test]
    fn matrix_is_big_and_covers_every_class_and_phase() {
        let plans = chaos_matrix();
        assert!(plans.len() >= 24, "only {} plans", plans.len());
        for kind in [
            ShardFaultKind::WorkerKill,
            ShardFaultKind::WorkerHang,
            ShardFaultKind::CorruptResult,
            ShardFaultKind::SlowPipe,
        ] {
            assert!(
                plans.iter().any(|p| p.kind == kind),
                "matrix missing {kind:?}"
            );
        }
        for phase in [FaultPhase::Early, FaultPhase::Mid, FaultPhase::Late] {
            assert!(
                plans.iter().any(|p| p.phase == phase),
                "matrix missing {phase:?}"
            );
        }
        assert!(
            plans.iter().any(|p| p.faulty == p.shards),
            "matrix has no whole-fleet fault"
        );
        assert!(
            plans.iter().any(|p| p.refault_respawns),
            "matrix has no cursed respawn"
        );
    }

    #[test]
    fn rendered_specs_are_in_grammar() {
        for plan in chaos_matrix() {
            let specs = plan.worker_faults();
            assert_eq!(specs.len(), plan.shards);
            assert!(specs[0].contains(':'), "slot 0 must be faulty");
            for spec in &specs {
                for part in spec.split(',').filter(|p| !p.is_empty()) {
                    let (name, value) = part.split_once(':').expect("name:value");
                    assert!(["kill", "hang", "corrupt", "slow"].contains(&name));
                    value.parse::<u64>().expect("numeric value");
                }
            }
        }
    }
}

//! Seeded fault plans for the alignment service (`flsa-serve`).
//!
//! Same philosophy as [`crate::FaultPlan`], one layer up: a 64-bit seed
//! deterministically describes a *server-level* fault scenario — which
//! job's worker panics and how often, which job stalls and for how
//! long, which deadlines are too tight to meet, how hard the admission
//! budget is squeezed. The plan is pure data: `flsa-serve` (whose test
//! suite depends on this crate, not the other way around) adapts it to
//! its `JobHooks` trait, and the chaos harness asserts that every
//! scenario terminates with either a result byte-identical to the
//! sequential reference or a typed error matching the fault class —
//! never a hang, a wrong answer, or a leaked admission charge.
//!
//! Seeds rotate through the classes (`seed % 4`), so any 4 consecutive
//! seeds cover panic/slow/deadline/budget; the mid-batch SIGKILL class
//! lives in [`crate::crash`] and is exercised by the CLI's
//! `serve_integration` tests, which kill and restart a real daemon.

use crate::SplitMix64;

/// Which server-level failure a plan injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// The target job's first `panic_attempts` run attempts panic; the
    /// server's bounded retry either outlasts the fault (result must be
    /// byte-identical to the reference) or surfaces `WorkerPanic`.
    WorkerPanic,
    /// The target job stalls `slow_ms` at the start of every attempt —
    /// long enough to matter, with a deadline tight enough that either
    /// outcome (completion or `DeadlineExpired`) must be typed.
    SlowJob,
    /// Every job carries a deadline too tight for the work: each must
    /// end in `DeadlineExpired` (or finish legitimately under it).
    DeadlineExpiry,
    /// The admission budget is squeezed so jobs serialize through the
    /// governor; everything must still complete correctly and the
    /// governor must return to baseline.
    BudgetSqueeze,
}

impl ServeFaultKind {
    /// Stable name for test labels.
    pub fn name(self) -> &'static str {
        match self {
            ServeFaultKind::WorkerPanic => "worker-panic",
            ServeFaultKind::SlowJob => "slow-job",
            ServeFaultKind::DeadlineExpiry => "deadline-expiry",
            ServeFaultKind::BudgetSqueeze => "budget-squeeze",
        }
    }
}

/// One deterministic server-chaos scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFaultPlan {
    /// The seed the plan came from (diagnostics).
    pub seed: u64,
    /// Fault class (`seed % 4`).
    pub kind: ServeFaultKind,
    /// Jobs the scenario submits.
    pub jobs: u64,
    /// Which submitted job (0-based) the fault targets.
    pub target_job: u64,
    /// `WorkerPanic`: how many leading attempts panic. Below the
    /// server's retry bound the job must still succeed; above it the
    /// typed `WorkerPanic` failure must surface.
    pub panic_attempts: u32,
    /// `SlowJob`: stall per attempt, milliseconds.
    pub slow_ms: u64,
    /// Deadline to put on affected requests, milliseconds (0 = none).
    pub deadline_ms: u32,
    /// `BudgetSqueeze`: admission budget, bytes (None = unbudgeted).
    pub budget_bytes: Option<usize>,
}

impl ServeFaultPlan {
    /// Derives a scenario from `seed`; consecutive seeds rotate through
    /// every fault class.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x5e7e_5e7e_5e7e_5e7e);
        let jobs = 4 + rng.below(5);
        let target_job = rng.below(jobs);
        let kind = match seed % 4 {
            0 => ServeFaultKind::WorkerPanic,
            1 => ServeFaultKind::SlowJob,
            2 => ServeFaultKind::DeadlineExpiry,
            _ => ServeFaultKind::BudgetSqueeze,
        };
        let mut plan = ServeFaultPlan {
            seed,
            kind,
            jobs,
            target_job,
            panic_attempts: 0,
            slow_ms: 0,
            deadline_ms: 0,
            budget_bytes: None,
        };
        match kind {
            ServeFaultKind::WorkerPanic => {
                // 1..=4: straddles the default retry bound of 2 so both
                // recovered-by-retry and typed-failure paths are hit.
                plan.panic_attempts = 1 + rng.below(4) as u32;
            }
            ServeFaultKind::SlowJob => {
                plan.slow_ms = 40 + rng.below(120);
                // Sometimes generous, sometimes hopeless.
                plan.deadline_ms = 20 + rng.below(400) as u32;
            }
            ServeFaultKind::DeadlineExpiry => {
                // Far below any realistic run time for the chaos inputs.
                plan.deadline_ms = 1 + rng.below(4) as u32;
                plan.slow_ms = 20 + rng.below(40);
            }
            ServeFaultKind::BudgetSqueeze => {
                // Roughly one mid-sized job's footprint: forces
                // serialization through admission without starving the
                // smallest rung.
                plan.budget_bytes = Some((256 << 10) + rng.below(512 << 10) as usize);
            }
        }
        plan
    }

    /// True when the plan's target job may legitimately fail with a
    /// typed error (rather than having to produce the reference
    /// result).
    pub fn may_fail(&self) -> bool {
        matches!(
            self.kind,
            ServeFaultKind::WorkerPanic | ServeFaultKind::SlowJob | ServeFaultKind::DeadlineExpiry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_reproducible() {
        for seed in 0..64 {
            assert_eq!(
                ServeFaultPlan::from_seed(seed),
                ServeFaultPlan::from_seed(seed)
            );
        }
    }

    #[test]
    fn four_consecutive_seeds_cover_every_class() {
        for base in [0u64, 8, 100] {
            let kinds: Vec<ServeFaultKind> = (base..base + 4)
                .map(|s| ServeFaultPlan::from_seed(s).kind)
                .collect();
            for want in [
                ServeFaultKind::WorkerPanic,
                ServeFaultKind::SlowJob,
                ServeFaultKind::DeadlineExpiry,
                ServeFaultKind::BudgetSqueeze,
            ] {
                assert!(kinds.contains(&want), "base {base}: missing {want:?}");
            }
        }
    }

    #[test]
    fn plan_parameters_are_in_range() {
        for seed in 0..32 {
            let p = ServeFaultPlan::from_seed(seed);
            assert!(p.jobs >= 4 && p.jobs < 9);
            assert!(p.target_job < p.jobs);
            match p.kind {
                ServeFaultKind::WorkerPanic => {
                    assert!((1..=4).contains(&p.panic_attempts))
                }
                ServeFaultKind::SlowJob => {
                    assert!(p.slow_ms >= 40 && p.deadline_ms >= 20)
                }
                ServeFaultKind::DeadlineExpiry => {
                    assert!((1..=4).contains(&p.deadline_ms))
                }
                ServeFaultKind::BudgetSqueeze => {
                    assert!(p.budget_bytes.is_some())
                }
            }
        }
    }
}

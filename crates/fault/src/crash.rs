//! Kill–restore harness: SIGKILL a checkpointed `flsa align` child
//! process at seeded points, resume from the surviving snapshot, and
//! keep going until the run completes (DESIGN.md §10).
//!
//! The harness knows nothing about the engine's internals — it drives
//! the real binary through its public surface (`align --checkpoint`,
//! `resume`, the exit-code taxonomy) exactly the way an operator's
//! retry loop would, which is what makes the byte-identical-output
//! assertion meaningful end to end: process death at *any* instant must
//! be invisible in the final output.

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Duration;

use crate::SplitMix64;

/// Seeded kill schedule: the Nth (re)start of the job is killed after
/// `delays_ms[N]` milliseconds; once the schedule is exhausted the job
/// runs undisturbed to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillPlan {
    pub seed: u64,
    pub delays_ms: Vec<u64>,
}

impl KillPlan {
    /// Derives a plan of `kills` kill points with delays in
    /// `0..max_delay_ms` from `seed`.
    pub fn from_seed(seed: u64, kills: usize, max_delay_ms: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        KillPlan {
            seed,
            delays_ms: (0..kills).map(|_| rng.below(max_delay_ms.max(1))).collect(),
        }
    }
}

/// One checkpointed job to be crashed and restored: the `flsa` binary,
/// its alignment arguments, and where the snapshot lives.
pub struct CrashJob<'a> {
    /// Path to the `flsa` binary (tests use `env!("CARGO_BIN_EXE_flsa")`).
    pub flsa_bin: &'a Path,
    /// Arguments after `align`, excluding `--checkpoint` (the harness
    /// appends it): matrix/k/base-cells/threads flags plus the FASTA
    /// path(s).
    pub align_args: &'a [String],
    /// Snapshot path handed to `--checkpoint` and `resume`.
    pub ckpt: &'a Path,
    /// Snapshot cadence in completed grid blocks.
    pub every_blocks: u64,
}

/// What happened across the kill–restore loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashOutcome {
    /// SIGKILLs actually delivered to a still-running child.
    pub kills_delivered: u32,
    /// Restarts that found a snapshot and went through `flsa resume`.
    pub resumes: u32,
    /// Restarts that found no snapshot yet and re-ran `flsa align`.
    pub fresh_starts: u32,
    /// Stdout of the run that finally completed.
    pub stdout: Vec<u8>,
}

impl<'a> CrashJob<'a> {
    /// The uninterrupted reference: one clean `flsa align` (no
    /// checkpointing) whose stdout every crashed-and-restored run must
    /// reproduce byte for byte.
    pub fn reference_stdout(&self) -> Result<Vec<u8>, String> {
        let out = Command::new(self.flsa_bin)
            .arg("align")
            .args(self.align_args)
            .stdin(Stdio::null())
            .output()
            .map_err(|e| format!("spawn reference run: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "reference run failed ({:?}): {}",
                out.status.code(),
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        Ok(out.stdout)
    }

    /// Runs the kill–restore loop under `plan`: start the job, SIGKILL
    /// it after the next seeded delay, restart it (`resume` when a
    /// snapshot survived, `align` from scratch otherwise), and repeat
    /// until either the schedule is exhausted and the job completes, or
    /// a restart fails in a way the taxonomy says must never happen
    /// (exit 3: the snapshot a kill left behind was corrupt).
    pub fn run(&self, plan: &KillPlan) -> Result<CrashOutcome, String> {
        let mut outcome = CrashOutcome {
            kills_delivered: 0,
            resumes: 0,
            fresh_starts: 0,
            stdout: Vec::new(),
        };
        let every = self.every_blocks.to_string();
        let mut attempt = 0usize;
        loop {
            let resuming = self.ckpt.exists();
            let mut cmd = Command::new(self.flsa_bin);
            if resuming {
                outcome.resumes += 1;
                cmd.arg("resume").arg(self.ckpt);
            } else {
                outcome.fresh_starts += 1;
                cmd.arg("align")
                    .args(self.align_args)
                    .arg("--checkpoint")
                    .arg(self.ckpt)
                    .arg("--checkpoint-every-blocks")
                    .arg(&every);
            }
            let mut child = cmd
                .stdin(Stdio::null())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .map_err(|e| format!("spawn attempt {attempt}: {e}"))?;

            if let Some(&delay) = plan.delays_ms.get(attempt) {
                std::thread::sleep(Duration::from_millis(delay));
                // kill() is SIGKILL: no signal handler can run, so this
                // models true process death at an arbitrary instruction.
                // If the child already exited the kill is a no-op and
                // the status below tells us which case we hit.
                let still_running = matches!(child.try_wait(), Ok(None));
                child.kill().ok();
                if still_running {
                    outcome.kills_delivered += 1;
                }
            }
            attempt += 1;
            let out = child
                .wait_with_output()
                .map_err(|e| format!("wait attempt {attempt}: {e}"))?;
            if out.status.success() {
                outcome.stdout = out.stdout;
                return Ok(outcome);
            }
            match out.status.code() {
                // Killed by signal (no code) — restart.
                None => continue,
                // A kill can race run completion and cleanup; exit 1
                // (e.g. snapshot write hit the dying process) also just
                // means "retry".
                Some(1) => continue,
                Some(code) => {
                    return Err(format!(
                        "attempt {attempt} ({}) exited {code}, which the kill-restore \
                         protocol never produces: {}",
                        if resuming { "resume" } else { "align" },
                        String::from_utf8_lossy(&out.stderr)
                    ));
                }
            }
        }
    }
}

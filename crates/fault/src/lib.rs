//! Deterministic fault injection for the FastLSA engine (DESIGN.md §9).
//!
//! The robustness claims of the fallible `align*` API — no escaped panic,
//! no deadlock, no corrupted path, graceful degradation under memory
//! pressure — are only as good as the failures they are tested against.
//! This crate turns a 64-bit seed into a [`FaultPlan`] (which allocation
//! to refuse, which wavefront tile panics, at which recursion step the
//! run is cancelled, what byte budget applies) and a [`FaultInjector`]
//! that wires the plan into [`fastlsa_core::AlignOptions`] via the
//! [`FaultHooks`] trait.
//!
//! The property suite in `tests/` runs a matrix of seeded plans and
//! asserts that every run either returns the byte-identical optimal
//! alignment (when the degradation ladder sufficed) or a structured
//! [`fastlsa_core::AlignError`] matching the injected fault class —
//! never a corrupted path, a deadlock, or a panic that crosses the API
//! boundary.
//!
//! The [`crash`] module extends the same philosophy past the process
//! boundary: it SIGKILLs a checkpointed `flsa align` child at seeded
//! points and drives `flsa resume` until the job completes, asserting
//! the final output is byte-identical to an uninterrupted run.
#![forbid(unsafe_code)]

pub mod crash;
pub mod serve;
pub mod shard;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use fastlsa_core::{AlignOptions, CancelToken, FaultHooks};

/// `splitmix64`: the standard seed-expansion permutation. Deterministic,
/// platform-independent, and good enough to decorrelate plan fields.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// One deterministic fault scenario, derived from a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The seed the plan was derived from (kept for diagnostics).
    pub seed: u64,
    /// Refuse the Nth governed allocation (0-based), exactly once — the
    /// degraded retry's allocations then succeed, modelling a transient
    /// memory spike.
    pub fail_alloc_at: Option<u64>,
    /// Panic inside the wavefront tile with these tile coordinates,
    /// exactly once (a tile grid that never schedules the coordinates
    /// simply never fires).
    pub panic_tile: Option<(usize, usize)>,
    /// Cancel the run's token at the Nth recursion step (0-based).
    pub cancel_at_step: Option<u64>,
    /// Byte budget handed to the memory governor.
    pub budget_bytes: Option<usize>,
}

impl FaultPlan {
    /// Derives a plan from `seed`. Consecutive seeds rotate through the
    /// fault classes (`seed % 4`: alloc failure, tile panic,
    /// cancellation, byte budget + a second fault), so any 4 consecutive
    /// seeds cover every class.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        match seed % 4 {
            0 => plan.fail_alloc_at = Some(rng.below(48)),
            1 => {
                plan.panic_tile = Some((rng.below(4) as usize, rng.below(4) as usize));
            }
            2 => plan.cancel_at_step = Some(rng.below(256)),
            _ => {
                // Squeeze the budget, sometimes stacking a second fault on
                // top (faults rarely arrive alone).
                plan.budget_bytes = Some((24 << 10) + rng.below(96 << 10) as usize);
                match rng.below(4) {
                    0 => plan.fail_alloc_at = Some(rng.below(48)),
                    1 => {
                        plan.panic_tile = Some((rng.below(4) as usize, rng.below(4) as usize));
                    }
                    2 => plan.cancel_at_step = Some(rng.below(256)),
                    _ => {}
                }
            }
        }
        plan
    }

    /// True when the plan can produce `AlignError::AllocFailed`.
    pub fn may_fail_alloc(&self) -> bool {
        self.fail_alloc_at.is_some() || self.budget_bytes.is_some()
    }
}

/// Implements [`FaultHooks`] for a [`FaultPlan`]: counts governed
/// allocations, fires the planned faults exactly once, and cancels the
/// shared [`CancelToken`] at the planned recursion step.
pub struct FaultInjector {
    plan: FaultPlan,
    token: CancelToken,
    allocs: AtomicU64,
    alloc_fired: AtomicBool,
    panic_fired: AtomicBool,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultInjector {
            plan,
            token: CancelToken::new(),
            allocs: AtomicU64::new(0),
            alloc_fired: AtomicBool::new(false),
            panic_fired: AtomicBool::new(false),
        })
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The token the injector cancels at `cancel_at_step`.
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Governed allocations observed so far (across ladder retries — the
    /// injector is shared, so "the Nth allocation" is global to the run).
    pub fn allocs_seen(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed) // Relaxed: monotonic counter read after the run
    }

    /// Align options wiring this injector's plan into a run.
    pub fn options(self: &Arc<Self>) -> AlignOptions {
        AlignOptions {
            budget_bytes: self.plan.budget_bytes,
            cancel: Some(self.token.clone()),
            hooks: Some(Arc::clone(self) as Arc<dyn FaultHooks>),
            checkpoint: None,
            kernel: None,
            registry: None,
        }
    }
}

impl FaultHooks for FaultInjector {
    fn on_alloc(&self, _bytes: usize) -> bool {
        let Some(n) = self.plan.fail_alloc_at else {
            return false;
        };
        // Relaxed: the counter and the one-shot flag are each internally
        // consistent; no other memory is published through them.
        let i = self.allocs.fetch_add(1, Ordering::Relaxed);
        i == n && !self.alloc_fired.swap(true, Ordering::Relaxed)
    }

    fn on_tile(&self, r: usize, c: usize) {
        // Relaxed: the swap only arbitrates the one-shot; the panic itself
        // is contained and reported through the job protocol.
        if self.plan.panic_tile == Some((r, c)) && !self.panic_fired.swap(true, Ordering::Relaxed) {
            // flsa-check: allow(panic) — this panic IS the injected fault;
            // the wavefront layer must contain it.
            panic!("injected tile fault at ({r}, {c})");
        }
    }

    fn on_step(&self, step: u64) {
        if self.plan.cancel_at_step == Some(step) {
            self.token.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let a: Vec<u64> = {
            let mut s = SplitMix64::new(42);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = SplitMix64::new(42);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b);
        // All distinct (splitmix64 is a permutation of the counter).
        for (i, x) in a.iter().enumerate() {
            for y in &a[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn four_consecutive_seeds_cover_every_fault_class() {
        for base in [0u64, 40, 1000] {
            let plans: Vec<FaultPlan> = (base..base + 4).map(FaultPlan::from_seed).collect();
            assert!(plans.iter().any(|p| p.fail_alloc_at.is_some()));
            assert!(plans.iter().any(|p| p.panic_tile.is_some()));
            assert!(plans.iter().any(|p| p.cancel_at_step.is_some()));
            assert!(plans.iter().any(|p| p.budget_bytes.is_some()));
        }
    }

    #[test]
    fn plans_are_reproducible() {
        for seed in 0..64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
    }

    #[test]
    fn injector_fires_alloc_fault_exactly_once() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            fail_alloc_at: Some(2),
            ..FaultPlan::default()
        });
        let fired: Vec<bool> = (0..6).map(|_| inj.on_alloc(128)).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(inj.allocs_seen(), 6);
    }

    #[test]
    fn injector_cancels_at_the_planned_step() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            cancel_at_step: Some(3),
            ..FaultPlan::default()
        });
        for step in 0..3 {
            inj.on_step(step);
            assert!(!inj.token().is_cancelled(), "step {step}");
        }
        inj.on_step(3);
        assert!(inj.token().is_cancelled());
    }
}

//! Shared infrastructure for the `paper` experiment harness and the
//! Criterion benchmarks: workload materialization, wall-clock timing, and
//! plain-text table rendering.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub mod experiments;
pub mod kernels;
pub mod metrics;
pub mod serve;
pub mod shard;

/// Times one closure invocation.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Formats a duration as milliseconds with 1 decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// A plain-text table with right-aligned numeric-looking cells.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for EXPERIMENTS.md appendices).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn time_measures_something() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}

//! The `flsa bench kernels` sweep: DP kernel throughput per backend.
//!
//! Times [`Kernel::fill_last_row`] — the row-rolling fill at the heart of
//! both FastLSA's grid fill and Hirschberg's passes — on square global
//! problems, for every backend the CPU supports, and reports cells/sec
//! and ns/cell. The sweep also measures the inter-sequence
//! [`BatchKernel`]: batches of small independent pairs aligned
//! one-per-lane versus the same pairs aligned one at a time, reported as
//! pairs/sec. The JSON report (`BENCH_kernels.json`) records the detected
//! CPU features so numbers are comparable across machines, and `--gate F`
//! turns the sweep into a regression gate: it fails unless the best
//! vectorized backend reaches `F`× the scalar throughput on the largest
//! problem, the widest backend is not slower than the next one down, and
//! the batch kernel beats the single-pair path on small pairs.

use std::time::Instant;

use flsa_dp::{detected_cpu_features, BatchJob, BatchKernel, Boundary, Kernel, KernelBackend, Metrics};
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;

/// Square pair sizes the batch section measures (small jobs — the
/// regime the inter-sequence layout exists for).
pub const BATCH_LENS: [usize; 3] = [64, 256, 1024];

/// Independent pairs per batch measurement (≥ 2 full vector chunks).
pub const BATCH_PAIRS: usize = 32;

/// One (backend, problem size) measurement.
#[derive(Debug, Clone)]
pub struct KernelBenchCase {
    /// The backend measured.
    pub backend: KernelBackend,
    /// Square problem side (both sequences have this many residues).
    pub len: usize,
    /// DP cells per fill (`len²`).
    pub cells: u64,
    /// Best wall-clock time over the measured repetitions.
    pub best_ns: u64,
}

impl KernelBenchCase {
    /// Throughput in DP cells per second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.best_ns == 0 {
            0.0
        } else {
            self.cells as f64 * 1e9 / self.best_ns as f64
        }
    }

    /// Nanoseconds per DP cell.
    pub fn ns_per_cell(&self) -> f64 {
        self.best_ns as f64 / self.cells as f64
    }
}

/// One batch-vs-single measurement: `pairs` independent `len × len`
/// alignments, full result (score + traceback) both ways.
#[derive(Debug, Clone)]
pub struct BatchBenchCase {
    /// Square pair side.
    pub len: usize,
    /// Pairs per measurement.
    pub pairs: usize,
    /// Best wall-clock for one `align_batch` over all pairs.
    pub batched_ns: u64,
    /// Best wall-clock for aligning the same pairs one at a time.
    pub single_ns: u64,
}

impl BatchBenchCase {
    /// Pairs aligned per second on the batched path.
    pub fn pairs_per_sec(&self) -> f64 {
        if self.batched_ns == 0 {
            0.0
        } else {
            self.pairs as f64 * 1e9 / self.batched_ns as f64
        }
    }

    /// Batched throughput over single-pair throughput.
    pub fn speedup(&self) -> f64 {
        if self.batched_ns == 0 {
            0.0
        } else {
            self.single_ns as f64 / self.batched_ns as f64
        }
    }
}

/// A full sweep: every available backend × every requested length.
#[derive(Debug, Clone)]
pub struct KernelBenchReport {
    /// All measurements, grouped by length then backend.
    pub cases: Vec<KernelBenchCase>,
    /// Batch-kernel measurements (one per [`BATCH_LENS`] entry).
    pub batch: Vec<BatchBenchCase>,
    /// The striped backend the batch measurements ran on.
    pub batch_backend: &'static str,
    /// SIMD features the CPU reports (from `is_x86_feature_detected!`).
    pub cpu_features: Vec<&'static str>,
    /// The backend [`KernelBackend::detect_best`] would pick.
    pub best_backend: KernelBackend,
}

impl KernelBenchReport {
    /// Speedup of the best vectorized backend over scalar at the largest
    /// measured length (`None` when only scalar ran).
    pub fn best_speedup(&self) -> Option<f64> {
        let largest = self.cases.iter().map(|c| c.len).max()?;
        let at = |b: KernelBackend| {
            self.cases
                .iter()
                .find(|c| c.len == largest && c.backend == b)
                .map(KernelBenchCase::cells_per_sec)
        };
        let scalar = at(KernelBackend::Scalar)?;
        let best = self
            .cases
            .iter()
            .filter(|c| c.len == largest && c.backend != KernelBackend::Scalar)
            .map(KernelBenchCase::cells_per_sec)
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.max(v))))?;
        (scalar > 0.0).then(|| best / scalar)
    }

    /// Throughput of the widest vector backend over the next-widest at
    /// the largest length — the dispatch-order sanity ratio
    /// ([`KernelBackend::detect_best`] must not pick a slower backend).
    /// `None` when fewer than two vector backends ran.
    pub fn widest_vs_next(&self) -> Option<f64> {
        let largest = self.cases.iter().map(|c| c.len).max()?;
        // `run` pushes backends in `KernelBackend::available()` order,
        // which is narrowest → widest.
        let vec_cases: Vec<&KernelBenchCase> = self
            .cases
            .iter()
            .filter(|c| c.len == largest && c.backend != KernelBackend::Scalar)
            .collect();
        let [.., next, widest] = vec_cases.as_slice() else {
            return None;
        };
        let next = next.cells_per_sec();
        (next > 0.0).then(|| widest.cells_per_sec() / next)
    }

    /// Best batched-vs-single speedup across the batch measurements.
    pub fn batch_best_speedup(&self) -> Option<f64> {
        self.batch
            .iter()
            .map(BatchBenchCase::speedup)
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.max(v))))
    }

    /// The JSON body of `BENCH_kernels.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"bench\": \"kernels\",\n  \"cpu_features\": [");
        for (i, f) in self.cpu_features.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{f}\""));
        }
        out.push_str(&format!(
            "],\n  \"best_backend\": \"{}\",\n",
            self.best_backend.name()
        ));
        if let Some(s) = self.best_speedup() {
            out.push_str(&format!("  \"best_speedup_vs_scalar\": {s:.3},\n"));
        }
        if let Some(r) = self.widest_vs_next() {
            out.push_str(&format!("  \"widest_vs_next_vector\": {r:.3},\n"));
        }
        out.push_str(&format!(
            "  \"batch_backend\": \"{}\",\n  \"batch\": [\n",
            self.batch_backend
        ));
        for (i, c) in self.batch.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"len\": {}, \"pairs\": {}, \"batched_ns\": {}, \"single_ns\": {}, \
                 \"pairs_per_sec\": {:.1}, \"speedup_vs_single\": {:.3}}}{}\n",
                c.len,
                c.pairs,
                c.batched_ns,
                c.single_ns,
                c.pairs_per_sec(),
                c.speedup(),
                if i + 1 < self.batch.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"results\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"backend\": \"{}\", \"len\": {}, \"cells\": {}, \
                 \"best_ns\": {}, \"cells_per_sec\": {:.0}, \"ns_per_cell\": {:.4}}}{}\n",
                c.backend.name(),
                c.len,
                c.cells,
                c.best_ns,
                c.cells_per_sec(),
                c.ns_per_cell(),
                if i + 1 < self.cases.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A plain-text table of the sweep, with per-length speedup columns.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(&[
            "len",
            "backend",
            "best ms",
            "Mcells/s",
            "ns/cell",
            "vs scalar",
        ]);
        let mut lens: Vec<usize> = self.cases.iter().map(|c| c.len).collect();
        lens.dedup();
        for len in lens {
            let scalar = self
                .cases
                .iter()
                .find(|c| c.len == len && c.backend == KernelBackend::Scalar)
                .map(KernelBenchCase::cells_per_sec);
            for c in self.cases.iter().filter(|c| c.len == len) {
                let speedup = match scalar {
                    Some(s) if s > 0.0 => format!("{:.2}x", c.cells_per_sec() / s),
                    _ => "-".to_string(),
                };
                t.row(&[
                    format!("{len}"),
                    c.backend.name().to_string(),
                    format!("{:.1}", c.best_ns as f64 / 1e6),
                    format!("{:.0}", c.cells_per_sec() / 1e6),
                    format!("{:.3}", c.ns_per_cell()),
                    speedup,
                ]);
            }
        }
        let mut out = t.render();
        if !self.batch.is_empty() {
            let mut bt = crate::Table::new(&[
                "batch len",
                "pairs",
                "batched ms",
                "single ms",
                "pairs/s",
                "vs single",
            ]);
            for c in &self.batch {
                bt.row(&[
                    format!("{}", c.len),
                    format!("{}", c.pairs),
                    format!("{:.1}", c.batched_ns as f64 / 1e6),
                    format!("{:.1}", c.single_ns as f64 / 1e6),
                    format!("{:.0}", c.pairs_per_sec()),
                    format!("{:.2}x", c.speedup()),
                ]);
            }
            out.push_str(&format!("batch kernel ({}):\n", self.batch_backend));
            out.push_str(&bt.render());
        }
        out
    }
}

/// Runs the standard sweep: every CPU-supported backend on square
/// `lens`×`lens` DNA problems plus the batch section at [`BATCH_LENS`],
/// one warmup fill then the best of `reps` timed fills.
pub fn run(lens: &[usize], reps: usize) -> KernelBenchReport {
    run_with(lens, &BATCH_LENS, BATCH_PAIRS, reps)
}

/// [`run`] with explicit batch-section sizes (tests use small ones).
pub fn run_with(
    lens: &[usize],
    batch_lens: &[usize],
    batch_pairs: usize,
    reps: usize,
) -> KernelBenchReport {
    let scheme = ScoringScheme::dna_default();
    let gap = scheme.gap().linear_penalty();
    let metrics = Metrics::new();
    let mut cases = Vec::new();
    for &len in lens {
        let (sa, sb) = homologous_pair("bench", &Alphabet::dna(), len, 0.8, 0xbc)
            .expect("bench sequence generation");
        let bound = Boundary::global(sa.len(), sb.len(), gap);
        let mut out = vec![0i32; sb.len() + 1];
        for backend in KernelBackend::available() {
            let kernel = Kernel::try_new(backend).expect("available backend");
            let mut best_ns = u64::MAX;
            // One untimed pass warms caches and populates the arena pool.
            for rep in 0..=reps.max(1) {
                let start = Instant::now();
                kernel.fill_last_row(
                    sa.codes(),
                    sb.codes(),
                    &bound.top,
                    &bound.left,
                    &scheme,
                    &mut out,
                    &metrics,
                );
                let ns = start.elapsed().as_nanos() as u64;
                if rep > 0 {
                    best_ns = best_ns.min(ns);
                }
            }
            cases.push(KernelBenchCase {
                backend,
                len,
                cells: (sa.len() * sb.len()) as u64,
                best_ns,
            });
        }
    }
    let batch_kernel = BatchKernel::new(Kernel::auto());
    let batch = batch_lens
        .iter()
        .map(|&len| bench_batch(&batch_kernel, &scheme, len, batch_pairs, reps))
        .collect();
    KernelBenchReport {
        cases,
        batch,
        batch_backend: batch_kernel.backend_name(),
        cpu_features: detected_cpu_features(),
        best_backend: KernelBackend::detect_best(),
    }
}

/// One batch-vs-single measurement: `pairs` homologous `len × len` DNA
/// pairs, full alignment (score + path) through [`BatchKernel`] both as
/// one batch and as single-job batches (the exact i32 single-pair path).
fn bench_batch(
    batch_kernel: &BatchKernel,
    scheme: &ScoringScheme,
    len: usize,
    pairs: usize,
    reps: usize,
) -> BatchBenchCase {
    let metrics = Metrics::new();
    let seqs: Vec<_> = (0..pairs)
        .map(|k| {
            homologous_pair("bench", &Alphabet::dna(), len, 0.8, 0xba7c + k as u64)
                .expect("bench sequence generation")
        })
        .collect();
    let jobs: Vec<BatchJob<'_>> = seqs
        .iter()
        .map(|(sa, sb)| BatchJob {
            a: sa.codes(),
            b: sb.codes(),
            scheme,
        })
        .collect();
    let mut batched_ns = u64::MAX;
    let mut single_ns = u64::MAX;
    // Rep 0 is the untimed warmup (caches + arena pool), as above.
    for rep in 0..=reps.max(1) {
        let start = Instant::now();
        let results = batch_kernel.align_batch(&jobs, &metrics);
        let ns = start.elapsed().as_nanos() as u64;
        assert_eq!(results.len(), pairs);
        if rep > 0 {
            batched_ns = batched_ns.min(ns);
        }

        let start = Instant::now();
        // One-job batches always take the single-pair fill + traceback.
        for job in &jobs {
            let r = batch_kernel.align_batch(std::slice::from_ref(job), &metrics);
            assert_eq!(r.len(), 1);
        }
        let ns = start.elapsed().as_nanos() as u64;
        if rep > 0 {
            single_ns = single_ns.min(ns);
        }
    }
    BatchBenchCase {
        len,
        pairs,
        batched_ns,
        single_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_available_backend() {
        let report = run_with(&[64], &[16], 8, 1);
        let backends: Vec<_> = report.cases.iter().map(|c| c.backend).collect();
        assert_eq!(backends, KernelBackend::available());
        // Mutation introduces indels, so cells is near (not exactly) 64².
        assert!(report.cases.iter().all(|c| c.cells > 32 * 32));
        assert!(report.cases.iter().all(|c| c.best_ns > 0));
    }

    #[test]
    fn json_names_every_backend_and_parses_shape() {
        let report = run_with(&[64], &[16], 8, 1);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"kernels\""));
        assert!(json.contains("\"scalar\""));
        assert!(json.contains("\"best_backend\""));
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn speedup_compares_best_nonscalar_to_scalar() {
        let case = |backend, best_ns| KernelBenchCase {
            backend,
            len: 100,
            cells: 10_000,
            best_ns,
        };
        let report = KernelBenchReport {
            cases: vec![
                case(KernelBackend::Scalar, 40_000),
                case(KernelBackend::Avx2, 10_000),
                case(KernelBackend::Avx512, 8_000),
            ],
            batch: vec![],
            batch_backend: "batch-portable",
            cpu_features: vec![],
            best_backend: KernelBackend::Avx512,
        };
        let s = report.best_speedup().unwrap();
        assert!((s - 5.0).abs() < 1e-9, "{s}");
        let r = report.widest_vs_next().unwrap();
        assert!((r - 1.25).abs() < 1e-9, "{r}");
        assert!(report.batch_best_speedup().is_none());
    }

    #[test]
    fn batch_section_measures_and_serializes() {
        let report = run_with(&[64], &[16, 40], 8, 1);
        assert_eq!(report.batch.len(), 2);
        for c in &report.batch {
            assert_eq!(c.pairs, 8);
            assert!(c.batched_ns > 0 && c.single_ns > 0);
        }
        let json = report.to_json();
        assert!(json.contains("\"batch_backend\""));
        assert!(json.contains("\"speedup_vs_single\""));
        assert!(report.render().contains("batch kernel"));
    }
}

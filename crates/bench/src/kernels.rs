//! The `flsa bench kernels` sweep: DP kernel throughput per backend.
//!
//! Times [`Kernel::fill_last_row`] — the row-rolling fill at the heart of
//! both FastLSA's grid fill and Hirschberg's passes — on square global
//! problems, for every backend the CPU supports, and reports cells/sec
//! and ns/cell. The JSON report (`BENCH_kernels.json`) records the
//! detected CPU features so numbers are comparable across machines, and
//! `--gate F` turns the sweep into a regression gate: it fails unless the
//! best vectorized backend reaches `F`× the scalar throughput on the
//! largest problem.

use std::time::Instant;

use flsa_dp::{detected_cpu_features, Boundary, Kernel, KernelBackend, Metrics};
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;

/// One (backend, problem size) measurement.
#[derive(Debug, Clone)]
pub struct KernelBenchCase {
    /// The backend measured.
    pub backend: KernelBackend,
    /// Square problem side (both sequences have this many residues).
    pub len: usize,
    /// DP cells per fill (`len²`).
    pub cells: u64,
    /// Best wall-clock time over the measured repetitions.
    pub best_ns: u64,
}

impl KernelBenchCase {
    /// Throughput in DP cells per second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.best_ns == 0 {
            0.0
        } else {
            self.cells as f64 * 1e9 / self.best_ns as f64
        }
    }

    /// Nanoseconds per DP cell.
    pub fn ns_per_cell(&self) -> f64 {
        self.best_ns as f64 / self.cells as f64
    }
}

/// A full sweep: every available backend × every requested length.
#[derive(Debug, Clone)]
pub struct KernelBenchReport {
    /// All measurements, grouped by length then backend.
    pub cases: Vec<KernelBenchCase>,
    /// SIMD features the CPU reports (from `is_x86_feature_detected!`).
    pub cpu_features: Vec<&'static str>,
    /// The backend [`KernelBackend::detect_best`] would pick.
    pub best_backend: KernelBackend,
}

impl KernelBenchReport {
    /// Speedup of the best vectorized backend over scalar at the largest
    /// measured length (`None` when only scalar ran).
    pub fn best_speedup(&self) -> Option<f64> {
        let largest = self.cases.iter().map(|c| c.len).max()?;
        let at = |b: KernelBackend| {
            self.cases
                .iter()
                .find(|c| c.len == largest && c.backend == b)
                .map(KernelBenchCase::cells_per_sec)
        };
        let scalar = at(KernelBackend::Scalar)?;
        let best = self
            .cases
            .iter()
            .filter(|c| c.len == largest && c.backend != KernelBackend::Scalar)
            .map(KernelBenchCase::cells_per_sec)
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.max(v))))?;
        (scalar > 0.0).then(|| best / scalar)
    }

    /// The JSON body of `BENCH_kernels.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"bench\": \"kernels\",\n  \"cpu_features\": [");
        for (i, f) in self.cpu_features.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{f}\""));
        }
        out.push_str(&format!(
            "],\n  \"best_backend\": \"{}\",\n",
            self.best_backend.name()
        ));
        if let Some(s) = self.best_speedup() {
            out.push_str(&format!("  \"best_speedup_vs_scalar\": {s:.3},\n"));
        }
        out.push_str("  \"results\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"backend\": \"{}\", \"len\": {}, \"cells\": {}, \
                 \"best_ns\": {}, \"cells_per_sec\": {:.0}, \"ns_per_cell\": {:.4}}}{}\n",
                c.backend.name(),
                c.len,
                c.cells,
                c.best_ns,
                c.cells_per_sec(),
                c.ns_per_cell(),
                if i + 1 < self.cases.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A plain-text table of the sweep, with per-length speedup columns.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(&[
            "len",
            "backend",
            "best ms",
            "Mcells/s",
            "ns/cell",
            "vs scalar",
        ]);
        let mut lens: Vec<usize> = self.cases.iter().map(|c| c.len).collect();
        lens.dedup();
        for len in lens {
            let scalar = self
                .cases
                .iter()
                .find(|c| c.len == len && c.backend == KernelBackend::Scalar)
                .map(KernelBenchCase::cells_per_sec);
            for c in self.cases.iter().filter(|c| c.len == len) {
                let speedup = match scalar {
                    Some(s) if s > 0.0 => format!("{:.2}x", c.cells_per_sec() / s),
                    _ => "-".to_string(),
                };
                t.row(&[
                    format!("{len}"),
                    c.backend.name().to_string(),
                    format!("{:.1}", c.best_ns as f64 / 1e6),
                    format!("{:.0}", c.cells_per_sec() / 1e6),
                    format!("{:.3}", c.ns_per_cell()),
                    speedup,
                ]);
            }
        }
        t.render()
    }
}

/// Runs the sweep: every CPU-supported backend on square `lens`×`lens`
/// DNA problems, one warmup fill then the best of `reps` timed fills.
pub fn run(lens: &[usize], reps: usize) -> KernelBenchReport {
    let scheme = ScoringScheme::dna_default();
    let gap = scheme.gap().linear_penalty();
    let metrics = Metrics::new();
    let mut cases = Vec::new();
    for &len in lens {
        let (sa, sb) = homologous_pair("bench", &Alphabet::dna(), len, 0.8, 0xbc)
            .expect("bench sequence generation");
        let bound = Boundary::global(sa.len(), sb.len(), gap);
        let mut out = vec![0i32; sb.len() + 1];
        for backend in KernelBackend::available() {
            let kernel = Kernel::try_new(backend).expect("available backend");
            let mut best_ns = u64::MAX;
            // One untimed pass warms caches and populates the arena pool.
            for rep in 0..=reps.max(1) {
                let start = Instant::now();
                kernel.fill_last_row(
                    sa.codes(),
                    sb.codes(),
                    &bound.top,
                    &bound.left,
                    &scheme,
                    &mut out,
                    &metrics,
                );
                let ns = start.elapsed().as_nanos() as u64;
                if rep > 0 {
                    best_ns = best_ns.min(ns);
                }
            }
            cases.push(KernelBenchCase {
                backend,
                len,
                cells: (sa.len() * sb.len()) as u64,
                best_ns,
            });
        }
    }
    KernelBenchReport {
        cases,
        cpu_features: detected_cpu_features(),
        best_backend: KernelBackend::detect_best(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_available_backend() {
        let report = run(&[64], 1);
        let backends: Vec<_> = report.cases.iter().map(|c| c.backend).collect();
        assert_eq!(backends, KernelBackend::available());
        // Mutation introduces indels, so cells is near (not exactly) 64².
        assert!(report.cases.iter().all(|c| c.cells > 32 * 32));
        assert!(report.cases.iter().all(|c| c.best_ns > 0));
    }

    #[test]
    fn json_names_every_backend_and_parses_shape() {
        let report = run(&[64], 1);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"kernels\""));
        assert!(json.contains("\"scalar\""));
        assert!(json.contains("\"best_backend\""));
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn speedup_compares_best_nonscalar_to_scalar() {
        let report = KernelBenchReport {
            cases: vec![
                KernelBenchCase {
                    backend: KernelBackend::Scalar,
                    len: 100,
                    cells: 10_000,
                    best_ns: 40_000,
                },
                KernelBenchCase {
                    backend: KernelBackend::Lanes,
                    len: 100,
                    cells: 10_000,
                    best_ns: 10_000,
                },
            ],
            cpu_features: vec![],
            best_backend: KernelBackend::Lanes,
        };
        let s = report.best_speedup().unwrap();
        assert!((s - 4.0).abs() < 1e-9, "{s}");
    }
}

//! The per-experiment harness: one function per table/figure of the paper
//! (experiment ids E1–E11, indexed in DESIGN.md §4).
//!
//! Every function is deterministic (fixed workload seeds) and returns the
//! rendered report; the `paper` binary prints it and EXPERIMENTS.md records
//! the shape checks.

use fastlsa_core::{model, FastLsaConfig};
use flsa_cachesim::{trace_fastlsa, trace_fm, trace_hirschberg, Hierarchy};
use flsa_dp::{Metrics, MetricsSnapshot};
use flsa_fullmatrix::{needleman_wunsch, needleman_wunsch_packed};
use flsa_hirschberg::{hirschberg_with, HirschbergConfig};
use flsa_scoring::ScoringScheme;
use flsa_seq::workload::{self, WorkloadKind, WorkloadSpec};
use flsa_seq::Sequence;
use flsa_wavefront::phases::{alpha_factor, phase_breakdown};
use flsa_wavefront::sim::simulate_schedule;

use crate::{ms, time, Table};

/// Harness options.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Skip workloads with ancestor length above this.
    pub max_len: usize,
    /// Include the slow, large configurations.
    pub full: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            max_len: 16_000,
            full: false,
        }
    }
}

fn scheme_for(spec: &WorkloadSpec) -> ScoringScheme {
    match spec.kind {
        WorkloadKind::Protein => ScoringScheme::protein_default(),
        WorkloadKind::Dna => ScoringScheme::dna_default(),
    }
}

fn fmt_u64(v: u64) -> String {
    v.to_string()
}

fn fmt_f(v: f64) -> String {
    format!("{v:.3}")
}

/// E1 — the paper's worked example (Table 1 + Figure 1): every algorithm
/// must reproduce the optimal score of 82 and a path that re-scores to it.
pub fn example() -> String {
    let scheme = ScoringScheme::paper_example();
    let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
    let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();

    let mut out =
        String::from("E1: paper worked example (TLDKLLKD vs TDVLKAD, Table 1, gap -10)\n\n");
    let mut t = Table::new(&["algorithm", "score", "path rescore", "ok"]);
    let metrics = Metrics::new();
    let runs: Vec<(&str, flsa_dp::AlignResult)> = vec![
        ("full-matrix", needleman_wunsch(&a, &b, &scheme, &metrics)),
        (
            "fm-packed",
            needleman_wunsch_packed(&a, &b, &scheme, &metrics),
        ),
        (
            "hirschberg",
            hirschberg_with(
                &a,
                &b,
                &scheme,
                HirschbergConfig { base_cells: 16 },
                &metrics,
            ),
        ),
        (
            "fastlsa k=2",
            fastlsa_core::align_with(&a, &b, &scheme, FastLsaConfig::new(2, 16), &metrics).unwrap(),
        ),
        (
            "fastlsa k=4",
            fastlsa_core::align_with(&a, &b, &scheme, FastLsaConfig::new(4, 16), &metrics).unwrap(),
        ),
    ];
    for (name, r) in &runs {
        let rescore = r.path.score(&a, &b, &scheme);
        t.row(&[
            name.to_string(),
            r.score.to_string(),
            rescore.to_string(),
            (r.score == 82 && rescore == 82).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper-reported optimal score: 82\noptimal alignment (canonical tie-break):\n");
    let al = flsa_dp::Alignment::from_path(&a, &b, &runs[0].1.path, &scheme);
    out.push_str(&format!("{al}"));
    out
}

/// E2 — the analytical comparison table (space / operations of FM,
/// Hirschberg, FastLSA) with measured counters beside the formulas.
pub fn table2(opts: ExpOptions) -> String {
    let mut out = String::from(
        "E2: analytical space/operations vs measured (cells in units of m*n; space in DPM entries)\n\n",
    );
    let mut t = Table::new(&[
        "workload",
        "algorithm",
        "cells/mn form",
        "cells/mn meas",
        "space form",
        "space meas",
    ]);
    let base = 1 << 12;
    for spec in workload::up_to(opts.max_len.min(4_000)) {
        let (a, b) = spec.generate();
        let scheme = scheme_for(spec);
        let (m, n) = (a.len(), b.len());
        let mn = (m * n) as f64;

        let mm = Metrics::new();
        needleman_wunsch(&a, &b, &scheme, &mm);
        let s = mm.snapshot();
        t.row(&[
            spec.name.to_string(),
            "full-matrix".into(),
            fmt_f(1.0),
            fmt_f(s.cells_computed as f64 / mn),
            fmt_u64(((m + 1) * (n + 1)) as u64),
            fmt_u64(s.peak_bytes / 4),
        ]);

        let mm = Metrics::new();
        hirschberg_with(&a, &b, &scheme, HirschbergConfig { base_cells: base }, &mm);
        let s = mm.snapshot();
        t.row(&[
            spec.name.to_string(),
            "hirschberg".into(),
            fmt_f(2.0),
            fmt_f(s.cells_computed as f64 / mn),
            fmt_u64((2 * (n + 1) + base) as u64),
            fmt_u64(s.peak_bytes / 4),
        ]);

        for k in [2usize, 8] {
            let mm = Metrics::new();
            fastlsa_core::align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &mm).unwrap();
            let s = mm.snapshot();
            t.row(&[
                spec.name.to_string(),
                format!("fastlsa k={k}"),
                fmt_f(model::fastlsa_cells_bound(m, n, k, base) / mn),
                fmt_f(s.cells_computed as f64 / mn),
                fmt_u64(model::fastlsa_space_entries(m, n, k, base) as u64),
                fmt_u64(s.peak_bytes / 4),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\nexpected shape: FM = 1.00 x mn; Hirschberg ~ 2 x mn; FastLSA between, falling with k;\nFastLSA/Hirschberg space linear, FM space quadratic.\n");
    out
}

/// E3 — the workload suite (the synthetic stand-in for the paper's
/// Table 3 of real biological pairs).
pub fn table3() -> String {
    let mut out =
        String::from("E3: workload suite (synthetic homologous pairs; see DESIGN.md *2)\n\n");
    let mut t = Table::new(&["name", "kind", "len a", "len b", "target id", "seed"]);
    for spec in workload::SUITE {
        // Materialize only the small ones eagerly; report spec lengths for
        // the giants (generation is cheap but keep the report instant).
        let (la, lb) = if spec.len <= 64_000 {
            let (a, b) = spec.generate();
            (a.len(), b.len())
        } else {
            (spec.len, spec.len)
        };
        t.row(&[
            spec.name.to_string(),
            format!("{:?}", spec.kind),
            la.to_string(),
            lb.to_string(),
            format!("{:.2}", spec.identity),
            spec.seed.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// E4 — sequential timing: FM vs Hirschberg vs FastLSA across the suite.
pub fn seqtime(opts: ExpOptions) -> String {
    let mut out = String::from("E4: sequential FindScore+FindPath wall time\n\n");
    let mut t = Table::new(&["workload", "algorithm", "time ms", "cells/mn", "peak MiB"]);
    let fm_cap = if opts.full { 8_000 } else { 4_000 };
    for spec in workload::up_to(opts.max_len) {
        let (a, b) = spec.generate();
        let scheme = scheme_for(spec);
        let mn = (a.len() * b.len()) as f64;
        let mut push = |name: String, s: MetricsSnapshot, d: std::time::Duration| {
            t.row(&[
                spec.name.to_string(),
                name,
                ms(d),
                fmt_f(s.cells_computed as f64 / mn),
                format!("{:.1}", s.peak_bytes as f64 / (1 << 20) as f64),
            ]);
        };
        if spec.len <= fm_cap {
            let mm = Metrics::new();
            let (_, d) = time(|| needleman_wunsch(&a, &b, &scheme, &mm));
            push("full-matrix".into(), mm.snapshot(), d);
            let mm = Metrics::new();
            let (_, d) = time(|| needleman_wunsch_packed(&a, &b, &scheme, &mm));
            push("fm-packed".into(), mm.snapshot(), d);
        }
        let mm = Metrics::new();
        let (_, d) = time(|| {
            hirschberg_with(
                &a,
                &b,
                &scheme,
                HirschbergConfig {
                    base_cells: 1 << 12,
                },
                &mm,
            )
        });
        push("hirschberg".into(), mm.snapshot(), d);
        for k in [4usize, 8] {
            let mm = Metrics::new();
            let cfg = FastLsaConfig::new(k, 1 << 20);
            let (_, d) = time(|| fastlsa_core::align_with(&a, &b, &scheme, cfg, &mm));
            push(format!("fastlsa k={k}"), mm.snapshot(), d);
        }
    }
    out.push_str(&t.render());
    out.push_str("\nexpected shape: FastLSA <= Hirschberg everywhere (fewer recomputations);\nFastLSA ~ FM at sizes where the FM matrix still fits caches, faster beyond.\n");
    out
}

/// E5 — FastLSA time and recomputation factor vs the division factor `k`.
pub fn ksweep(opts: ExpOptions) -> String {
    let spec = if opts.max_len >= 16_000 {
        workload::by_name("dna-16k").unwrap()
    } else {
        workload::by_name("dna-4k").unwrap()
    };
    let (a, b) = spec.generate();
    let scheme = scheme_for(spec);
    let mn = (a.len() * b.len()) as f64;

    let mut out = format!("E5: k sweep on {} (base case 64 Ki entries)\n\n", spec.name);
    let mut t = Table::new(&["k", "time ms", "cells/mn", "bound/mn", "peak MiB"]);
    for k in [2usize, 3, 4, 6, 8, 12, 16, 24, 32] {
        let mm = Metrics::new();
        let cfg = FastLsaConfig::new(k, 1 << 16);
        let (_, d) = time(|| fastlsa_core::align_with(&a, &b, &scheme, cfg, &mm));
        let s = mm.snapshot();
        t.row(&[
            k.to_string(),
            ms(d),
            fmt_f(s.cells_computed as f64 / mn),
            fmt_f(model::fastlsa_cells_bound(a.len(), b.len(), k, 1 << 16) / mn),
            format!("{:.2}", s.peak_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nexpected shape: cells/mn falls toward 1 as k grows (Theorem 2's (k/(k-1))^2);\nmemory rises linearly with k; time bottoms out at moderate k.\n");
    out
}

/// E6 — peak auxiliary memory vs problem size for each algorithm.
pub fn memory(opts: ExpOptions) -> String {
    let mut out = String::from("E6: peak auxiliary memory (MiB)\n\n");
    let mut t = Table::new(&[
        "workload",
        "FM (analytic)",
        "hirschberg",
        "fastlsa k=4",
        "fastlsa k=16",
    ]);
    for spec in workload::up_to(opts.max_len) {
        if spec.kind != WorkloadKind::Dna {
            continue;
        }
        let (a, b) = spec.generate();
        let scheme = scheme_for(spec);
        let fm_bytes = ((a.len() + 1) * (b.len() + 1) * 4) as f64 / (1 << 20) as f64;
        let mm_h = Metrics::new();
        hirschberg_with(&a, &b, &scheme, HirschbergConfig::default(), &mm_h);
        let mut cells = Vec::new();
        for k in [4usize, 16] {
            let mm = Metrics::new();
            fastlsa_core::align_with(&a, &b, &scheme, FastLsaConfig::new(k, 1 << 16), &mm).unwrap();
            cells.push(mm.snapshot().peak_bytes as f64 / (1 << 20) as f64);
        }
        t.row(&[
            spec.name.to_string(),
            format!("{fm_bytes:.1}"),
            format!(
                "{:.3}",
                mm_h.snapshot().peak_bytes as f64 / (1 << 20) as f64
            ),
            format!("{:.3}", cells[0]),
            format!("{:.3}", cells[1]),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nexpected shape: FM grows quadratically; Hirschberg and FastLSA grow linearly,\nwith FastLSA's slope proportional to k.\n");
    out
}

/// Measured counterpart of the §5 pipeline model: runs one real threaded
/// FastLSA with the trace recorder attached and puts each wavefront
/// fill's *measured* ramp/saturated/drain census next to the analytical
/// [`phase_breakdown`] of the same grid (and Theorem 4's α). GridFill
/// grids carry the bottom-right skip hole, so their model column uses the
/// measured tile total to flag the hole rather than a full-grid census.
fn measured_phase_occupancy(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    threads: usize,
) -> String {
    let recorder = std::sync::Arc::new(flsa_trace::Recorder::new());
    let metrics = Metrics::with_recorder(std::sync::Arc::clone(&recorder));
    let cfg = FastLsaConfig::new(8, 1 << 16).with_threads(threads);
    let _ = fastlsa_core::align_with(a, b, scheme, cfg, &metrics);
    let analysis = flsa_trace::analyze(&recorder.snapshot());

    let mut out = format!(
        "\nmeasured with real threads (P = {threads}, {} x {}): phase census per wavefront fill\n",
        a.len(),
        b.len()
    );
    let mut t = Table::new(&[
        "fill",
        "kind",
        "grid",
        "measured r/s/d tiles",
        "model r/s/d tiles",
        "busy share",
        "alpha",
    ]);
    for f in analysis.fills.iter().take(8) {
        let (rows, cols) = (f.rows as usize, f.cols as usize);
        let model = phase_breakdown(rows, cols, threads, None);
        let model_col = if f.tiles == model.total_tiles() {
            format!(
                "{}/{}/{}",
                model.ramp_tiles, model.saturated_tiles, model.drain_tiles
            )
        } else {
            format!(
                "(skip hole: {} of {} tiles live)",
                f.tiles,
                model.total_tiles()
            )
        };
        let busy: u64 = f.phases.iter().map(|p| p.busy_ns).sum();
        let busy_share = busy as f64 / (f.wall_ns.max(1) as f64 * threads as f64);
        t.row(&[
            f.fill.to_string(),
            f.kind.name().to_string(),
            format!("{rows}x{cols}"),
            format!(
                "{}/{}/{}",
                f.phases[0].tiles, f.phases[1].tiles, f.phases[2].tiles
            ),
            model_col,
            format!("{busy_share:.3}"),
            format!("{:.3}", alpha_factor(rows, cols, threads)),
        ]);
    }
    out.push_str(&t.render());
    if analysis.fills.len() > 8 {
        out.push_str(&format!(
            "({} further fills omitted)\n",
            analysis.fills.len() - 8
        ));
    }
    let wall = analysis.wall_ns.max(1) as f64;
    let mean_util = analysis
        .threads
        .iter()
        .map(|t| t.busy_ns as f64 / wall)
        .sum::<f64>()
        / analysis.threads.len().max(1) as f64;
    out.push_str(&format!(
        "mean thread occupancy {:.1}% over {} worker timelines; full-grid fills must match\nthe model census exactly (asserted by tests/trace_integration.rs).\n",
        mean_util * 100.0,
        analysis.threads.len()
    ));
    out
}

/// E7 — parallel speedup: schedule replay for P = 1..16 (and the Theorem 4
/// bound), per workload.
pub fn speedup(opts: ExpOptions) -> String {
    let mut out = String::from(
        "E7: parallel FastLSA speedup (virtual-P schedule replay of the recorded run;\nsee DESIGN.md *2 for the single-core substitution)\n\n",
    );
    let threads = [1usize, 2, 4, 8, 16];
    let mut headers = vec!["workload".to_string()];
    headers.extend(threads.iter().map(|p| format!("P={p}")));
    headers.push("T4 bound P=8".into());
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr_refs);

    for spec in workload::up_to(opts.max_len) {
        if spec.kind != WorkloadKind::Dna || spec.len < 4_000 {
            continue;
        }
        let (a, b) = spec.generate();
        let scheme = scheme_for(spec);
        let k = 8;
        let f = 2;
        let metrics = Metrics::new();
        let cfg = FastLsaConfig::new(k, 1 << 16);
        let (_, log) = fastlsa_core::align_traced(&a, &b, &scheme, cfg, &metrics).unwrap();
        let mut row = vec![spec.name.to_string()];
        for &p in &threads {
            let rep = fastlsa_core::replay(&log, p, f);
            row.push(format!("{:.2}", rep.speedup()));
        }
        // Theorem 4's bound expressed as a speedup floor: total work over
        // the bound's wall cost.
        let total = fastlsa_core::replay(&log, 1, f).total_work;
        let bound_wall = model::theorem4_bound(a.len(), b.len(), k, 8, f);
        row.push(format!("{:.2}", total / bound_wall));
        t.row(&row);
    }
    out.push_str(&t.render());
    if let Some(spec) = workload::up_to(opts.max_len)
        .into_iter()
        .find(|s| s.kind == WorkloadKind::Dna && s.len >= 4_000)
    {
        let (a, b) = spec.generate();
        out.push_str(&measured_phase_occupancy(&a, &b, &scheme_for(spec), 4));
    }
    out.push_str("\nexpected shape: near-linear speedup to P=8, flattening after (the paper's\nFig.-level observation); larger problems scale better.\n");
    out
}

/// E8 — efficiency vs problem size at fixed P = 8.
pub fn efficiency(opts: ExpOptions) -> String {
    let mut out = String::from("E8: parallel efficiency at P = 8 vs problem size\n\n");
    let mut t = Table::new(&["workload", "efficiency P=8", "efficiency P=4"]);
    for spec in workload::up_to(opts.max_len) {
        if spec.kind != WorkloadKind::Dna {
            continue;
        }
        let (a, b) = spec.generate();
        let scheme = scheme_for(spec);
        let metrics = Metrics::new();
        let cfg = FastLsaConfig::new(8, 1 << 16);
        let (_, log) = fastlsa_core::align_traced(&a, &b, &scheme, cfg, &metrics).unwrap();
        let e8 = fastlsa_core::replay(&log, 8, 2).efficiency();
        let e4 = fastlsa_core::replay(&log, 4, 2).efficiency();
        t.row(&[
            spec.name.to_string(),
            format!("{e8:.3}"),
            format!("{e4:.3}"),
        ]);
    }
    out.push_str(&t.render());
    if let Some(spec) = workload::up_to(opts.max_len)
        .into_iter()
        .filter(|s| s.kind == WorkloadKind::Dna)
        .max_by_key(|s| s.len)
    {
        let (a, b) = spec.generate();
        out.push_str(&measured_phase_occupancy(&a, &b, &scheme_for(spec), 8));
    }
    out.push_str("\nexpected shape: efficiency increases with sequence length (the paper's\nheadline parallel result).\n");
    out
}

/// E9 — the three-phase fill census (Fig. 13) and Theorem 4's alpha.
pub fn phases() -> String {
    let mut out = String::from("E9: three-phase wavefront census for one Fill Cache step\n\n");
    let mut t = Table::new(&[
        "R x C",
        "P",
        "ramp lines",
        "sat lines",
        "drain lines",
        "census bound",
        "eq31 bound",
        "sim makespan",
    ]);
    for &(k, f, p) in &[
        (6usize, 2usize, 8usize),
        (8, 2, 8),
        (8, 4, 8),
        (8, 2, 4),
        (16, 2, 16),
    ] {
        let r = k * f;
        let c = k * f;
        let skip_from = (k - 1) * f;
        let skip = move |tr: usize, tc: usize| tr >= skip_from && tc >= skip_from;
        let pb = phase_breakdown(r, c, p, Some(&skip));
        let sim = simulate_schedule(r, c, p, Some(&skip), &|_, _| 1);
        let eq31 = ((r * c + p * p - p) as f64) / p as f64;
        t.row(&[
            format!("{r}x{c}"),
            p.to_string(),
            pb.ramp_lines.to_string(),
            pb.saturated_lines.to_string(),
            pb.drain_lines.to_string(),
            format!("{:.1}", pb.time_bound_tiles(p)),
            format!("{eq31:.1}"),
            sim.makespan.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nalpha(P=8, R=C=16) = {:.4} (Theorem 4, Eq. 32); perfect parallelism would be {:.4}\n",
        alpha_factor(16, 16, 8),
        1.0 / 8.0
    ));
    out.push_str("expected shape: simulated makespan <= census bound <= Eq. 31 bound.\n");
    out
}

/// E10 — simulated cache behaviour: the paper's "caching effects" claim.
pub fn cache(opts: ExpOptions) -> String {
    let mut out = String::from(
        "E10: simulated cache hierarchy (32 KiB L1 / 1 MiB L2, 4/14/120-cycle AMAT)\n\n",
    );
    let mut t = Table::new(&[
        "n",
        "algorithm",
        "cells/mn",
        "L1 miss%",
        "L2 miss%",
        "L2 wb/mn",
        "cycles/cell",
    ]);
    let mut sizes = vec![256usize, 512, 1024, 2048];
    if opts.full {
        sizes.push(4096);
    }
    for n in sizes {
        let fl_base = 1 << 14; // 64 Ki entries: fits L2 comfortably
        let runs = [
            trace_fm(n, n, Hierarchy::typical()),
            trace_hirschberg(n, n, 1 << 10, Hierarchy::typical()),
            trace_fastlsa(n, n, 8, fl_base, Hierarchy::typical()),
        ];
        for r in runs {
            t.row(&[
                n.to_string(),
                r.algorithm.to_string(),
                fmt_f(r.cells as f64 / (n * n) as f64),
                format!("{:.1}", r.stats.l1.miss_rate() * 100.0),
                format!("{:.1}", r.stats.l2.miss_rate() * 100.0),
                format!("{:.3}", r.stats.l2.writebacks as f64 / (n * n) as f64),
                format!("{:.2}", r.cycles_per_input_cell()),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\nexpected shape: once the FM matrix exceeds L2 (n >~ 512), FM's cycles/cell\njump while FastLSA/Hirschberg stay flat; FastLSA <= both baselines (the paper's\n\"always as fast or faster\" claim).\n");
    out
}

/// E12 (ablation) — FastLSA runtime vs Base Case buffer size: the
/// paper's §1 claim that the algorithm "can be parameterized and tuned …
/// to take advantage of cache memory and main memory sizes".
pub fn basesweep(opts: ExpOptions) -> String {
    let spec = if opts.max_len >= 16_000 {
        workload::by_name("dna-16k").unwrap()
    } else {
        workload::by_name("dna-4k").unwrap()
    };
    let (a, b) = spec.generate();
    let scheme = scheme_for(spec);
    let mn = (a.len() * b.len()) as f64;

    let mut out = format!("E12: base-case buffer sweep on {} (k = 8)\n\n", spec.name);
    let mut t = Table::new(&["base cells", "base MiB", "time ms", "cells/mn", "peak MiB"]);
    for shift in [12u32, 14, 16, 18, 20, 22, 24] {
        let base = 1usize << shift;
        let mm = Metrics::new();
        let cfg = FastLsaConfig::new(8, base);
        let (_, d) = time(|| fastlsa_core::align_with(&a, &b, &scheme, cfg, &mm));
        let s = mm.snapshot();
        t.row(&[
            base.to_string(),
            format!("{:.2}", (base * 4) as f64 / (1 << 20) as f64),
            ms(d),
            fmt_f(s.cells_computed as f64 / mn),
            format!("{:.2}", s.peak_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nexpected shape: recomputation falls as the buffer grows (fewer recursion\nlevels); wall time bottoms out when the buffer is roughly cache-sized and\nstops improving (or worsens) once base cases spill out of cache.\n");
    out
}

/// E13 (ablation) — replayed parallel speedup vs the tile subdivision
/// factor `f` (tiles per grid block): Fig. 13's load-balance knob.
pub fn tilesweep(opts: ExpOptions) -> String {
    let spec = if opts.max_len >= 16_000 {
        workload::by_name("dna-16k").unwrap()
    } else {
        workload::by_name("dna-4k").unwrap()
    };
    let (a, b) = spec.generate();
    let scheme = scheme_for(spec);
    let metrics = Metrics::new();
    let cfg = FastLsaConfig::new(8, 1 << 16);
    let (_, log) = fastlsa_core::align_traced(&a, &b, &scheme, cfg, &metrics).unwrap();

    let mut out = format!(
        "E13: tile-subdivision ablation on {} (k = 8, schedule replay)\n\n",
        spec.name
    );
    let mut t = Table::new(&[
        "tiles/block f",
        "speedup P=4",
        "speedup P=8",
        "speedup P=16",
    ]);
    for f in [1usize, 2, 3, 4, 8] {
        t.row(&[
            f.to_string(),
            format!("{:.2}", fastlsa_core::replay(&log, 4, f).speedup()),
            format!("{:.2}", fastlsa_core::replay(&log, 8, f).speedup()),
            format!("{:.2}", fastlsa_core::replay(&log, 16, f).speedup()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nexpected shape: f = 1 leaves processors idle on the k x k wavefront\n(ramp/drain dominate); f >= 2 restores near-linear speedup; returns\ndiminish beyond (Theorem 4's (P^2-P)/(R*C) term shrinks as R*C grows).\n");
    out
}

/// E14 (ablation) — speedup sensitivity to per-dependency communication
/// cost (the paper's testbed paid real interconnect latencies; a
/// shared-cache workstation pays ~0).
pub fn commsweep(opts: ExpOptions) -> String {
    let spec = if opts.max_len >= 16_000 {
        workload::by_name("dna-16k").unwrap()
    } else {
        workload::by_name("dna-4k").unwrap()
    };
    let (a, b) = spec.generate();
    let scheme = scheme_for(spec);
    let metrics = Metrics::new();
    let cfg = FastLsaConfig::new(8, 1 << 16);
    let (_, log) = fastlsa_core::align_traced(&a, &b, &scheme, cfg, &metrics).unwrap();

    let mut out = format!(
        "E14: communication-cost sensitivity on {} (k = 8, f = 2, replayed speedup)\n\n",
        spec.name
    );
    let mut t = Table::new(&["comm (frac of tile)", "P=2", "P=4", "P=8", "P=16"]);
    for frac in [0.0f64, 0.05, 0.1, 0.25, 0.5] {
        let mut row = vec![format!("{frac:.2}")];
        for p in [2usize, 4, 8, 16] {
            row.push(format!(
                "{:.2}",
                fastlsa_core::replay_with_comm(&log, p, 2, frac).speedup()
            ));
        }
        t.row(&row);
    }
    out.push_str(&t.render());
    out.push_str("\nexpected shape: speedup degrades gracefully with communication cost;\nhigh-P configurations suffer most (more cross-processor edges), matching\nwhy the paper's efficiency drops beyond 8 processors on real hardware.\n");
    out
}

/// E11 — executable theorem checks.
pub fn theorems(opts: ExpOptions) -> String {
    let mut out = String::from("E11: theorem bound checks (PASS/FAIL)\n\n");
    let spec = if opts.max_len >= 4_000 {
        workload::by_name("dna-4k").unwrap()
    } else {
        workload::by_name("dna-1k").unwrap()
    };
    let (a, b) = spec.generate();
    let scheme = scheme_for(spec);
    let (m, n) = (a.len(), b.len());
    let mut checks: Vec<(String, bool)> = Vec::new();

    // FM computes exactly m*n cells.
    let mm = Metrics::new();
    needleman_wunsch(&a, &b, &scheme, &mm);
    checks.push((
        format!("FM cells == m*n ({})", mm.snapshot().cells_computed),
        mm.snapshot().cells_computed == (m * n) as u64,
    ));

    // Hirschberg <= 2.05 * m*n cells.
    let mm = Metrics::new();
    hirschberg_with(&a, &b, &scheme, HirschbergConfig { base_cells: 64 }, &mm);
    let factor = mm.snapshot().cell_factor(m, n);
    checks.push((
        format!("Hirschberg cells/mn = {factor:.3} <= 2.05"),
        factor <= 2.05,
    ));

    // Theorem 2: FastLSA cells <= bound <= mn*(k/(k-1))^2 (with rounding slack).
    for k in [2usize, 4, 8, 16] {
        let base = 1 << 12;
        let mm = Metrics::new();
        fastlsa_core::align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &mm).unwrap();
        let meas = mm.snapshot().cells_computed as f64;
        let bound = model::fastlsa_cells_bound(m, n, k, base);
        let limit = (m * n) as f64 * model::theorem2_limit_factor(k) * 1.05;
        checks.push((
            format!(
                "T2 k={k}: measured {:.3}mn <= bound {:.3}mn <= limit",
                meas / (m * n) as f64,
                bound / (m * n) as f64
            ),
            meas <= bound * 1.05 && bound <= limit,
        ));
        // Theorem 3: peak memory within the space bound.
        let peak = mm.snapshot().peak_bytes as f64;
        let sbound = model::fastlsa_space_entries(m, n, k, base) * 4.0;
        checks.push((
            format!("T3 k={k}: peak {peak:.0}B <= bound {sbound:.0}B * 1.1"),
            peak <= sbound * 1.1,
        ));
    }

    // Theorem 4: replayed parallel wall cost <= bound.
    let k = 8;
    let f = 2;
    let metrics = Metrics::new();
    let (_, log) =
        fastlsa_core::align_traced(&a, &b, &scheme, FastLsaConfig::new(k, 1 << 12), &metrics)
            .unwrap();
    for p in [2usize, 4, 8] {
        let rep = fastlsa_core::replay(&log, p, f);
        let bound = model::theorem4_bound(m, n, k, p, f);
        checks.push((
            format!(
                "T4 P={p}: replay {:.0} <= bound {:.0} cell-units",
                rep.units, bound
            ),
            rep.units <= bound,
        ));
    }

    let mut t = Table::new(&["check", "result"]);
    let mut all = true;
    for (name, ok) in &checks {
        all &= ok;
        t.row(&[
            name.clone(),
            if *ok { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\noverall: {}\n",
        if all { "ALL PASS" } else { "FAILURES PRESENT" }
    ));
    out
}

//! `paper` — regenerates every table and figure of the FastLSA paper's
//! evaluation (experiment index in DESIGN.md §4, results in
//! EXPERIMENTS.md).
//!
//! ```text
//! paper <experiment> [--max-len N] [--full]
//! paper all
//! ```
#![forbid(unsafe_code)]

use flsa_bench::experiments::{self, ExpOptions};

const HELP: &str = "\
paper - regenerate the FastLSA paper's tables and figures

USAGE:
    paper <experiment> [--max-len N] [--full]

EXPERIMENTS:
    example      E1  worked example (Table 1 / Figure 1, score 82)
    table2       E2  analytical space/ops comparison, formulas vs measured
    table3       E3  workload suite (Table 3 stand-in)
    seqtime      E4  sequential timing across the suite
    ksweep       E5  FastLSA time/recomputation vs k
    memory       E6  peak memory vs problem size
    speedup      E7  parallel speedup vs P (schedule replay)
    efficiency   E8  parallel efficiency vs problem size
    phases       E9  three-phase wavefront census + Theorem 4 alpha
    cache        E10 simulated cache hierarchy comparison
    theorems     E11 executable Theorem 1-4 bound checks
    basesweep    E12 ablation: runtime vs base-case buffer size
    tilesweep    E13 ablation: speedup vs tile subdivision factor
    commsweep    E14 ablation: speedup vs communication cost
    all              everything above

OPTIONS:
    --max-len N   cap workload ancestor length (default 16000)
    --full        include the slow, large configurations
    --out DIR     also write each report to DIR/<experiment>.txt
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExpOptions::default();
    let mut command = String::new();
    let mut out_dir: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--max-len" => {
                let Some(v) = it.next() else {
                    eprintln!("--max-len requires a value");
                    std::process::exit(2);
                };
                opts.max_len = v.parse().unwrap_or_else(|_| {
                    eprintln!("--max-len must be an integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--full" => opts.full = true,
            "--out" => {
                let Some(dir) = it.next() else {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                };
                out_dir = Some(dir.clone());
            }
            other if command.is_empty() => command = other.to_string(),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }
    let save = |name: &str, report: &str| {
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{name}.txt");
            std::fs::write(&path, report).expect("write report file");
        }
    };

    let run = |name: &str| -> Option<String> {
        match name {
            "example" => Some(experiments::example()),
            "table2" => Some(experiments::table2(opts)),
            "table3" => Some(experiments::table3()),
            "seqtime" => Some(experiments::seqtime(opts)),
            "ksweep" => Some(experiments::ksweep(opts)),
            "memory" => Some(experiments::memory(opts)),
            "speedup" => Some(experiments::speedup(opts)),
            "efficiency" => Some(experiments::efficiency(opts)),
            "phases" => Some(experiments::phases()),
            "cache" => Some(experiments::cache(opts)),
            "theorems" => Some(experiments::theorems(opts)),
            "basesweep" => Some(experiments::basesweep(opts)),
            "tilesweep" => Some(experiments::tilesweep(opts)),
            "commsweep" => Some(experiments::commsweep(opts)),
            _ => None,
        }
    };

    match command.as_str() {
        "" | "help" => print!("{HELP}"),
        "all" => {
            for name in [
                "example",
                "table2",
                "table3",
                "seqtime",
                "ksweep",
                "memory",
                "speedup",
                "efficiency",
                "phases",
                "cache",
                "theorems",
                "basesweep",
                "tilesweep",
                "commsweep",
            ] {
                println!("================================================================");
                let report = run(name).unwrap();
                save(name, &report);
                println!("{report}");
            }
        }
        other => match run(other) {
            Some(report) => {
                save(other, &report);
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment {other:?}; try `paper help`");
                std::process::exit(2);
            }
        },
    }
}

//! The `flsa bench serve` load harness: a seeded multi-threaded load
//! generator driven against an in-process `flsa-serve` daemon.
//!
//! Two workload mixes:
//! - **ReadHeavy** — a stream of small, uniform jobs: the steady-state
//!   serving profile, dominated by per-request overhead.
//! - **RapidGrow** — job sizes ramp up over the run, pushing admission
//!   control and the memory governor progressively harder.
//!
//! Each mix runs **closed-loop** (every client waits for its response
//! before the next request — measures service latency under bounded
//! concurrency) and/or **open-loop** (clients submit on a fixed
//! schedule regardless of completions — measures latency including
//! queueing, the way real arrival processes do). Latency percentiles
//! (p50/p95/p99) and sustained throughput land in `BENCH_serve.json`,
//! and `--gate` turns the closed-loop throughput into a regression
//! gate.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use flsa_fault::SplitMix64;
use flsa_metrics::{names, Registry};
use flsa_serve::wire::{AlignRequest, Frame};
use flsa_serve::{Client, ServeConfig, Server};

/// Workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Small uniform jobs; throughput-bound.
    ReadHeavy,
    /// Job sizes ramp over the run; admission-bound.
    RapidGrow,
}

impl Mix {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mix::ReadHeavy => "read-heavy",
            Mix::RapidGrow => "rapid-grow",
        }
    }

    /// Parses a `--mix` value.
    pub fn parse(s: &str) -> Option<Mix> {
        match s {
            "read-heavy" => Some(Mix::ReadHeavy),
            "rapid-grow" => Some(Mix::RapidGrow),
            _ => None,
        }
    }

    /// Sequence length for operation `i` of `ops` under this mix.
    fn len_for(self, rng: &mut SplitMix64, i: usize, ops: usize) -> usize {
        match self {
            Mix::ReadHeavy => 48 + rng.below(112) as usize,
            Mix::RapidGrow => {
                // Ramp 64 → ~480 across the run, with jitter.
                let ramp = 64 + 416 * i / ops.max(1);
                ramp + rng.below(32) as usize
            }
        }
    }
}

/// Client pacing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Wait for each response before the next request.
    Closed,
    /// Submit on a fixed schedule; latency includes queueing.
    Open,
}

impl Mode {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open => "open",
        }
    }

    /// Parses a `--mode` value.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "closed" => Some(Mode::Closed),
            "open" => Some(Mode::Open),
            _ => None,
        }
    }
}

/// Load-harness parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Mixes to run (each in every requested mode).
    pub mixes: Vec<Mix>,
    /// Pacing disciplines to run.
    pub modes: Vec<Mode>,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub ops: usize,
    /// Open-loop submission rate per client, requests/second.
    pub rate: f64,
    /// Seed for the whole harness (workloads are derived per client).
    pub seed: u64,
    /// Server worker threads.
    pub workers: usize,
    /// Server admission budget (`None` = unbudgeted).
    pub budget_bytes: Option<usize>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            mixes: vec![Mix::ReadHeavy, Mix::RapidGrow],
            modes: vec![Mode::Closed, Mode::Open],
            clients: 4,
            ops: 32,
            rate: 100.0,
            seed: 42,
            workers: 4,
            budget_bytes: None,
        }
    }
}

/// One (mix, mode) measurement.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Workload shape.
    pub mix: Mix,
    /// Pacing discipline.
    pub mode: Mode,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests submitted in total.
    pub submitted: u64,
    /// `Ok` responses.
    pub completed: u64,
    /// Typed failures.
    pub failed: u64,
    /// `Overloaded` rejections.
    pub rejected: u64,
    /// Wall-clock for the whole mix run.
    pub wall: Duration,
    /// Response latencies, microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
}

impl LoadResult {
    /// The `p`-th latency percentile in microseconds (0 when empty).
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = (p / 100.0 * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[rank.min(self.latencies_us.len() - 1)]
    }

    /// Answered requests per second over the wall clock.
    pub fn throughput(&self) -> f64 {
        let answered = self.completed + self.failed + self.rejected;
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            answered as f64 / secs
        } else {
            0.0
        }
    }
}

/// A batched-vs-unbatched A/B over a backlog-heavy closed-loop cell:
/// the same read-heavy workload driven twice against a single-worker
/// daemon, once with `batch_max = 1` (batching off) and once with the
/// default batch width, so the only variable is the inter-sequence
/// batch kernel.
#[derive(Debug, Clone)]
pub struct BatchComparison {
    /// Throughput with `batch_max = 1`, requests/second.
    pub unbatched_ops_s: f64,
    /// Throughput with the default batch width, requests/second.
    pub batched_ops_s: f64,
    /// Batched dispatches the batched run executed.
    pub batches: u64,
    /// Jobs that rode a batched dispatch in the batched run.
    pub batched_jobs: u64,
}

impl BatchComparison {
    /// Batched over unbatched throughput (1.0 = no change).
    pub fn speedup(&self) -> f64 {
        if self.unbatched_ops_s > 0.0 {
            self.batched_ops_s / self.unbatched_ops_s
        } else {
            0.0
        }
    }
}

/// The full harness report.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// One row per (mix, mode).
    pub results: Vec<LoadResult>,
    /// The batched-vs-unbatched A/B (absent when the harness ran with
    /// a single client — no backlog, nothing to coalesce).
    pub batch: Option<BatchComparison>,
    /// The harness seed (reports are reproducible given the seed).
    pub seed: u64,
}

impl ServeBenchReport {
    /// The smallest closed-loop throughput — the `--gate` measure
    /// (open-loop throughput is capped by the submission schedule, so
    /// it would gate the schedule, not the server).
    pub fn gate_throughput(&self) -> f64 {
        self.results
            .iter()
            .filter(|r| r.mode == Mode::Closed)
            .map(LoadResult::throughput)
            .fold(f64::INFINITY, f64::min)
    }

    /// True when every submitted request was answered — the harness's
    /// no-lost-responses invariant.
    pub fn all_answered(&self) -> bool {
        self.results
            .iter()
            .all(|r| r.completed + r.failed + r.rejected == r.submitted)
    }

    /// The JSON body of `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"bench\": \"serve\",\n  \"seed\": {},\n  \"results\": [\n",
            self.seed
        );
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mix\": \"{}\", \"mode\": \"{}\", \"clients\": {}, \
                 \"submitted\": {}, \"completed\": {}, \"failed\": {}, \"rejected\": {}, \
                 \"wall_ms\": {:.1}, \"throughput_ops_s\": {:.1}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}\n",
                r.mix.name(),
                r.mode.name(),
                r.clients,
                r.submitted,
                r.completed,
                r.failed,
                r.rejected,
                r.wall.as_secs_f64() * 1e3,
                r.throughput(),
                r.percentile_us(50.0),
                r.percentile_us(95.0),
                r.percentile_us(99.0),
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        match &self.batch {
            Some(b) => out.push_str(&format!(
                "  \"batch_comparison\": {{\"note\": \"read-heavy closed-loop, 1 worker, \
                 batch_max 1 vs default\", \"unbatched_ops_s\": {:.1}, \
                 \"batched_ops_s\": {:.1}, \"speedup\": {:.2}, \
                 \"batches\": {}, \"batched_jobs\": {}}}\n",
                b.unbatched_ops_s,
                b.batched_ops_s,
                b.speedup(),
                b.batches,
                b.batched_jobs,
            )),
            None => out.push_str(
                "  \"batch_comparison\": {\"note\": \"skipped: needs >= 2 clients \
                 to form a backlog\"}\n",
            ),
        }
        out.push_str("}\n");
        out
    }

    /// A plain-text table of the report.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(&[
            "mix", "mode", "clients", "ops", "ok", "fail", "rej", "wall ms", "ops/s", "p50 ms",
            "p95 ms", "p99 ms",
        ]);
        for r in &self.results {
            t.row(&[
                r.mix.name().to_string(),
                r.mode.name().to_string(),
                format!("{}", r.clients),
                format!("{}", r.submitted),
                format!("{}", r.completed),
                format!("{}", r.failed),
                format!("{}", r.rejected),
                format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                format!("{:.1}", r.throughput()),
                format!("{:.2}", r.percentile_us(50.0) as f64 / 1e3),
                format!("{:.2}", r.percentile_us(95.0) as f64 / 1e3),
                format!("{:.2}", r.percentile_us(99.0) as f64 / 1e3),
            ]);
        }
        let mut out = t.render();
        if let Some(b) = &self.batch {
            out.push_str(&format!(
                "batch kernel    {:.1} -> {:.1} req/s ({:.2}x) over {} batches / {} jobs \
                 (read-heavy closed-loop, 1 worker)\n",
                b.unbatched_ops_s,
                b.batched_ops_s,
                b.speedup(),
                b.batches,
                b.batched_jobs,
            ));
        }
        out
    }
}

/// Deterministic DNA text.
fn dna(rng: &mut SplitMix64, len: usize) -> String {
    (0..len)
        .map(|_| b"ACGT"[rng.below(4) as usize] as char)
        .collect()
}

/// Builds client `c`'s request stream for a mix, derived from the
/// harness seed so every run with the same seed submits identical work.
fn requests_for(mix: Mix, cfg: &LoadConfig, c: usize) -> Vec<AlignRequest> {
    let mut rng = SplitMix64::new(cfg.seed ^ (0x10ad << 16) ^ (c as u64) ^ (mix as u64) << 8);
    (0..cfg.ops)
        .map(|i| {
            let len_a = mix.len_for(&mut rng, i, cfg.ops);
            let len_b = mix.len_for(&mut rng, i, cfg.ops);
            AlignRequest {
                id: ((c as u64) << 32) | i as u64,
                deadline_ms: 0,
                threads: 0,
                k: 0,
                gap: -2,
                base_cells: 4096,
                matrix: "dna".to_string(),
                seq_a: dna(&mut rng, len_a).into_bytes(),
                seq_b: dna(&mut rng, len_b).into_bytes(),
            }
        })
        .collect()
}

/// Per-client tallies merged into a [`LoadResult`].
#[derive(Default)]
struct Tally {
    completed: u64,
    failed: u64,
    rejected: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn note(&mut self, frame: &Frame, latency: Duration) {
        match frame {
            Frame::Ok(_) => self.completed += 1,
            Frame::Fail(_) => self.failed += 1,
            Frame::Overloaded { .. } => self.rejected += 1,
            _ => {}
        }
        self.latencies_us.push(latency.as_micros() as u64);
    }
}

/// One closed-loop client: submit, await, repeat.
fn closed_loop_client(addr: std::net::SocketAddr, requests: Vec<AlignRequest>) -> Tally {
    let mut client = Client::connect(addr).expect("bench client connect");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut tally = Tally::default();
    for r in requests {
        let start = Instant::now();
        let frame = client.align(r).expect("bench response");
        tally.note(&frame, start.elapsed());
    }
    tally
}

/// One open-loop client: a sender pushes requests on a fixed schedule
/// while a reader (on a cloned socket handle) collects responses and
/// measures latency from scheduled submission to receipt.
fn open_loop_client(addr: std::net::SocketAddr, requests: Vec<AlignRequest>, rate: f64) -> Tally {
    let mut sender = Client::connect(addr).expect("bench client connect");
    let mut reader = sender.try_clone().expect("clone client");
    reader
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let sent: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let expected = requests.len();
    let interval = Duration::from_secs_f64(1.0 / rate.max(1e-6));

    let sent_tx = sent.clone();
    let send_thread = std::thread::spawn(move || {
        let t0 = Instant::now();
        for (i, r) in requests.into_iter().enumerate() {
            let due = t0 + interval * i as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            sent_tx
                .lock()
                .expect("send-times lock")
                .insert(r.id, Instant::now());
            sender.send(&Frame::Align(r)).expect("bench send");
        }
    });

    let mut tally = Tally::default();
    let mut got = 0usize;
    while got < expected {
        let frame = reader.recv().expect("bench response");
        let id = match &frame {
            Frame::Ok(r) => r.id,
            Frame::Fail(r) => r.id,
            Frame::Overloaded { id, .. } => *id,
            other => panic!("unexpected frame {other:?}"),
        };
        let start = sent
            .lock()
            .expect("send-times lock")
            .remove(&id)
            .expect("response for unknown id");
        tally.note(&frame, start.elapsed());
        got += 1;
    }
    send_thread.join().expect("sender thread");
    tally
}

/// Runs one (mix, mode) cell against `addr`.
fn run_cell(addr: std::net::SocketAddr, mix: Mix, mode: Mode, cfg: &LoadConfig) -> LoadResult {
    let start = Instant::now();
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let requests = requests_for(mix, cfg, c);
            let rate = cfg.rate;
            std::thread::spawn(move || match mode {
                Mode::Closed => closed_loop_client(addr, requests),
                Mode::Open => open_loop_client(addr, requests, rate),
            })
        })
        .collect();
    let mut result = LoadResult {
        mix,
        mode,
        clients: cfg.clients,
        submitted: (cfg.clients * cfg.ops) as u64,
        completed: 0,
        failed: 0,
        rejected: 0,
        wall: Duration::ZERO,
        latencies_us: Vec::new(),
    };
    for h in handles {
        let tally = h.join().expect("client thread");
        result.completed += tally.completed;
        result.failed += tally.failed;
        result.rejected += tally.rejected;
        result.latencies_us.extend(tally.latencies_us);
    }
    result.wall = start.elapsed();
    result.latencies_us.sort_unstable();
    result
}

/// Runs the read-heavy closed-loop cell against a fresh single-worker
/// daemon configured with `batch_max`, returning the throughput and the
/// batch counters. One worker keeps a backlog in front of the queue so
/// the batched run has something to coalesce.
fn run_batch_arm(cfg: &LoadConfig, batch_max: usize) -> (f64, u64, u64) {
    let registry = Arc::new(Registry::new());
    let mut server_cfg = ServeConfig::new("127.0.0.1:0");
    server_cfg.workers = 1;
    server_cfg.budget_bytes = cfg.budget_bytes;
    server_cfg.queue_cap = (cfg.clients * cfg.ops).max(64);
    server_cfg.batch_max = batch_max;
    server_cfg.registry = Some(registry.clone());
    let server = Server::start(server_cfg).expect("bench server start");
    let result = run_cell(server.local_addr(), Mix::ReadHeavy, Mode::Closed, cfg);
    server.drain();
    server.join();
    let snap = registry.snapshot();
    (
        result.throughput(),
        snap.counter(names::SERVE_BATCHES_TOTAL).unwrap_or(0),
        snap.counter(names::SERVE_BATCHED_JOBS_TOTAL).unwrap_or(0),
    )
}

/// Runs the whole harness: starts an in-process daemon, drives every
/// requested (mix, mode) cell against it, drains, runs the batched
/// vs unbatched A/B, and reports.
pub fn run(cfg: &LoadConfig) -> ServeBenchReport {
    let mut server_cfg = ServeConfig::new("127.0.0.1:0");
    server_cfg.workers = cfg.workers.max(1);
    server_cfg.budget_bytes = cfg.budget_bytes;
    server_cfg.queue_cap = (cfg.clients * cfg.ops).max(64);
    let server = Server::start(server_cfg).expect("bench server start");
    let addr = server.local_addr();

    let mut results = Vec::new();
    for &mix in &cfg.mixes {
        for &mode in &cfg.modes {
            results.push(run_cell(addr, mix, mode, cfg));
        }
    }

    server.drain();
    assert_eq!(
        server.admission_used_bytes(),
        0,
        "admission leak after load run"
    );
    server.join();

    let batch = (cfg.clients >= 2).then(|| {
        let (unbatched_ops_s, _, _) = run_batch_arm(cfg, 1);
        let (batched_ops_s, batches, batched_jobs) =
            run_batch_arm(cfg, ServeConfig::new("-").batch_max);
        BatchComparison {
            unbatched_ops_s,
            batched_ops_s,
            batches,
            batched_jobs,
        }
    });

    ServeBenchReport {
        results,
        batch,
        seed: cfg.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> LoadConfig {
        LoadConfig {
            clients: 2,
            ops: 6,
            rate: 200.0,
            workers: 2,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn harness_answers_every_request_in_every_cell() {
        let report = run(&small_cfg());
        assert_eq!(report.results.len(), 4, "2 mixes x 2 modes");
        assert!(report.all_answered(), "lost responses");
        for r in &report.results {
            assert_eq!(r.completed, r.submitted, "unexpected failures: {r:?}");
            assert_eq!(r.latencies_us.len() as u64, r.submitted);
            assert!(r.percentile_us(50.0) <= r.percentile_us(99.0));
            assert!(r.throughput() > 0.0);
        }
        assert!(report.gate_throughput() > 0.0);
        let batch = report.batch.as_ref().expect("batch A/B with 2 clients");
        assert!(batch.unbatched_ops_s > 0.0 && batch.batched_ops_s > 0.0);
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        let cfg = small_cfg();
        assert_eq!(
            requests_for(Mix::ReadHeavy, &cfg, 1),
            requests_for(Mix::ReadHeavy, &cfg, 1)
        );
        assert_ne!(
            requests_for(Mix::ReadHeavy, &cfg, 0),
            requests_for(Mix::ReadHeavy, &cfg, 1),
            "clients must not submit identical streams"
        );
        assert_ne!(
            requests_for(Mix::ReadHeavy, &cfg, 0),
            requests_for(Mix::RapidGrow, &cfg, 0),
            "mixes must differ"
        );
    }

    #[test]
    fn rapid_grow_actually_grows() {
        let cfg = LoadConfig {
            ops: 16,
            ..LoadConfig::default()
        };
        let reqs = requests_for(Mix::RapidGrow, &cfg, 0);
        let first = reqs.first().expect("first").seq_a.len();
        let last = reqs.last().expect("last").seq_a.len();
        assert!(last > first * 3, "ramp too flat: {first} -> {last}");
    }

    #[test]
    fn json_report_has_the_expected_shape() {
        let report = ServeBenchReport {
            results: vec![LoadResult {
                mix: Mix::ReadHeavy,
                mode: Mode::Closed,
                clients: 1,
                submitted: 2,
                completed: 2,
                failed: 0,
                rejected: 0,
                wall: Duration::from_millis(10),
                latencies_us: vec![100, 200],
            }],
            batch: Some(BatchComparison {
                unbatched_ops_s: 100.0,
                batched_ops_s: 340.0,
                batches: 12,
                batched_jobs: 60,
            }),
            seed: 7,
        };
        assert!((report.batch.as_ref().expect("batch").speedup() - 3.4).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"serve\""));
        assert!(json.contains("\"read-heavy\""));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"batch_comparison\""));
        assert!(json.contains("\"speedup\": 3.40"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.all_answered());
    }
}

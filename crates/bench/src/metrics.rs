//! The `flsa bench metrics` suite: what does the always-on metrics layer
//! cost?
//!
//! Two measurements, because the layer has two failure modes. The
//! record-path nanobenches time a single `Counter::add` / `Gauge::set` /
//! `Histogram::record` in a tight loop — these must stay at a few
//! nanoseconds or the instruments are too expensive to leave in hot
//! loops. The end-to-end comparison runs the same parallel FastLSA
//! alignment with and without a registry attached and reports the
//! relative wall-clock cost; `flsa bench metrics --gate F` turns that
//! into a regression gate (DESIGN.md §12 budgets it at ≤2%). Like the
//! kernel sweep, the JSON report stamps the host's CPU features and the
//! auto-picked backend so numbers are comparable across machines.
//!
//! The gated statistic is the **minimum pairwise overhead**: plain and
//! metered runs alternate, and the overhead is the smallest
//! `(metered_i - plain_i) / plain_i` across adjacent pairs. A genuine
//! regression is a cost added to *every* metered run, so it raises all
//! pairs and the minimum with them; a one-sided scheduler or thermal
//! spike inflates some pairs but leaves the cleanest pair honest —
//! which keeps the gate meaningful on noisy shared hardware where
//! best-vs-best of independent sets flakes.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use fastlsa_core::{align_opts, AlignOptions, FastLsaConfig};
use flsa_dp::{detected_cpu_features, KernelBackend, Metrics};
use flsa_metrics::{names, Registry};
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::{Alphabet, Sequence};

/// Measured ns/op for each record-path instrument.
#[derive(Debug, Clone, Copy)]
pub struct RecordPathCost {
    pub counter_ns: f64,
    pub gauge_ns: f64,
    pub histogram_ns: f64,
}

/// The full overhead report behind `BENCH_metrics.json`.
#[derive(Debug, Clone)]
pub struct MetricsBenchReport {
    /// Square problem side of the end-to-end comparison.
    pub len: usize,
    /// Timed repetitions per configuration (best kept).
    pub reps: usize,
    /// Worker threads of the parallel align.
    pub threads: usize,
    pub record: RecordPathCost,
    /// Best end-to-end wall time without a registry attached, ns.
    pub plain_best_ns: u64,
    /// Best end-to-end wall time with the full registry attached, ns.
    pub metered_best_ns: u64,
    /// Per-pair `(metered - plain) / plain` percentages, one per rep.
    pub pair_overheads_pct: Vec<f64>,
    /// DPM cells one metered run computed (scale context for the times).
    pub cells: u64,
    /// SIMD features the CPU reports (from `is_x86_feature_detected!`).
    pub cpu_features: Vec<&'static str>,
    /// The backend [`KernelBackend::detect_best`] would pick.
    pub best_backend: KernelBackend,
}

impl MetricsBenchReport {
    /// End-to-end cost of metrics-on relative to metrics-off, percent:
    /// the minimum pairwise overhead (see the module docs for why the
    /// minimum is the noise-robust gate statistic). Negative values mean
    /// the difference drowned in run-to-run noise.
    pub fn overhead_pct(&self) -> f64 {
        let min_pair = self
            .pair_overheads_pct
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if min_pair.is_finite() {
            return min_pair;
        }
        // No pair data (hand-built report): fall back to best-vs-best.
        if self.plain_best_ns == 0 {
            return 0.0;
        }
        (self.metered_best_ns as f64 - self.plain_best_ns as f64) / self.plain_best_ns as f64
            * 100.0
    }

    /// The JSON body of `BENCH_metrics.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"bench\": \"metrics\",\n  \"cpu_features\": [");
        for (i, f) in self.cpu_features.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{f}\""));
        }
        out.push_str(&format!(
            "],\n  \"best_backend\": \"{}\",\n",
            self.best_backend.name()
        ));
        out.push_str(&format!(
            "  \"record_path_ns\": {{\"counter\": {:.3}, \"gauge\": {:.3}, \
             \"histogram\": {:.3}}},\n",
            self.record.counter_ns, self.record.gauge_ns, self.record.histogram_ns
        ));
        out.push_str(&format!(
            "  \"align\": {{\"len\": {}, \"threads\": {}, \"reps\": {}, \"cells\": {}, \
             \"plain_best_ns\": {}, \"metered_best_ns\": {}, \"pair_overheads_pct\": [",
            self.len, self.threads, self.reps, self.cells, self.plain_best_ns, self.metered_best_ns,
        ));
        for (i, p) in self.pair_overheads_pct.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{p:.3}"));
        }
        out.push_str(&format!(
            "], \"overhead_pct\": {:.3}}}\n}}\n",
            self.overhead_pct()
        ));
        out
    }

    /// A plain-text table of both measurements.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(&["measurement", "value"]);
        t.row(&[
            "counter record".into(),
            format!("{:.2} ns/op", self.record.counter_ns),
        ]);
        t.row(&[
            "gauge record".into(),
            format!("{:.2} ns/op", self.record.gauge_ns),
        ]);
        t.row(&[
            "histogram record".into(),
            format!("{:.2} ns/op", self.record.histogram_ns),
        ]);
        t.row(&[
            format!("align {}x{} P{} off", self.len, self.len, self.threads),
            format!("{:.1} ms", self.plain_best_ns as f64 / 1e6),
        ]);
        t.row(&[
            format!("align {}x{} P{} on", self.len, self.len, self.threads),
            format!("{:.1} ms", self.metered_best_ns as f64 / 1e6),
        ]);
        t.row(&[
            "end-to-end overhead".into(),
            format!("{:+.2}%", self.overhead_pct()),
        ]);
        t.render()
    }
}

/// Times the three record paths in tight loops. The loop bodies are
/// `black_box`ed on both sides so the compiler can neither hoist the
/// operand nor discard the result.
fn bench_record_path() -> RecordPathCost {
    const N: u64 = 4_000_000;
    let reg = Registry::new();

    let c = reg.counter(names::CELLS_TOTAL);
    let start = Instant::now();
    for i in 0..N {
        c.add(black_box(i & 7));
    }
    let counter_ns = start.elapsed().as_nanos() as f64 / N as f64;
    black_box(c.get());

    let g = reg.gauge(names::MEM_RESERVED_BYTES);
    let start = Instant::now();
    for i in 0..N {
        g.set(black_box(i as i64));
    }
    let gauge_ns = start.elapsed().as_nanos() as f64 / N as f64;
    black_box(g.get());

    let h = reg.histogram(names::TILE_NS);
    let start = Instant::now();
    for i in 0..N {
        h.record(black_box(i.wrapping_mul(2654435761)));
    }
    let histogram_ns = start.elapsed().as_nanos() as f64 / N as f64;
    black_box(reg.snapshot());

    RecordPathCost {
        counter_ns,
        gauge_ns,
        histogram_ns,
    }
}

/// One end-to-end align; returns (wall ns, cells computed).
fn timed_align(
    sa: &Sequence,
    sb: &Sequence,
    scheme: &ScoringScheme,
    cfg: FastLsaConfig,
    registry: Option<&Arc<Registry>>,
) -> (u64, u64) {
    let metrics = match registry {
        Some(reg) => Metrics::new().with_registry(reg),
        None => Metrics::new(),
    };
    let opts = AlignOptions {
        registry: registry.cloned(),
        ..AlignOptions::default()
    };
    let start = Instant::now();
    let r = align_opts(sa, sb, scheme, cfg, &opts, &metrics).expect("bench align");
    let ns = start.elapsed().as_nanos() as u64;
    black_box(r.score);
    (ns, metrics.snapshot().cells_computed)
}

/// Runs the suite: record-path nanobenches, then `reps` interleaved
/// metrics-off / metrics-on parallel aligns of a `len`×`len` DNA
/// problem (best time kept per configuration, one untimed warmup).
pub fn run(len: usize, reps: usize, threads: usize) -> MetricsBenchReport {
    let record = bench_record_path();
    let scheme = ScoringScheme::dna_default();
    let (sa, sb) = homologous_pair("bench", &Alphabet::dna(), len, 0.8, 0xbc)
        .expect("bench sequence generation");
    let mut cfg = FastLsaConfig::new(8, 1 << 20);
    if threads > 1 {
        cfg = cfg.with_threads(threads);
    }

    // Warmup: populates allocator and arena pools for both paths.
    timed_align(&sa, &sb, &scheme, cfg, None);

    let mut plain_best = u64::MAX;
    let mut metered_best = u64::MAX;
    let mut pair_overheads_pct = Vec::with_capacity(reps.max(1));
    let mut cells = 0u64;
    for _ in 0..reps.max(1) {
        // Interleaved so clock drift and thermal state hit both sides,
        // and paired so each rep yields its own overhead estimate.
        let (p, _) = timed_align(&sa, &sb, &scheme, cfg, None);
        plain_best = plain_best.min(p);
        let reg = Arc::new(Registry::new());
        let (m, c) = timed_align(&sa, &sb, &scheme, cfg, Some(&reg));
        metered_best = metered_best.min(m);
        pair_overheads_pct.push((m as f64 - p as f64) / p as f64 * 100.0);
        cells = c;
    }

    MetricsBenchReport {
        len,
        reps,
        threads,
        record,
        plain_best_ns: plain_best,
        metered_best_ns: metered_best,
        pair_overheads_pct,
        cells,
        cpu_features: detected_cpu_features(),
        best_backend: KernelBackend::detect_best(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_path_costs_are_finite_and_small() {
        let r = bench_record_path();
        for v in [r.counter_ns, r.gauge_ns, r.histogram_ns] {
            assert!(v.is_finite() && v > 0.0, "{v}");
            // Generous CI bound; the committed report is the real gate.
            assert!(v < 1_000.0, "record path took {v} ns/op");
        }
    }

    #[test]
    fn end_to_end_report_has_sane_shape() {
        let report = run(256, 1, 2);
        assert!(report.plain_best_ns > 0);
        assert!(report.metered_best_ns > 0);
        assert!(report.cells >= 256 * 256);
        assert!(report.overhead_pct().is_finite());
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"metrics\""));
        assert!(json.contains("\"overhead_pct\""));
        assert!(json.contains("\"best_backend\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = report.render();
        assert!(table.contains("end-to-end overhead"), "{table}");
    }
}

//! The `flsa bench shard` harness: what does multi-process execution
//! cost, and what does surviving chaos cost on top?
//!
//! Three scenario groups, all on the same seeded homologous pair and
//! all verified **byte-identical** to the sequential engine:
//! - **sequential** — the in-process oracle and the timing baseline.
//! - **shard-clean** — the coordinator with a healthy worker fleet;
//!   its gap to sequential is the protocol + process overhead.
//! - **chaos-`<plan>`** — a slice of the seeded
//!   [`flsa_fault::shard::ShardFaultPlan`] matrix (worker SIGKILLs,
//!   hangs, CRC-corrupted results, mid-frame stalls); the gap to the
//!   clean sharded run is the recovery overhead, and `--gate` turns the
//!   worst case into a regression gate.
//!
//! The harness runs the real worker binary (the caller supplies the
//! command, normally `flsa shard-worker`), so the numbers include real
//! `fork`/`exec`, real pipes, and real kills.

use std::time::Duration;

use fastlsa_core::{align_with, FastLsaConfig};
use flsa_dp::{AlignResult, Metrics};
use flsa_fault::shard::ShardFaultPlan;
use flsa_scoring::tables;
use flsa_seq::generate::homologous_pair;
use flsa_shard::{align_sharded, ShardOptions, ShardPolicy};

/// Gap penalty used throughout the harness.
const GAP: i32 = -3;

/// Shard-bench parameters.
#[derive(Debug, Clone)]
pub struct ShardBenchConfig {
    /// Square problem side.
    pub len: usize,
    /// Timed repetitions for the sequential and clean sharded runs,
    /// best kept (chaos plans run once — their wall-clock is dominated
    /// by deterministic detection windows, not noise).
    pub reps: usize,
    /// Worker processes for the clean sharded run.
    pub shards: usize,
    /// How many consecutive seeds of the chaos matrix to run.
    pub chaos_plans: usize,
    /// First chaos seed.
    pub seed: u64,
    /// Worker command line (program + leading args); the CLI passes
    /// its own binary with the `shard-worker` subcommand.
    pub worker_cmd: Vec<String>,
}

impl Default for ShardBenchConfig {
    fn default() -> Self {
        ShardBenchConfig {
            len: 600,
            reps: 3,
            shards: 4,
            chaos_plans: 8,
            seed: 0,
            worker_cmd: Vec::new(),
        }
    }
}

/// One timed scenario.
#[derive(Debug, Clone)]
pub struct ShardBenchRow {
    /// `sequential`, `shard-clean`, or a chaos plan label.
    pub scenario: String,
    /// Worker slots the scenario ran with (0 = in-process).
    pub shards: usize,
    /// Wall-clock (best of reps where reps apply).
    pub wall: Duration,
    /// Score and path match the sequential oracle exactly.
    pub identical: bool,
}

/// The full report.
#[derive(Debug, Clone)]
pub struct ShardBenchReport {
    /// One row per scenario, sequential first.
    pub rows: Vec<ShardBenchRow>,
    /// First chaos seed (the report is reproducible given it).
    pub seed: u64,
    /// Problem side.
    pub len: usize,
}

impl ShardBenchReport {
    /// True when every scenario reproduced the oracle byte-for-byte.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Worst chaos wall-clock in milliseconds — how long the
    /// coordinator's slowest recovery took end to end. An absolute
    /// figure, not a ratio against the clean run: chaos cost is
    /// dominated by fixed detection windows (heartbeat staleness, task
    /// deadlines), which do not scale with problem size the way the
    /// clean wall-clock does. 0 when the report has no chaos rows.
    pub fn worst_chaos_ms(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.scenario.starts_with("chaos-"))
            .map(|r| r.wall.as_secs_f64() * 1e3)
            .fold(0.0, f64::max)
    }

    /// The JSON body of `BENCH_shard.json`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"bench\": \"shard\",\n  \"seed\": {},\n  \"len\": {},\n  \"results\": [\n",
            self.seed, self.len
        );
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"shards\": {}, \"wall_ms\": {:.1}, \
                 \"identical\": {}}}{}\n",
                r.scenario,
                r.shards,
                r.wall.as_secs_f64() * 1e3,
                r.identical,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A plain-text table of the report.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(&["scenario", "shards", "wall ms", "identical"]);
        for r in &self.rows {
            t.row(&[
                r.scenario.clone(),
                format!("{}", r.shards),
                crate::ms(r.wall),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
        t.render()
    }
}

/// Detection windows tuned for bench inputs, mirroring the chaos
/// matrix's: hangs and stalls are reclaimed in a quarter second so a
/// chaos row measures recovery, not default production timeouts.
fn chaos_policy() -> ShardPolicy {
    ShardPolicy {
        task_timeout: Duration::from_millis(500),
        heartbeat_ms: 5,
        heartbeat_timeout: Duration::from_millis(250),
        backoff: Duration::from_millis(2),
        ..ShardPolicy::default()
    }
}

/// Compares a run against the oracle.
fn matches(oracle: &AlignResult, got: &AlignResult) -> bool {
    oracle.score == got.score && oracle.path == got.path
}

/// Runs the whole harness. `Err` carries a description of the first
/// run that failed outright (a diverging run is reported as a
/// non-`identical` row instead, so the gate can name it).
pub fn run(cfg: &ShardBenchConfig) -> Result<ShardBenchReport, String> {
    let scheme = tables::scheme_by_name("dna", GAP).ok_or("dna scheme missing")?;
    let (a, b) = homologous_pair("bench", scheme.alphabet(), cfg.len, 0.8, cfg.seed ^ 0xB3)
        .map_err(|e| e.to_string())?;
    let grid = FastLsaConfig::new(8, 1 << 14);

    let mut oracle = None;
    let mut best_seq = Duration::MAX;
    for _ in 0..cfg.reps {
        let (r, wall) = crate::time(|| align_with(&a, &b, &scheme, grid, &Metrics::new()));
        let r = r.map_err(|e| format!("sequential baseline failed: {e}"))?;
        best_seq = best_seq.min(wall);
        oracle = Some(r);
    }
    let oracle = oracle.ok_or("reps must be >= 1")?;
    let mut rows = vec![ShardBenchRow {
        scenario: "sequential".to_string(),
        shards: 0,
        wall: best_seq,
        identical: true,
    }];

    let mut best_clean = Duration::MAX;
    let mut clean_ok = true;
    for _ in 0..cfg.reps {
        let opts = ShardOptions::new(cfg.shards, cfg.worker_cmd.clone());
        let (r, wall) =
            crate::time(|| align_sharded(&a, &b, "dna", GAP, grid, &opts, &Metrics::new()));
        let r = r.map_err(|e| format!("clean sharded run failed: {e}"))?;
        best_clean = best_clean.min(wall);
        clean_ok &= matches(&oracle, &r);
    }
    rows.push(ShardBenchRow {
        scenario: "shard-clean".to_string(),
        shards: cfg.shards,
        wall: best_clean,
        identical: clean_ok,
    });

    for seed in cfg.seed..cfg.seed + cfg.chaos_plans as u64 {
        let plan = ShardFaultPlan::from_seed(seed);
        let mut opts = ShardOptions::new(plan.shards, cfg.worker_cmd.clone());
        opts.worker_faults = plan.worker_faults();
        opts.refault_respawns = plan.refault_respawns;
        opts.policy = chaos_policy();
        let (r, wall) =
            crate::time(|| align_sharded(&a, &b, "dna", GAP, grid, &opts, &Metrics::new()));
        let r = r.map_err(|e| format!("chaos plan {} failed: {e}", plan.label()))?;
        rows.push(ShardBenchRow {
            scenario: format!("chaos-{}@{}", plan.kind.name(), plan.phase.name()),
            shards: plan.shards,
            wall,
            identical: matches(&oracle, &r),
        });
    }

    Ok(ShardBenchReport {
        rows,
        seed: cfg.seed,
        len: cfg.len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(rows: Vec<ShardBenchRow>) -> ShardBenchReport {
        ShardBenchReport {
            rows,
            seed: 0,
            len: 600,
        }
    }

    fn row(scenario: &str, wall_ms: u64, identical: bool) -> ShardBenchRow {
        ShardBenchRow {
            scenario: scenario.to_string(),
            shards: 4,
            wall: Duration::from_millis(wall_ms),
            identical,
        }
    }

    #[test]
    fn worst_chaos_is_the_slowest_chaos_row() {
        let report = report_with(vec![
            row("sequential", 10, true),
            row("shard-clean", 20, true),
            row("chaos-worker-kill@early", 30, true),
            row("chaos-worker-hang@late", 50, true),
        ]);
        assert!((report.worst_chaos_ms() - 50.0).abs() < 1e-9);
        assert!(report.all_identical());
    }

    #[test]
    fn no_chaos_rows_means_no_recovery_claim() {
        let report = report_with(vec![row("sequential", 10, true)]);
        assert_eq!(report.worst_chaos_ms(), 0.0);
    }

    #[test]
    fn divergence_fails_the_identity_check() {
        let report = report_with(vec![
            row("shard-clean", 20, true),
            row("chaos-corrupt-result@mid", 25, false),
        ]);
        assert!(!report.all_identical());
        assert!(report.render().contains("NO"));
    }

    #[test]
    fn json_report_has_the_expected_shape() {
        let report = report_with(vec![
            row("sequential", 10, true),
            row("shard-clean", 20, true),
        ]);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"shard\""));
        assert!(json.contains("\"shard-clean\""));
        assert!(json.contains("\"identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}

//! Criterion bench for experiment E4: sequential FM vs Hirschberg vs
//! FastLSA across problem sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastlsa_core::FastLsaConfig;
use flsa_dp::Metrics;
use flsa_fullmatrix::needleman_wunsch;
use flsa_hirschberg::{hirschberg_with, HirschbergConfig};
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;
use std::hint::black_box;

fn bench_sequential(c: &mut Criterion) {
    let scheme = ScoringScheme::dna_default();
    let mut group = c.benchmark_group("sequential");
    group.sample_size(10);
    for &n in &[512usize, 1024, 2048] {
        let (a, b) = homologous_pair("bench", &Alphabet::dna(), n, 0.8, 7).unwrap();
        group.throughput(Throughput::Elements((a.len() * b.len()) as u64));

        group.bench_with_input(BenchmarkId::new("full-matrix", n), &n, |bch, _| {
            bch.iter(|| {
                let m = Metrics::new();
                black_box(needleman_wunsch(&a, &b, &scheme, &m).score)
            })
        });
        group.bench_with_input(BenchmarkId::new("hirschberg", n), &n, |bch, _| {
            bch.iter(|| {
                let m = Metrics::new();
                let cfg = HirschbergConfig {
                    base_cells: 1 << 12,
                };
                black_box(hirschberg_with(&a, &b, &scheme, cfg, &m).score)
            })
        });
        group.bench_with_input(BenchmarkId::new("fastlsa-k8", n), &n, |bch, _| {
            bch.iter(|| {
                let m = Metrics::new();
                let cfg = FastLsaConfig::new(8, 1 << 16);
                black_box(
                    fastlsa_core::align_with(&a, &b, &scheme, cfg, &m)
                        .unwrap()
                        .score,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);

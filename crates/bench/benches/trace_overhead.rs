//! The zero-cost guard for tracing: sequential FastLSA with no recorder
//! attached must run at the same speed as before the instrumentation
//! existed (the disabled path is one `Option` check per kernel call), and
//! the recorder-attached run shows what enabling tracing actually costs.
//!
//! Compare the `none` and `recorder` medians: `none` must stay within
//! noise (±2%) of historical `sequential/fastlsa-k8` numbers, while
//! `recorder` is allowed to pay for its event pushes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastlsa_core::FastLsaConfig;
use flsa_dp::Metrics;
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;
use flsa_trace::Recorder;
use std::hint::black_box;
use std::sync::Arc;

fn bench_trace_overhead(c: &mut Criterion) {
    let scheme = ScoringScheme::dna_default();
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    for &n in &[1024usize, 2048] {
        let (a, b) = homologous_pair("bench", &Alphabet::dna(), n, 0.8, 7).unwrap();
        group.throughput(Throughput::Elements((a.len() * b.len()) as u64));

        group.bench_with_input(BenchmarkId::new("none", n), &n, |bch, _| {
            bch.iter(|| {
                let m = Metrics::new();
                let cfg = FastLsaConfig::new(8, 1 << 16);
                black_box(
                    fastlsa_core::align_with(&a, &b, &scheme, cfg, &m)
                        .unwrap()
                        .score,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("recorder", n), &n, |bch, _| {
            bch.iter(|| {
                let m = Metrics::with_recorder(Arc::new(Recorder::new()));
                let cfg = FastLsaConfig::new(8, 1 << 16);
                black_box(
                    fastlsa_core::align_with(&a, &b, &scheme, cfg, &m)
                        .unwrap()
                        .score,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);

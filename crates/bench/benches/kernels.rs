//! Criterion bench for the DP kernels underlying every aligner: full
//! fill vs last-row/col scan vs packed-direction fill, plus the
//! vectorized backend sweep (`flsa bench kernels` is the JSON-emitting
//! counterpart of the `kernel_backends` group).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flsa_dp::kernel::{fill_dir, fill_full, fill_last_row_col};
use flsa_dp::{Boundary, Kernel, KernelBackend, Metrics};
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::random_sequence;
use flsa_seq::Alphabet;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let scheme = ScoringScheme::dna_default();
    let n = 1024;
    let a = random_sequence("a", &Alphabet::dna(), n, 1);
    let b = random_sequence("b", &Alphabet::dna(), n, 2);
    let bound = Boundary::global(n, n, -10);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.throughput(Throughput::Elements((n * n) as u64));

    group.bench_function("fill_full", |bch| {
        bch.iter(|| {
            let m = Metrics::new();
            black_box(fill_full(
                a.codes(),
                b.codes(),
                &bound.top,
                &bound.left,
                &scheme,
                &m,
            ))
        })
    });
    group.bench_function("fill_last_row_col", |bch| {
        let mut bottom = vec![0i32; n + 1];
        let mut right = vec![0i32; n + 1];
        bch.iter(|| {
            let m = Metrics::new();
            fill_last_row_col(
                a.codes(),
                b.codes(),
                &bound.top,
                &bound.left,
                &scheme,
                &mut bottom,
                Some(&mut right),
                &m,
            );
            black_box(bottom[n])
        })
    });
    group.bench_function("fill_last_row_col_antidiagonal", |bch| {
        let mut bottom = vec![0i32; n + 1];
        let mut right = vec![0i32; n + 1];
        bch.iter(|| {
            let m = Metrics::new();
            flsa_dp::antidiagonal::fill_last_row_col_antidiagonal(
                a.codes(),
                b.codes(),
                &bound.top,
                &bound.left,
                &scheme,
                &mut bottom,
                Some(&mut right),
                &m,
            );
            black_box(bottom[n])
        })
    });
    group.bench_function("fill_dir", |bch| {
        bch.iter(|| {
            let m = Metrics::new();
            black_box(fill_dir(a.codes(), b.codes(), &bound.top, &bound.left, &scheme, &m).1[n])
        })
    });
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    let scheme = ScoringScheme::dna_default();
    let n = 1024;
    let a = random_sequence("a", &Alphabet::dna(), n, 1);
    let b = random_sequence("b", &Alphabet::dna(), n, 2);
    let bound = Boundary::global(n, n, -10);

    let mut group = c.benchmark_group("kernel_backends");
    group.sample_size(20);
    group.throughput(Throughput::Elements((n * n) as u64));

    for backend in KernelBackend::available() {
        let kernel = Kernel::try_new(backend).expect("available backend");
        group.bench_function(backend.name(), |bch| {
            let mut bottom = vec![0i32; n + 1];
            bch.iter(|| {
                let m = Metrics::new();
                kernel.fill_last_row(
                    a.codes(),
                    b.codes(),
                    &bound.top,
                    &bound.left,
                    &scheme,
                    &mut bottom,
                    &m,
                );
                black_box(bottom[n])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_backends);
criterion_main!(benches);

//! Criterion bench for experiment E5: FastLSA runtime vs the grid
//! division factor `k` at a fixed problem size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastlsa_core::FastLsaConfig;
use flsa_dp::Metrics;
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;
use std::hint::black_box;

fn bench_ksweep(c: &mut Criterion) {
    let scheme = ScoringScheme::dna_default();
    let n = 2048;
    let (a, b) = homologous_pair("bench", &Alphabet::dna(), n, 0.8, 7).unwrap();
    let mut group = c.benchmark_group("ksweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    for &k in &[2usize, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, &k| {
            bch.iter(|| {
                let m = Metrics::new();
                let cfg = FastLsaConfig::new(k, 1 << 14);
                black_box(
                    fastlsa_core::align_with(&a, &b, &scheme, cfg, &m)
                        .unwrap()
                        .score,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ksweep);
criterion_main!(benches);

//! Criterion bench for experiment E7: parallel FastLSA wall time vs
//! thread count.
//!
//! On a single-core container the wall-time curve is flat (the schedule
//! replay in `paper speedup` reproduces the paper's speedup figure
//! instead); this bench still exercises the real multithreaded path and
//! measures its overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastlsa_core::FastLsaConfig;
use flsa_dp::Metrics;
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;
use std::hint::black_box;

fn bench_parallel(c: &mut Criterion) {
    let scheme = ScoringScheme::dna_default();
    let n = 2048;
    let (a, b) = homologous_pair("bench", &Alphabet::dna(), n, 0.8, 7).unwrap();
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, &p| {
            bch.iter(|| {
                let m = Metrics::new();
                let cfg = FastLsaConfig::new(8, 1 << 16).with_threads(p);
                black_box(
                    fastlsa_core::align_with(&a, &b, &scheme, cfg, &m)
                        .unwrap()
                        .score,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

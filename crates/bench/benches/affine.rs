//! Criterion bench for the affine-gap extension tiers: full-matrix
//! Gotoh vs linear-space Myers–Miller vs affine FastLSA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastlsa_core::FastLsaConfig;
use flsa_dp::Metrics;
use flsa_fullmatrix::gotoh;
use flsa_hirschberg::myers_miller_affine;
use flsa_scoring::{tables, GapModel, ScoringScheme};
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;
use std::hint::black_box;

fn bench_affine(c: &mut Criterion) {
    let scheme = ScoringScheme::new(tables::dna_default(), GapModel::affine(-12, -2));
    let mut group = c.benchmark_group("affine");
    group.sample_size(10);
    for &n in &[512usize, 1024] {
        let (a, b) = homologous_pair("bench", &Alphabet::dna(), n, 0.8, 13).unwrap();
        group.throughput(Throughput::Elements((a.len() * b.len()) as u64));
        group.bench_with_input(BenchmarkId::new("gotoh", n), &n, |bch, _| {
            bch.iter(|| {
                let m = Metrics::new();
                black_box(gotoh(&a, &b, &scheme, &m).score)
            })
        });
        group.bench_with_input(BenchmarkId::new("myers-miller", n), &n, |bch, _| {
            bch.iter(|| {
                let m = Metrics::new();
                black_box(myers_miller_affine(&a, &b, &scheme, &m).score)
            })
        });
        group.bench_with_input(BenchmarkId::new("fastlsa-affine-k8", n), &n, |bch, _| {
            bch.iter(|| {
                let m = Metrics::new();
                let cfg = FastLsaConfig::new(8, 1 << 14);
                black_box(
                    fastlsa_core::align_affine(&a, &b, &scheme, cfg, &m)
                        .unwrap()
                        .score,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_affine);
criterion_main!(benches);

//! Deterministic point-in-time snapshots and their query helpers.

/// A deterministic copy of every metric in a [`crate::Registry`]:
/// each kind's entries sorted by name, values exact (`u64`/`i64`, no
/// floats), so two snapshots of identical state compare equal and both
/// export formats round-trip losslessly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Every histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// One histogram's merged contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (exact, not bucketized).
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending
    /// by bound.
    pub buckets: Vec<(u64, u64)>,
}

impl MetricsSnapshot {
    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A histogram's contents, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }

    /// Renders the snapshot as JSON.
    pub fn to_json(&self) -> String {
        crate::export::to_json(self)
    }

    /// Parses a snapshot previously rendered by [`Self::to_prometheus`].
    pub fn parse_prometheus(text: &str) -> Result<Self, String> {
        crate::export::parse_prometheus(text)
    }

    /// Parses a snapshot previously rendered by [`Self::to_json`].
    pub fn parse_json(text: &str) -> Result<Self, String> {
        crate::export::parse_json(text)
    }

    /// Parses either export format (JSON when the text starts with `{`).
    pub fn parse(text: &str) -> Result<Self, String> {
        if text.trim_start().starts_with('{') {
            Self::parse_json(text)
        } else {
            Self::parse_prometheus(text)
        }
    }

    /// Sorts each kind's entries by name; parsers call this so parsed
    /// snapshots compare equal to registry-produced ones.
    pub(crate) fn normalize(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

impl HistogramSnapshot {
    /// Mean of the recorded values (exact: `sum/count`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the inclusive upper bound
    /// of the bucket the rank lands in (so the true value is ≤ the
    /// returned bound, within one sub-bucket of resolution).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(ub, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return ub;
            }
        }
        self.buckets.last().map(|&(ub, _)| ub).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("flsa_a_total".into(), 3), ("flsa_b_total".into(), 9)],
            gauges: vec![("flsa_level".into(), -4)],
            histograms: vec![HistogramSnapshot {
                name: "flsa_lat_ns".into(),
                count: 3,
                sum: 60,
                buckets: vec![(15, 2), (31, 1)],
            }],
        }
    }

    #[test]
    fn lookup_helpers_find_entries() {
        let s = sample();
        assert_eq!(s.counter("flsa_b_total"), Some(9));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("flsa_level"), Some(-4));
        assert_eq!(s.histogram("flsa_lat_ns").unwrap().count, 3);
        assert!(!s.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let h = sample().histograms[0].clone();
        assert_eq!(h.quantile(0.0), 15);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        let empty = HistogramSnapshot {
            name: "e".into(),
            count: 0,
            sum: 0,
            buckets: vec![],
        };
        assert_eq!(empty.quantile(0.99), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn normalize_sorts_every_kind() {
        let mut s = sample();
        s.counters.reverse();
        s.normalize();
        assert_eq!(s, sample());
    }
}

//! The live progress-line model behind `flsa align --progress`.
//!
//! [`Progress`] binds the handful of registry handles a progress display
//! needs; [`Progress::line`] turns them plus an elapsed wall time into a
//! single bounded-width status line. The rendering itself is a pure
//! function ([`render`]) so it can be tested without a registry or a
//! terminal; the CLI owns the refresh loop and the `\r` plumbing.

use crate::{names, Counter, Gauge, Registry};

/// Cached handles for everything a progress line reports.
#[derive(Clone, Debug)]
pub struct Progress {
    cells: Counter,
    expected: Gauge,
    phase: Gauge,
    backend: Gauge,
}

impl Progress {
    /// Binds the progress handles in `reg` (registering them if the
    /// engine has not yet).
    pub fn new(reg: &Registry) -> Self {
        Progress {
            cells: reg.counter(names::CELLS_TOTAL),
            expected: reg.gauge(names::RUN_CELLS_EXPECTED),
            phase: reg.gauge(names::PHASE),
            backend: reg.gauge(names::KERNEL_BACKEND),
        }
    }

    /// Renders the current status line.
    pub fn line(&self, elapsed_secs: f64) -> String {
        render(
            elapsed_secs,
            self.cells.get(),
            self.expected.get().max(0) as u64,
            self.phase.get(),
            self.backend.get(),
        )
    }
}

/// Formats a cell count as a rate string.
fn fmt_rate(cells_per_sec: f64) -> String {
    if cells_per_sec >= 1e9 {
        format!("{:.2} Gcells/s", cells_per_sec / 1e9)
    } else if cells_per_sec >= 1e6 {
        format!("{:.1} Mcells/s", cells_per_sec / 1e6)
    } else if cells_per_sec >= 1e3 {
        format!("{:.1} kcells/s", cells_per_sec / 1e3)
    } else {
        format!("{cells_per_sec:.0} cells/s")
    }
}

fn fmt_eta(secs: f64) -> String {
    if secs >= 3600.0 {
        format!(
            "{:.0}h{:02.0}m",
            (secs / 3600.0).floor(),
            (secs % 3600.0) / 60.0
        )
    } else if secs >= 60.0 {
        format!("{:.0}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
    } else {
        format!("{secs:.0}s")
    }
}

/// Pure renderer: `expected` is the caller's estimate of total cells
/// (`m*n` is a lower bound — grid-cache refills push the true total
/// above it, so the percentage is capped below 100 until done).
pub fn render(elapsed_secs: f64, cells: u64, expected: u64, phase: i64, backend: i64) -> String {
    let rate = if elapsed_secs > 0.0 {
        cells as f64 / elapsed_secs
    } else {
        0.0
    };
    let pct = if expected > 0 {
        (cells as f64 / expected as f64 * 100.0).min(99.9)
    } else {
        0.0
    };
    let eta = if rate > 0.0 && expected > cells {
        fmt_eta((expected - cells) as f64 / rate)
    } else {
        "--".to_string()
    };
    format!(
        "{pct:5.1}%  {rate:>14}  eta {eta:>6}  phase={phase:<9}  backend={backend}",
        rate = fmt_rate(rate),
        phase = names::phase_name(phase),
        backend = names::backend_name(backend),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_rate_percent_eta_phase_and_backend() {
        let line = render(2.0, 50_000_000, 100_000_000, names::PHASE_GRID_FILL, 3);
        assert!(line.contains("50.0%"), "{line}");
        assert!(line.contains("25.0 Mcells/s"), "{line}");
        assert!(line.contains("eta"), "{line}");
        assert!(line.contains("2s"), "{line}");
        assert!(line.contains("phase=grid-fill"), "{line}");
        assert!(line.contains("backend=avx512"), "{line}");
    }

    #[test]
    fn render_is_defensive_about_zero_state() {
        let line = render(0.0, 0, 0, 0, -1);
        assert!(line.contains("0.0%"), "{line}");
        assert!(line.contains("eta     --"), "{line}");
        assert!(line.contains("phase=idle"), "{line}");
        assert!(line.contains("backend=?"), "{line}");
    }

    #[test]
    fn percent_is_capped_when_cells_exceed_the_estimate() {
        let line = render(10.0, 150, 100, names::PHASE_TRACEBACK, 0);
        assert!(line.contains("99.9%"), "{line}");
    }

    #[test]
    fn eta_formats_scale_with_magnitude() {
        assert_eq!(fmt_eta(42.0), "42s");
        assert_eq!(fmt_eta(90.0), "1m30s");
        assert_eq!(fmt_eta(3700.0), "1h02m");
        assert_eq!(fmt_rate(2.5e9), "2.50 Gcells/s");
        assert_eq!(fmt_rate(500.0), "500 cells/s");
    }

    #[test]
    fn progress_reads_live_registry_state() {
        let reg = Registry::new();
        let p = Progress::new(&reg);
        reg.counter(names::CELLS_TOTAL).add(10);
        reg.gauge(names::RUN_CELLS_EXPECTED).set(100);
        reg.gauge(names::PHASE).set(names::PHASE_BASE_CASE);
        reg.gauge(names::KERNEL_BACKEND).set(1);
        let line = p.line(1.0);
        assert!(line.contains("10.0%"), "{line}");
        assert!(line.contains("phase=base-case"), "{line}");
        assert!(line.contains("backend=sse4.1"), "{line}");
    }
}

//! Prometheus text-format and JSON exporters, and their inverses.
//!
//! Both formats carry exact integer values, so `parse(export(s)) == s`
//! for any registry-produced snapshot — the round-trip is a test
//! invariant, and the parsers double as readers for `flsa report
//! --metrics` and for folding a killed run's snapshot into a resume.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{escape, Json};
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// Renders `s` in Prometheus text exposition format: counters and
/// gauges as single samples, histograms as cumulative `_bucket{le=…}`
/// series plus `_sum`/`_count`, each preceded by a `# TYPE` line.
pub fn to_prometheus(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &s.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for h in &s.histograms {
        let _ = writeln!(out, "# TYPE {} histogram", h.name);
        let mut cum = 0u64;
        for &(ub, c) in &h.buckets {
            cum += c;
            let _ = writeln!(out, "{}_bucket{{le=\"{ub}\"}} {cum}", h.name);
        }
        let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
        let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
        let _ = writeln!(out, "{}_count {}", h.name, h.count);
    }
    out
}

/// Renders `s` as a JSON document with `counters`, `gauges` and
/// `histograms` objects (keys in snapshot order, i.e. sorted).
pub fn to_json(s: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", escape(name));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", escape(name));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, h) in s.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
            escape(&h.name),
            h.count,
            h.sum
        );
        for (j, (ub, c)) in h.buckets.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}[{ub}, {c}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n  }\n}\n");
    out
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// Parses the Prometheus text format produced by [`to_prometheus`].
pub fn parse_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
    let mut kinds: BTreeMap<String, Kind> = BTreeMap::new();
    let mut snap = MetricsSnapshot::default();
    // name -> (cumulative buckets, sum, count)
    type PartialHist = (Vec<(u64, u64)>, u64, u64);
    let mut hists: BTreeMap<String, PartialHist> = BTreeMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| err("missing metric name"))?;
            let kind = match it.next() {
                Some("counter") => Kind::Counter,
                Some("gauge") => Kind::Gauge,
                Some("histogram") => Kind::Histogram,
                _ => return Err(err("unknown metric kind")),
            };
            kinds.insert(name.to_string(), kind);
            if kind == Kind::Histogram {
                hists.entry(name.to_string()).or_default();
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("missing sample value"))?;
        if let Some((base, labels)) = name_part.split_once('{') {
            // Histogram bucket sample: <name>_bucket{le="…"} <cum>
            let hist = base
                .strip_suffix("_bucket")
                .filter(|h| kinds.get(*h) == Some(&Kind::Histogram))
                .ok_or_else(|| err("labelled sample for a non-histogram"))?;
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix("\"}"))
                .ok_or_else(|| err("malformed le label"))?;
            let cum: u64 = value_part.parse().map_err(|_| err("bad bucket count"))?;
            let entry = hists.entry(hist.to_string()).or_default();
            if le == "+Inf" {
                entry.2 = cum;
            } else {
                let ub: u64 = le.parse().map_err(|_| err("bad le bound"))?;
                entry.0.push((ub, cum));
            }
            continue;
        }
        if let Some(hist) = name_part
            .strip_suffix("_sum")
            .filter(|h| kinds.get(*h) == Some(&Kind::Histogram))
        {
            let sum: u64 = value_part.parse().map_err(|_| err("bad histogram sum"))?;
            hists.entry(hist.to_string()).or_default().1 = sum;
            continue;
        }
        if let Some(hist) = name_part
            .strip_suffix("_count")
            .filter(|h| kinds.get(*h) == Some(&Kind::Histogram))
        {
            let count: u64 = value_part.parse().map_err(|_| err("bad histogram count"))?;
            hists.entry(hist.to_string()).or_default().2 = count;
            continue;
        }
        match kinds.get(name_part) {
            Some(Kind::Counter) => {
                let v: u64 = value_part.parse().map_err(|_| err("bad counter value"))?;
                snap.counters.push((name_part.to_string(), v));
            }
            Some(Kind::Gauge) => {
                let v: i64 = value_part.parse().map_err(|_| err("bad gauge value"))?;
                snap.gauges.push((name_part.to_string(), v));
            }
            _ => return Err(err("sample without a preceding # TYPE")),
        }
    }

    for (name, (mut cum_buckets, sum, count)) in hists {
        cum_buckets.sort_by_key(|&(ub, _)| ub);
        let mut buckets = Vec::with_capacity(cum_buckets.len());
        let mut prev = 0u64;
        for (ub, cum) in cum_buckets {
            let c = cum
                .checked_sub(prev)
                .ok_or_else(|| format!("histogram {name}: non-cumulative buckets"))?;
            if c > 0 {
                buckets.push((ub, c));
            }
            prev = cum;
        }
        snap.histograms.push(HistogramSnapshot {
            name,
            count,
            sum,
            buckets,
        });
    }
    snap.normalize();
    Ok(snap)
}

/// Parses the JSON document produced by [`to_json`].
pub fn parse_json(text: &str) -> Result<MetricsSnapshot, String> {
    let doc = Json::parse(text)?;
    let mut snap = MetricsSnapshot::default();
    if let Some(members) = doc.get("counters").and_then(Json::entries) {
        for (name, v) in members {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("counter {name}: not a u64"))?;
            snap.counters.push((name.clone(), v));
        }
    }
    if let Some(members) = doc.get("gauges").and_then(Json::entries) {
        for (name, v) in members {
            let v = v
                .as_i64()
                .ok_or_else(|| format!("gauge {name}: not an i64"))?;
            snap.gauges.push((name.clone(), v));
        }
    }
    if let Some(members) = doc.get("histograms").and_then(Json::entries) {
        for (name, h) in members {
            let count = h
                .get("count")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram {name}: missing count"))?;
            let sum = h
                .get("sum")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram {name}: missing sum"))?;
            let mut buckets = Vec::new();
            for pair in h
                .get("buckets")
                .and_then(Json::items)
                .ok_or_else(|| format!("histogram {name}: missing buckets"))?
            {
                let pair = pair.items().ok_or("bucket entries are [ub, count] pairs")?;
                let (ub, c) = match pair {
                    [ub, c] => (ub.as_u64(), c.as_u64()),
                    _ => (None, None),
                };
                match (ub, c) {
                    (Some(ub), Some(c)) => buckets.push((ub, c)),
                    _ => return Err(format!("histogram {name}: malformed bucket")),
                }
            }
            snap.histograms.push(HistogramSnapshot {
                name: name.clone(),
                count,
                sum,
                buckets,
            });
        }
    }
    snap.normalize();
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, Registry};

    fn populated() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter(names::CELLS_TOTAL).add(123_456_789_012);
        reg.counter(names::TILES_TOTAL).add(7);
        reg.gauge(names::MEM_RESERVED_BYTES).set(-42);
        reg.gauge(names::MEM_PEAK_BYTES).set(1 << 40);
        let h = reg.histogram(names::TILE_NS);
        for v in [3u64, 9, 9, 1000, 123_456, 77_000_000] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn prometheus_round_trips_exactly() {
        let snap = populated();
        let text = snap.to_prometheus();
        let back = MetricsSnapshot::parse_prometheus(&text).unwrap();
        assert_eq!(back, snap, "prometheus text:\n{text}");
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = populated();
        let text = snap.to_json();
        let back = MetricsSnapshot::parse_json(&text).unwrap();
        assert_eq!(back, snap, "json:\n{text}");
    }

    #[test]
    fn parse_autodetects_format() {
        let snap = populated();
        assert_eq!(MetricsSnapshot::parse(&snap.to_json()).unwrap(), snap);
        assert_eq!(MetricsSnapshot::parse(&snap.to_prometheus()).unwrap(), snap);
    }

    #[test]
    fn prometheus_emits_cumulative_buckets_with_inf() {
        let snap = populated();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE flsa_tile_ns histogram"));
        assert!(text.contains("flsa_tile_ns_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("flsa_tile_ns_count 6"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let empty = MetricsSnapshot::default();
        assert_eq!(
            MetricsSnapshot::parse_prometheus(&empty.to_prometheus()).unwrap(),
            empty
        );
        assert_eq!(
            MetricsSnapshot::parse_json(&empty.to_json()).unwrap(),
            empty
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(MetricsSnapshot::parse_prometheus("flsa_x 1").is_err());
        assert!(MetricsSnapshot::parse_prometheus("# TYPE flsa_x counter\nflsa_x").is_err());
        assert!(MetricsSnapshot::parse_prometheus("# TYPE flsa_x widget\nflsa_x 1").is_err());
        assert!(MetricsSnapshot::parse_json("{\"counters\": {\"a\": -1}}").is_err());
        assert!(MetricsSnapshot::parse_json("nope").is_err());
    }

    #[test]
    fn histogram_with_zero_samples_round_trips() {
        let reg = Registry::new();
        let _ = reg.histogram(names::CHECKPOINT_FSYNC_NS);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].count, 0);
        assert_eq!(
            MetricsSnapshot::parse_prometheus(&snap.to_prometheus()).unwrap(),
            snap
        );
        assert_eq!(MetricsSnapshot::parse_json(&snap.to_json()).unwrap(), snap);
    }
}

//! The single authoritative namespace for metric names.
//!
//! Every metric the engine registers lives here as a constant, and lint
//! rule R7 (`flsa-check`) rejects inline string literals at
//! `counter("…")`/`gauge("…")`/`histogram("…")` call sites anywhere else
//! in the workspace. That keeps the Prometheus namespace collision-free
//! and greppable: this file *is* the catalogue of what the engine
//! exports.
//!
//! Conventions: `flsa_` prefix, `_total` suffix for counters, `_bytes` /
//! `_ns` unit suffixes, no dots or dashes (Prometheus name charset).

// --- DP layer (flsa-dp) -------------------------------------------------

/// DPM cells computed by fill kernels (counter).
pub const CELLS_TOTAL: &str = "flsa_cells_total";
/// Subset of cells computed inside base-case full-matrix solves (counter).
pub const CELLS_BASE_CASE_TOTAL: &str = "flsa_cells_base_case_total";
/// Fill-kernel invocations (counter).
pub const KERNEL_CALLS_TOTAL: &str = "flsa_kernel_calls_total";
/// FindPath traceback steps (counter).
pub const TRACEBACK_STEPS_TOTAL: &str = "flsa_traceback_steps_total";
/// Currently tracked auxiliary bytes (gauge, mirrors `Metrics::track_alloc`).
pub const TRACKED_BYTES: &str = "flsa_tracked_bytes";
/// High-water mark of tracked auxiliary bytes (gauge).
pub const TRACKED_PEAK_BYTES: &str = "flsa_tracked_peak_bytes";

/// Kernel backend currently in effect, as an index into [`BACKENDS`]
/// (gauge; `-1` = unknown).
pub const KERNEL_BACKEND: &str = "flsa_kernel_backend";

/// Known kernel backend names, index-aligned with
/// [`CELLS_BACKEND_TOTAL`] and with the [`KERNEL_BACKEND`] gauge value.
pub const BACKENDS: &[&str] = &["scalar", "sse4.1", "avx2", "avx512"];
/// Per-backend cell counters, index-aligned with [`BACKENDS`].
pub const CELLS_BACKEND_TOTAL: &[&str] = &[
    "flsa_cells_backend_scalar_total",
    "flsa_cells_backend_sse41_total",
    "flsa_cells_backend_avx2_total",
    "flsa_cells_backend_avx512_total",
];
/// Cells attributed to a backend this crate does not know by name.
pub const CELLS_BACKEND_OTHER_TOTAL: &str = "flsa_cells_backend_other_total";

/// Index of a backend name in [`BACKENDS`].
pub fn backend_index(name: &str) -> Option<usize> {
    BACKENDS.iter().position(|b| *b == name)
}

/// The per-backend cell counter for a backend name.
pub fn cells_for_backend(name: &str) -> &'static str {
    backend_index(name)
        .map(|i| CELLS_BACKEND_TOTAL[i])
        .unwrap_or(CELLS_BACKEND_OTHER_TOTAL)
}

/// Display name for a [`KERNEL_BACKEND`] gauge value.
pub fn backend_name(v: i64) -> &'static str {
    usize::try_from(v)
        .ok()
        .and_then(|i| BACKENDS.get(i).copied())
        .unwrap_or("?")
}

// --- Core engine (fastlsa-core) -----------------------------------------

/// Grid-cache blocks filled (counter; base cases count one block).
pub const BLOCKS_FILLED_TOTAL: &str = "flsa_blocks_filled_total";
/// Degradation-ladder rungs taken across the run (counter).
pub const DEGRADE_STEPS_TOTAL: &str = "flsa_degrade_steps_total";
/// Current FindPath recursion depth (frame-stack height, gauge).
pub const RECURSION_DEPTH: &str = "flsa_recursion_depth";
/// Peak FindPath recursion depth (gauge).
pub const RECURSION_DEPTH_PEAK: &str = "flsa_recursion_depth_peak";
/// Solver drive-loop iterations (counter).
pub const SOLVER_STEPS_TOTAL: &str = "flsa_solver_steps_total";
/// Current engine phase, one of the `PHASE_*` values (gauge).
pub const PHASE: &str = "flsa_phase";
/// Expected total DPM cells for the run (gauge; `m*n` lower bound set by
/// the caller, used for progress/ETA).
pub const RUN_CELLS_EXPECTED: &str = "flsa_run_cells_expected";

/// [`PHASE`] gauge values.
pub const PHASE_IDLE: i64 = 0;
pub const PHASE_GRID_FILL: i64 = 1;
pub const PHASE_BASE_CASE: i64 = 2;
pub const PHASE_TRACEBACK: i64 = 3;

/// Display name for a [`PHASE`] gauge value.
pub fn phase_name(v: i64) -> &'static str {
    match v {
        PHASE_GRID_FILL => "grid-fill",
        PHASE_BASE_CASE => "base-case",
        PHASE_TRACEBACK => "traceback",
        _ => "idle",
    }
}

// --- Memory governor ----------------------------------------------------

/// Configured byte budget (gauge; 0 = unbounded).
pub const MEM_BUDGET_BYTES: &str = "flsa_mem_budget_bytes";
/// Bytes currently reserved against the budget (gauge).
pub const MEM_RESERVED_BYTES: &str = "flsa_mem_reserved_bytes";
/// High-water mark of reserved bytes (gauge).
pub const MEM_PEAK_BYTES: &str = "flsa_mem_peak_bytes";
/// Reservations refused by the governor (counter).
pub const MEM_REFUSED_TOTAL: &str = "flsa_mem_refused_total";

// --- Kernel arena (flsa-dp, observed from the solver) -------------------

/// Bytes currently held by the kernel buffer arena (gauge).
pub const ARENA_HELD_BYTES: &str = "flsa_arena_held_bytes";
/// Buffers the arena had to allocate fresh (gauge, monotone per run).
pub const ARENA_FRESH_ALLOCS: &str = "flsa_arena_fresh_allocs";
/// Buffers served from the arena pool (gauge, monotone per run).
pub const ARENA_REUSES: &str = "flsa_arena_reuses";

// --- Wavefront pool (flsa-wavefront) ------------------------------------

/// Nanoseconds workers spent inside tile work closures (counter).
pub const WORKER_BUSY_NS_TOTAL: &str = "flsa_worker_busy_ns_total";
/// Nanoseconds workers spent parked waiting for a fill (counter).
pub const WORKER_IDLE_NS_TOTAL: &str = "flsa_worker_idle_ns_total";
/// Times a worker parked on the dispatch channel (counter).
pub const WORKER_PARKS_TOTAL: &str = "flsa_worker_parks_total";
/// Wavefront tiles executed (counter).
pub const TILES_TOTAL: &str = "flsa_tiles_total";
/// Tiles currently executing (gauge).
pub const TILES_INFLIGHT: &str = "flsa_tiles_inflight";
/// Peak tiles executing at once — the observable proxy for ready-queue
/// pressure (gauge).
pub const TILES_INFLIGHT_PEAK: &str = "flsa_tiles_inflight_peak";
/// Per-tile wall time in nanoseconds (histogram).
pub const TILE_NS: &str = "flsa_tile_ns";

// --- Checkpointing (flsa-checkpoint) ------------------------------------

/// Snapshots durably saved (counter).
pub const CHECKPOINT_SAVES_TOTAL: &str = "flsa_checkpoint_saves_total";
/// Encoded snapshot bytes written (counter).
pub const CHECKPOINT_BYTES_TOTAL: &str = "flsa_checkpoint_bytes_total";
/// Wall time of the durability portion of a save — fsync + rename + dir
/// fsync — in nanoseconds (histogram).
pub const CHECKPOINT_FSYNC_NS: &str = "flsa_checkpoint_fsync_ns";

// --- Alignment service (flsa-serve) -------------------------------------

/// Alignment requests accepted off the wire (counter).
pub const SERVE_REQUESTS_TOTAL: &str = "flsa_serve_requests_total";
/// Requests refused at admission — queue full or job estimate over the
/// byte budget (counter).
pub const SERVE_REJECTED_TOTAL: &str = "flsa_serve_rejected_total";
/// Jobs currently parked in the admission queue (gauge).
pub const SERVE_QUEUE_DEPTH: &str = "flsa_serve_queue_depth";
/// High-water mark of the admission queue (gauge).
pub const SERVE_QUEUE_DEPTH_PEAK: &str = "flsa_serve_queue_depth_peak";
/// Jobs currently executing on the worker pool (gauge).
pub const SERVE_INFLIGHT: &str = "flsa_serve_inflight_jobs";
/// Jobs that completed with a result (counter).
pub const SERVE_COMPLETED_TOTAL: &str = "flsa_serve_completed_total";
/// Jobs that terminated with a typed error (counter).
pub const SERVE_FAILED_TOTAL: &str = "flsa_serve_failed_total";
/// Execution retries after a contained worker panic (counter).
pub const SERVE_RETRIES_TOTAL: &str = "flsa_serve_retries_total";
/// Worker panics contained by the job harness (counter).
pub const SERVE_PANICS_TOTAL: &str = "flsa_serve_worker_panics_total";
/// Jobs whose deadline expired before completion (counter).
pub const SERVE_DEADLINE_EXPIRED_TOTAL: &str = "flsa_serve_deadline_expired_total";
/// Malformed frames answered with a typed protocol error (counter).
pub const SERVE_PROTOCOL_ERRORS_TOTAL: &str = "flsa_serve_protocol_errors_total";
/// Connections accepted over the daemon's lifetime (counter).
pub const SERVE_CONNECTIONS_TOTAL: &str = "flsa_serve_connections_total";
/// Jobs spooled durably for crash recovery (counter).
pub const SERVE_SPOOLED_TOTAL: &str = "flsa_serve_spooled_jobs_total";
/// Spooled jobs recovered (fresh or from a snapshot) at startup (counter).
pub const SERVE_RECOVERED_TOTAL: &str = "flsa_serve_recovered_jobs_total";
/// End-to-end request latency, arrival to response, in ns (histogram).
pub const SERVE_REQUEST_NS: &str = "flsa_serve_request_ns";
/// Time jobs spent parked waiting for admission bytes, in ns (histogram).
pub const SERVE_ADMIT_WAIT_NS: &str = "flsa_serve_admit_wait_ns";
/// Batched dispatches executed on the inter-sequence kernel (counter).
pub const SERVE_BATCHES_TOTAL: &str = "flsa_serve_batches_total";
/// Jobs that ran inside a batched dispatch (counter).
pub const SERVE_BATCHED_JOBS_TOTAL: &str = "flsa_serve_batched_jobs_total";

// --- Sharded execution (flsa-shard) --------------------------------------

/// Block tasks handed to a worker process (counter; re-dispatches of the
/// same task count again).
pub const SHARD_TASKS_DISPATCHED_TOTAL: &str = "flsa_shard_tasks_dispatched_total";
/// Block tasks whose result was accepted (counter).
pub const SHARD_TASKS_COMPLETED_TOTAL: &str = "flsa_shard_tasks_completed_total";
/// Tasks put back on the ready queue after a worker failure (counter).
pub const SHARD_TASKS_REASSIGNED_TOTAL: &str = "flsa_shard_tasks_reassigned_total";
/// Tasks executed in-process after exhausting their remote retry budget
/// or because no healthy worker remained (counter).
pub const SHARD_TASKS_INPROCESS_TOTAL: &str = "flsa_shard_tasks_inprocess_total";
/// Result frames rejected by CRC or decode validation (counter).
pub const SHARD_RESULTS_CORRUPT_TOTAL: &str = "flsa_shard_results_corrupt_total";
/// Worker processes spawned, including respawns (counter).
pub const SHARD_WORKERS_SPAWNED_TOTAL: &str = "flsa_shard_workers_spawned_total";
/// Workers killed by the coordinator — missed deadline, stale heartbeat,
/// or protocol desync (counter).
pub const SHARD_WORKERS_KILLED_TOTAL: &str = "flsa_shard_workers_killed_total";
/// Worker slots currently quarantined after repeated failures (gauge).
pub const SHARD_WORKERS_QUARANTINED: &str = "flsa_shard_workers_quarantined";
/// Worker processes currently alive (gauge; back to 0 after every run).
pub const SHARD_WORKERS_LIVE: &str = "flsa_shard_workers_live";
/// Tasks currently executing on a worker (gauge; 0 between runs).
pub const SHARD_TASKS_INFLIGHT: &str = "flsa_shard_tasks_inflight";
/// Heartbeat frames received from workers (counter).
pub const SHARD_HEARTBEATS_TOTAL: &str = "flsa_shard_heartbeats_total";
/// Wall time of one remote task, dispatch to accepted result, in ns
/// (histogram).
pub const SHARD_TASK_NS: &str = "flsa_shard_task_ns";

#[cfg(test)]
mod tests {
    use super::*;

    fn all_names() -> Vec<&'static str> {
        let mut v = vec![
            CELLS_TOTAL,
            CELLS_BASE_CASE_TOTAL,
            KERNEL_CALLS_TOTAL,
            TRACEBACK_STEPS_TOTAL,
            TRACKED_BYTES,
            TRACKED_PEAK_BYTES,
            KERNEL_BACKEND,
            CELLS_BACKEND_OTHER_TOTAL,
            BLOCKS_FILLED_TOTAL,
            DEGRADE_STEPS_TOTAL,
            RECURSION_DEPTH,
            RECURSION_DEPTH_PEAK,
            SOLVER_STEPS_TOTAL,
            PHASE,
            RUN_CELLS_EXPECTED,
            MEM_BUDGET_BYTES,
            MEM_RESERVED_BYTES,
            MEM_PEAK_BYTES,
            MEM_REFUSED_TOTAL,
            ARENA_HELD_BYTES,
            ARENA_FRESH_ALLOCS,
            ARENA_REUSES,
            WORKER_BUSY_NS_TOTAL,
            WORKER_IDLE_NS_TOTAL,
            WORKER_PARKS_TOTAL,
            TILES_TOTAL,
            TILES_INFLIGHT,
            TILES_INFLIGHT_PEAK,
            TILE_NS,
            CHECKPOINT_SAVES_TOTAL,
            CHECKPOINT_BYTES_TOTAL,
            CHECKPOINT_FSYNC_NS,
            SERVE_REQUESTS_TOTAL,
            SERVE_REJECTED_TOTAL,
            SERVE_QUEUE_DEPTH,
            SERVE_QUEUE_DEPTH_PEAK,
            SERVE_INFLIGHT,
            SERVE_COMPLETED_TOTAL,
            SERVE_FAILED_TOTAL,
            SERVE_RETRIES_TOTAL,
            SERVE_PANICS_TOTAL,
            SERVE_DEADLINE_EXPIRED_TOTAL,
            SERVE_PROTOCOL_ERRORS_TOTAL,
            SERVE_CONNECTIONS_TOTAL,
            SERVE_SPOOLED_TOTAL,
            SERVE_RECOVERED_TOTAL,
            SERVE_REQUEST_NS,
            SERVE_ADMIT_WAIT_NS,
            SERVE_BATCHES_TOTAL,
            SERVE_BATCHED_JOBS_TOTAL,
            SHARD_TASKS_DISPATCHED_TOTAL,
            SHARD_TASKS_COMPLETED_TOTAL,
            SHARD_TASKS_REASSIGNED_TOTAL,
            SHARD_TASKS_INPROCESS_TOTAL,
            SHARD_RESULTS_CORRUPT_TOTAL,
            SHARD_WORKERS_SPAWNED_TOTAL,
            SHARD_WORKERS_KILLED_TOTAL,
            SHARD_WORKERS_QUARANTINED,
            SHARD_WORKERS_LIVE,
            SHARD_TASKS_INFLIGHT,
            SHARD_HEARTBEATS_TOTAL,
            SHARD_TASK_NS,
        ];
        v.extend_from_slice(CELLS_BACKEND_TOTAL);
        v
    }

    #[test]
    fn names_are_unique_and_prometheus_safe() {
        let names = all_names();
        let mut seen = std::collections::BTreeSet::new();
        for n in &names {
            assert!(seen.insert(n), "duplicate metric name {n}");
            assert!(n.starts_with("flsa_"), "{n}: missing flsa_ prefix");
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{n}: invalid character for a Prometheus metric name"
            );
        }
    }

    #[test]
    fn backend_mapping_is_total_and_index_aligned() {
        assert_eq!(BACKENDS.len(), CELLS_BACKEND_TOTAL.len());
        assert_eq!(cells_for_backend("avx2"), "flsa_cells_backend_avx2_total");
        assert_eq!(
            cells_for_backend("sse4.1"),
            "flsa_cells_backend_sse41_total"
        );
        assert_eq!(
            cells_for_backend("avx512"),
            "flsa_cells_backend_avx512_total"
        );
        assert_eq!(cells_for_backend("riscv-vector"), CELLS_BACKEND_OTHER_TOTAL);
        assert_eq!(cells_for_backend("lanes"), CELLS_BACKEND_OTHER_TOTAL);
        assert_eq!(backend_name(0), "scalar");
        assert_eq!(backend_name(-1), "?");
        assert_eq!(backend_name(99), "?");
        for (i, b) in BACKENDS.iter().enumerate() {
            assert_eq!(backend_index(b), Some(i));
            assert_eq!(backend_name(i as i64), *b);
        }
    }

    #[test]
    fn phase_names_cover_all_values() {
        assert_eq!(phase_name(PHASE_IDLE), "idle");
        assert_eq!(phase_name(PHASE_GRID_FILL), "grid-fill");
        assert_eq!(phase_name(PHASE_BASE_CASE), "base-case");
        assert_eq!(phase_name(PHASE_TRACEBACK), "traceback");
        assert_eq!(phase_name(42), "idle");
    }
}

//! The log-bucketed, thread-sharded latency/size histogram.
//!
//! Layout (HDR-style): values below 2^[`SUB_BITS`] get one exact bucket
//! each; every higher octave `[2^m, 2^{m+1})` is split into
//! 2^[`SUB_BITS`] linear sub-buckets, so the relative quantization error
//! is bounded by `2^-SUB_BITS` (12.5% with the default of 3) across the
//! whole `u64` range with a *fixed* table of [`N_BUCKETS`] slots.
//!
//! The record path is allocation-free and lock-free: compute the bucket
//! index (a couple of shifts off `leading_zeros`), then three relaxed
//! `fetch_add`s on the calling thread's shard. Shards exist only to
//! spread cache-line contention — threads are assigned round-robin on
//! first record — and are summed on snapshot, so the merged result is
//! independent of which thread recorded what (shard-merge determinism:
//! addition commutes).

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::snapshot::HistogramSnapshot;

/// Sub-bucket resolution: 2^SUB_BITS linear sub-buckets per octave.
pub(crate) const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub(crate) const N_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;
/// Contention-spreading shard count (merged on snapshot).
const N_SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard slot, assigned round-robin on first record.
    /// Shared by all histograms: the slot only spreads contention, it
    /// carries no identity.
    static SHARD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_slot() -> usize {
    SHARD_SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        // Relaxed: round-robin ticket draw; the ticket itself is the data.
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
        s.set(v);
        v
    })
}

/// Bucket index for `v` (always `< N_BUCKETS`).
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (octave << SUB_BITS) + sub
}

/// Smallest value landing in bucket `i`.
pub(crate) fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32;
    let sub = (i & (SUB - 1)) as u64;
    let msb = octave + SUB_BITS - 1;
    (1u64 << msb) + (sub << (msb - SUB_BITS))
}

/// Largest value landing in bucket `i` (the inclusive `le` bound used in
/// exports).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 < N_BUCKETS {
        bucket_lower_bound(i + 1) - 1
    } else {
        u64::MAX
    }
}

struct Shard {
    counts: Box<[AtomicU64; N_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: Box::new([const { AtomicU64::new(0) }; N_BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-size, mergeable distribution of `u64` samples (latencies in
/// nanoseconds, sizes in bytes or cells).
///
/// Clones share the same underlying shards; see the module docs for the
/// bucket layout and concurrency story.
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<[Shard; N_SHARDS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            shards: Arc::new(std::array::from_fn(|_| Shard::new())),
        }
    }

    /// Records one sample. Allocation-free and lock-free.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_slot()];
        // Relaxed: per-bucket event tallies merged additively on
        // snapshot; no ordering between buckets or shards is needed.
        shard.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            // Relaxed: best-effort readout of monotonic tallies.
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Merges all shards into a deterministic snapshot: non-empty
    /// buckets as `(inclusive upper bound, count)`, ascending.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        let mut sum = 0u64;
        for s in self.shards.iter() {
            // Relaxed: additive merge of independent tallies.
            count += s.count.load(Ordering::Relaxed);
            sum += s.sum.load(Ordering::Relaxed);
        }
        for i in 0..N_BUCKETS {
            let c: u64 = self
                .shards
                .iter()
                // Relaxed: additive merge of independent tallies.
                .map(|s| s.counts[i].load(Ordering::Relaxed))
                .sum();
            if c > 0 {
                buckets.push((bucket_upper_bound(i), c));
            }
        }
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum,
            buckets,
        }
    }

    /// Folds a snapshot's contents back in (see [`crate::Registry::seed`]).
    /// Bucket counts land in the bucket owning the recorded upper bound,
    /// which by construction is the bucket they came from.
    pub fn seed(&self, snap: &HistogramSnapshot) {
        let shard = &self.shards[0];
        for &(ub, c) in &snap.buckets {
            // Relaxed: additive merge of independent tallies.
            shard.counts[bucket_index(ub)].fetch_add(c, Ordering::Relaxed);
        }
        shard.count.fetch_add(snap.count, Ordering::Relaxed); // Relaxed: additive merge
        shard.sum.fetch_add(snap.sum, Ordering::Relaxed); // Relaxed: additive merge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_in_range() {
        let mut vs: Vec<u64> = vec![0, 1, 2, 3];
        for shift in 2..64 {
            for delta in [0u64, 1, 3] {
                vs.push((1u64 << shift).saturating_add(delta << (shift - 2)));
            }
        }
        vs.sort_unstable();
        let mut last = 0usize;
        for v in vs {
            let i = bucket_index(v);
            assert!(i < N_BUCKETS, "v={v} i={i}");
            assert!(i >= last, "v={v}: index went backwards");
            last = i;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in [0u64, 1, 7, 8, 9, 100, 1000, 123_456_789, u64::MAX / 3] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v, "v={v}");
            assert!(v <= bucket_upper_bound(i), "v={v}");
        }
        // Bucket ranges tile the u64 line without gaps.
        for i in 0..N_BUCKETS - 1 {
            assert_eq!(bucket_upper_bound(i) + 1, bucket_lower_bound(i + 1));
        }
        assert_eq!(bucket_upper_bound(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded_by_sub_bucket_resolution() {
        for v in [100u64, 999, 5_000, 1 << 20, (1 << 40) + 12345] {
            let i = bucket_index(v);
            let width = bucket_upper_bound(i) - bucket_lower_bound(i);
            assert!(
                (width as f64) <= (v as f64) / (SUB as f64) + 1.0,
                "v={v} width={width}"
            );
        }
    }

    #[test]
    fn count_sum_and_quantiles_track_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.quantile(0.5);
        assert!((400..=600).contains(&p50), "p50={p50}");
        let p99 = s.quantile(0.99);
        assert!((950..=1100).contains(&p99), "p99={p99}");
    }

    #[test]
    fn shard_merge_is_deterministic_across_interleavings() {
        // The same multiset of samples, recorded under two different
        // thread partitions, must merge to the identical snapshot.
        let samples: Vec<u64> = (0..4000u64).map(|i| (i * 2654435761) % 100_000).collect();
        let run = |chunks: usize| {
            let h = Histogram::new();
            std::thread::scope(|scope| {
                for chunk in samples.chunks(samples.len() / chunks) {
                    let h = h.clone();
                    scope.spawn(move || {
                        for &v in chunk {
                            h.record(v);
                        }
                    });
                }
            });
            let mut s = h.snapshot("t");
            s.name = "t".to_string();
            s
        };
        let a = run(1);
        let b = run(4);
        let c = run(8);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn seed_recovers_an_exported_distribution() {
        let h = Histogram::new();
        for v in [5u64, 90, 90, 4096, 70_000] {
            h.record(v);
        }
        let snap = h.snapshot("x");
        let h2 = Histogram::new();
        h2.seed(&snap);
        assert_eq!(h2.snapshot("x"), snap);
    }
}

//! **flsa-metrics** — low-overhead, always-on metrics for the FastLSA
//! engine.
//!
//! Where `flsa-trace` records *every event* for post-hoc analysis of a
//! single run, this crate keeps *aggregates* cheap enough to leave on for
//! millions of runs: lock-free [`Counter`]s and [`Gauge`]s (one relaxed
//! atomic op per record) and a log-bucketed, thread-sharded [`Histogram`]
//! whose record path is a fixed-size array increment — no allocation, no
//! locks, no syscalls. A long-running service scrapes the same numbers a
//! one-shot CLI run writes on exit.
//!
//! Design rules:
//!
//! * **Global-free.** There is no process-wide default registry; every
//!   run owns its [`Registry`] (usually behind an `Arc`) and threads it
//!   through [`AlignOptions`-style plumbing]. Two concurrent alignments
//!   never share counters by accident.
//! * **Handle-based.** [`Registry::counter`] & friends are idempotent
//!   get-or-create calls returning cheap `Arc`-backed handles. Layers
//!   resolve their handles once at setup and record through the cached
//!   handle, so the hot path never touches the registry lock.
//! * **Named centrally.** Every metric name is a constant in
//!   [`names`] — lint rule R7 (`flsa-check`) rejects inline name
//!   literals at record sites, keeping the Prometheus namespace
//!   collision-free by construction.
//! * **Deterministic snapshots.** [`Registry::snapshot`] produces a
//!   [`MetricsSnapshot`] sorted by metric name, with exporters to
//!   Prometheus text format and JSON and parsers for both, so exports
//!   round-trip and resumed runs can fold a previous run's snapshot back
//!   in ([`Registry::seed`]).
//!
//! [`AlignOptions`-style plumbing]: Registry

#![forbid(unsafe_code)]

pub mod json;
pub mod names;
pub mod progress;

mod export;
mod histogram;
mod snapshot;

pub use histogram::Histogram;
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing event count.
///
/// Handles are cheap clones of one shared atomic; recording is a single
/// relaxed `fetch_add`. A default-constructed (detached) counter works
/// but is not visible in any snapshot — instrument structs use this so
/// the metrics-off path costs one branch, not an `Option` per field.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (records are kept but
    /// never exported; useful as a no-op default).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        // Relaxed: independent monotonic counter; snapshots are
        // best-effort cuts and nothing is published through this value.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // Relaxed: best-effort readout
    }
}

/// A point-in-time level that can move both ways (bytes in use, current
/// recursion depth, an enum-coded mode).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        // Relaxed: last-writer-wins level; readers tolerate any
        // interleaving and no other memory is published through it.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed); // Relaxed: independent level change
    }

    /// Moves the level by `d` and returns the new level — one atomic op
    /// where hot paths would otherwise pay an `add` plus a `get`.
    #[inline]
    pub fn add_get(&self, d: i64) -> i64 {
        // Relaxed: independent level change; the returned level is this
        // thread's own view, racing readers tolerate any interleaving.
        self.0.fetch_add(d, Ordering::Relaxed) + d
    }

    /// Moves the level by `-d`.
    #[inline]
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed); // Relaxed: independent level change
    }

    /// Raises the level to at least `v` (high-water mark).
    #[inline]
    pub fn fetch_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed); // Relaxed: advisory high-water mark
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed) // Relaxed: best-effort readout
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A run-scoped collection of named metrics.
///
/// Registration (`counter`/`gauge`/`histogram`) takes the registry lock
/// once and returns a shared handle; repeated registration of the same
/// name returns a handle to the *same* underlying metric, so any layer
/// holding the registry can build its instrument bundle independently.
/// The record paths on the returned handles never touch this lock.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name` (created on first use).
    ///
    /// `name` is `&'static str` on purpose: names come from the
    /// [`names`] module (lint rule R7), not from computed strings.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_raw(name)
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauge_raw(name)
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_raw(name)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn counter_raw(&self, name: &str) -> Counter {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => {
                debug_assert!(false, "metric {name} registered with another kind");
                Counter::detached()
            }
        }
    }

    fn gauge_raw(&self, name: &str) -> Gauge {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => {
                debug_assert!(false, "metric {name} registered with another kind");
                Gauge::detached()
            }
        }
    }

    fn histogram_raw(&self, name: &str) -> Histogram {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => {
                debug_assert!(false, "metric {name} registered with another kind");
                Histogram::new()
            }
        }
    }

    /// A deterministic point-in-time copy of every registered metric,
    /// sorted by name within each kind.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push(h.snapshot(name)),
            }
        }
        snap
    }

    /// Folds a previously exported snapshot back in: counters and
    /// histogram contents are *added*, gauges are *set*. A resumed run
    /// seeds its fresh registry from the snapshot the killed run wrote,
    /// so the final export covers the whole logical alignment.
    pub fn seed(&self, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            self.counter_raw(name).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge_raw(name).set(*v);
        }
        for h in &snap.histograms {
            self.histogram_raw(&h.name).seed(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_idempotent_and_shared() {
        let reg = Registry::new();
        let a = reg.counter(names::CELLS_TOTAL);
        let b = reg.counter(names::CELLS_TOTAL);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::CELLS_TOTAL), Some(4));
    }

    #[test]
    fn gauges_move_both_ways_and_track_peaks() {
        let reg = Registry::new();
        let g = reg.gauge(names::MEM_RESERVED_BYTES);
        g.add(100);
        g.sub(40);
        assert_eq!(g.get(), 60);
        g.fetch_max(50);
        assert_eq!(g.get(), 60, "fetch_max never lowers");
        g.fetch_max(90);
        assert_eq!(g.get(), 90);
        g.set(-5);
        assert_eq!(reg.snapshot().gauge(names::MEM_RESERVED_BYTES), Some(-5));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter(names::TILES_TOTAL).inc();
        reg.counter(names::CELLS_TOTAL).inc();
        reg.counter(names::BLOCKS_FILLED_TOTAL).inc();
        let snap = reg.snapshot();
        let ns: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        assert_eq!(ns, sorted);
    }

    #[test]
    fn detached_handles_record_but_do_not_export() {
        let c = Counter::detached();
        c.add(7);
        assert_eq!(c.get(), 7);
        let reg = Registry::new();
        assert!(reg.snapshot().counters.is_empty());
    }

    #[test]
    fn seed_adds_counters_and_sets_gauges() {
        let a = Registry::new();
        a.counter(names::CELLS_TOTAL).add(100);
        a.gauge(names::MEM_PEAK_BYTES).set(42);
        a.histogram(names::TILE_NS).record(1000);
        let snap = a.snapshot();

        let b = Registry::new();
        b.counter(names::CELLS_TOTAL).add(10);
        b.seed(&snap);
        b.counter(names::CELLS_TOTAL).add(1);
        let merged = b.snapshot();
        assert_eq!(merged.counter(names::CELLS_TOTAL), Some(111));
        assert_eq!(merged.gauge(names::MEM_PEAK_BYTES), Some(42));
        let h = merged.histogram(names::TILE_NS).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 1000);
    }

    #[test]
    fn registry_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Registry>();
        assert_sync::<Counter>();
        assert_sync::<Gauge>();
        assert_sync::<Histogram>();
    }
}

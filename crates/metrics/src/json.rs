//! A minimal JSON reader.
//!
//! The workspace is dependency-free, so the handful of places that read
//! JSON back (metrics snapshot round-trips, `flsa report --metrics`,
//! bench baselines) share this small recursive-descent parser. Numbers
//! keep their raw text so integer values round-trip exactly — `u64`
//! counters would lose precision through an `f64`.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number, kept as its raw text (`as_u64`/`as_i64`/`as_f64` to
    /// interpret).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    /// Object members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let raw = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "non-utf8 number".to_string())?;
        if raw.is_empty() || raw == "-" {
            return Err(format!("bad number at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            members.push((key, self.value()?));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().items().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().items().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().items().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().items().unwrap()[2].as_i64(), Some(-3));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn u64_values_round_trip_exactly() {
        let big = u64::MAX;
        let v = Json::parse(&format!("{{\"n\": {big}}}")).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "line\nwith \"quotes\" and \\slashes\\ and \t tabs";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_and_multibyte_text_parse() {
        let v = Json::parse(r#"{"k": "éµ"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("éµ"));
    }
}

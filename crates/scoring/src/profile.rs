//! Query profiles: substitution scores flattened along one sequence.
//!
//! A DP kernel that scores cell `(i, j)` via `matrix.score(a[i-1], b[j-1])`
//! performs a strided 2-D table lookup in its innermost loop. A *query
//! profile* hoists that lookup out of the loop: for a fixed sequence `b`
//! it precomputes, for every alphabet code `c`, the contiguous row
//! `P[c][j] = S(c, b[j])`. A row fill for residue `a[i-1]` then streams
//! `P[a[i-1]]` with unit stride — the form both the autovectorizer and the
//! explicit SIMD kernels in `flsa-dp` want.
//!
//! The profile costs `alphabet.len() × b.len()` i32s, which for the paper's
//! setting (protein alphabet, sequences of a few thousand residues) is a
//! few hundred KB at most and is reused across every row of the rectangle.

use crate::SubstitutionMatrix;

/// Flattened per-code score rows for one fixed sequence.
///
/// `row(c)[j]` equals `matrix.score(c, b[j])` for every code `c` of the
/// matrix's alphabet and every position `j` of the profiled sequence.
///
/// # Examples
///
/// ```
/// use flsa_scoring::{QueryProfile, SubstitutionMatrix};
/// use flsa_seq::Alphabet;
///
/// let m = SubstitutionMatrix::match_mismatch("unit", Alphabet::dna(), 5, -4);
/// let b = [0u8, 1, 2, 3, 0]; // ACGTA
/// let p = QueryProfile::build(&m, &b);
/// assert_eq!(p.row(0), &[5, -4, -4, -4, 5]);
/// assert_eq!(p.row(2)[2], 5);
/// ```
#[derive(Debug, Clone)]
pub struct QueryProfile {
    codes: usize,
    len: usize,
    table: Vec<i32>,
}

impl QueryProfile {
    /// Builds a profile for sequence `b` (alphabet codes) under `matrix`.
    pub fn build(matrix: &SubstitutionMatrix, b: &[u8]) -> Self {
        QueryProfile::build_in(matrix, b, Vec::new())
    }

    /// Like [`QueryProfile::build`], but reuses `storage` for the table so
    /// repeated profile builds (one per recursed block) stay allocation-free
    /// once the storage has grown to its high-water mark. Recover the
    /// storage with [`QueryProfile::into_storage`].
    pub fn build_in(matrix: &SubstitutionMatrix, b: &[u8], mut storage: Vec<i32>) -> Self {
        let codes = matrix.alphabet().len();
        let len = b.len();
        storage.clear();
        storage.resize(codes * len, 0);
        for c in 0..codes {
            let row = &mut storage[c * len..(c + 1) * len];
            for (slot, &bj) in row.iter_mut().zip(b.iter()) {
                *slot = matrix.score(c as u8, bj);
            }
        }
        QueryProfile {
            codes,
            len,
            table: storage,
        }
    }

    /// The contiguous score row for code `c`: `row(c)[j] == S(c, b[j])`.
    #[inline(always)]
    pub fn row(&self, c: u8) -> &[i32] {
        let c = c as usize;
        debug_assert!(c < self.codes, "code {c} outside profile alphabet");
        &self.table[c * self.len..(c + 1) * self.len]
    }

    /// Number of alphabet codes (rows) in the profile.
    pub fn codes(&self) -> usize {
        self.codes
    }

    /// Length of the profiled sequence (columns per row).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the profiled sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes held by the profile table (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<i32>()
    }

    /// Consumes the profile, returning its backing storage for reuse.
    pub fn into_storage(self) -> Vec<i32> {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_seq::Alphabet;

    #[test]
    fn profile_matches_matrix_lookup() {
        let m = crate::tables::blosum62();
        let b: Vec<u8> = (0..m.alphabet().len() as u8).cycle().take(57).collect();
        let p = QueryProfile::build(&m, &b);
        assert_eq!(p.codes(), m.alphabet().len());
        assert_eq!(p.len(), b.len());
        for c in 0..m.alphabet().len() as u8 {
            for (j, &bj) in b.iter().enumerate() {
                assert_eq!(p.row(c)[j], m.score(c, bj), "code {c} position {j}");
            }
        }
    }

    #[test]
    fn build_in_reuses_storage_without_reallocating() {
        let m = SubstitutionMatrix::match_mismatch("unit", Alphabet::dna(), 1, -1);
        let b = vec![2u8; 100];
        let p = QueryProfile::build_in(&m, &b, Vec::with_capacity(4 * 100));
        let storage = p.into_storage();
        let cap = storage.capacity();
        let ptr = storage.as_ptr();
        let p2 = QueryProfile::build_in(&m, &b[..50], storage);
        assert_eq!(p2.row(2), &[1; 50][..]);
        let storage = p2.into_storage();
        assert_eq!(storage.capacity(), cap);
        assert_eq!(storage.as_ptr(), ptr);
    }

    #[test]
    fn empty_sequence_profile() {
        let m = SubstitutionMatrix::match_mismatch("unit", Alphabet::dna(), 1, -1);
        let p = QueryProfile::build(&m, &[]);
        assert!(p.is_empty());
        assert_eq!(p.row(0), &[] as &[i32]);
    }
}

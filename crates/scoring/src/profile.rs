//! Query profiles: substitution scores flattened along one sequence.
//!
//! A DP kernel that scores cell `(i, j)` via `matrix.score(a[i-1], b[j-1])`
//! performs a strided 2-D table lookup in its innermost loop. A *query
//! profile* hoists that lookup out of the loop: for a fixed sequence `b`
//! it precomputes, for every alphabet code `c`, the contiguous row
//! `P[c][j] = S(c, b[j])`. A row fill for residue `a[i-1]` then streams
//! `P[a[i-1]]` with unit stride — the form both the autovectorizer and the
//! explicit SIMD kernels in `flsa-dp` want.
//!
//! The profile costs `alphabet.len() × b.len()` i32s, which for the paper's
//! setting (protein alphabet, sequences of a few thousand residues) is a
//! few hundred KB at most and is reused across every row of the rectangle.

use crate::SubstitutionMatrix;

/// Flattened per-code score rows for one fixed sequence.
///
/// `row(c)[j]` equals `matrix.score(c, b[j])` for every code `c` of the
/// matrix's alphabet and every position `j` of the profiled sequence.
///
/// # Examples
///
/// ```
/// use flsa_scoring::{QueryProfile, SubstitutionMatrix};
/// use flsa_seq::Alphabet;
///
/// let m = SubstitutionMatrix::match_mismatch("unit", Alphabet::dna(), 5, -4);
/// let b = [0u8, 1, 2, 3, 0]; // ACGTA
/// let p = QueryProfile::build(&m, &b);
/// assert_eq!(p.row(0), &[5, -4, -4, -4, 5]);
/// assert_eq!(p.row(2)[2], 5);
/// ```
#[derive(Debug, Clone)]
pub struct QueryProfile {
    codes: usize,
    len: usize,
    table: Vec<i32>,
}

impl QueryProfile {
    /// Builds a profile for sequence `b` (alphabet codes) under `matrix`.
    pub fn build(matrix: &SubstitutionMatrix, b: &[u8]) -> Self {
        QueryProfile::build_in(matrix, b, Vec::new())
    }

    /// Like [`QueryProfile::build`], but reuses `storage` for the table so
    /// repeated profile builds (one per recursed block) stay allocation-free
    /// once the storage has grown to its high-water mark. Recover the
    /// storage with [`QueryProfile::into_storage`].
    pub fn build_in(matrix: &SubstitutionMatrix, b: &[u8], mut storage: Vec<i32>) -> Self {
        let codes = matrix.alphabet().len();
        let len = b.len();
        storage.clear();
        storage.resize(codes * len, 0);
        for c in 0..codes {
            let row = &mut storage[c * len..(c + 1) * len];
            for (slot, &bj) in row.iter_mut().zip(b.iter()) {
                *slot = matrix.score(c as u8, bj);
            }
        }
        QueryProfile {
            codes,
            len,
            table: storage,
        }
    }

    /// The contiguous score row for code `c`: `row(c)[j] == S(c, b[j])`.
    #[inline(always)]
    pub fn row(&self, c: u8) -> &[i32] {
        let c = c as usize;
        debug_assert!(c < self.codes, "code {c} outside profile alphabet");
        &self.table[c * self.len..(c + 1) * self.len]
    }

    /// Number of alphabet codes (rows) in the profile.
    pub fn codes(&self) -> usize {
        self.codes
    }

    /// Length of the profiled sequence (columns per row).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the profiled sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes held by the profile table (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<i32>()
    }

    /// Consumes the profile, returning its backing storage for reuse.
    pub fn into_storage(self) -> Vec<i32> {
        self.table
    }
}

/// Flattened per-code `i16` score rows for one fixed sequence, padded to
/// a fixed row width — the form the inter-sequence batch kernel streams
/// (one pair per SIMD lane, 16-bit scores).
///
/// `row(c)[j]` equals `matrix.score(c, b[j])` for `j < b.len()` and `0`
/// for the `b.len() ≤ j < padded_len` tail, so a batch whose lanes have
/// unequal lengths can read every lane's row out to the longest lane
/// without branching. Scores are clamped into `i16` range; callers that
/// need exactness (the batch kernel does) must reject schemes whose
/// scores cannot fit *before* building the profile — the batch kernel's
/// saturation pre-check subsumes this.
#[derive(Debug, Clone)]
pub struct QueryProfileI16 {
    codes: usize,
    padded_len: usize,
    table: Vec<i16>,
}

impl QueryProfileI16 {
    /// Builds a padded `i16` profile for sequence `b` (alphabet codes),
    /// reusing `storage` for the table. `padded_len` must be at least
    /// `b.len()`. Recover the storage with
    /// [`QueryProfileI16::into_storage`].
    pub fn build_padded_in(
        matrix: &SubstitutionMatrix,
        b: &[u8],
        padded_len: usize,
        mut storage: Vec<i16>,
    ) -> Self {
        assert!(padded_len >= b.len(), "padded_len shorter than sequence");
        let codes = matrix.alphabet().len();
        storage.clear();
        storage.resize(codes * padded_len, 0);
        for c in 0..codes {
            let row = &mut storage[c * padded_len..c * padded_len + b.len()];
            for (slot, &bj) in row.iter_mut().zip(b.iter()) {
                *slot = matrix
                    .score(c as u8, bj)
                    .clamp(i16::MIN as i32, i16::MAX as i32) as i16;
            }
        }
        QueryProfileI16 {
            codes,
            padded_len,
            table: storage,
        }
    }

    /// The padded score row for code `c`: `row(c).len() == padded_len`.
    #[inline(always)]
    pub fn row(&self, c: u8) -> &[i16] {
        let c = c as usize;
        debug_assert!(c < self.codes, "code {c} outside profile alphabet");
        &self.table[c * self.padded_len..(c + 1) * self.padded_len]
    }

    /// Number of alphabet codes (rows) in the profile.
    pub fn codes(&self) -> usize {
        self.codes
    }

    /// Row width (sequence length rounded up to the requested padding).
    pub fn padded_len(&self) -> usize {
        self.padded_len
    }

    /// Bytes held by the profile table (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<i16>()
    }

    /// Consumes the profile, returning its backing storage for reuse.
    pub fn into_storage(self) -> Vec<i16> {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_seq::Alphabet;

    #[test]
    fn profile_matches_matrix_lookup() {
        let m = crate::tables::blosum62();
        let b: Vec<u8> = (0..m.alphabet().len() as u8).cycle().take(57).collect();
        let p = QueryProfile::build(&m, &b);
        assert_eq!(p.codes(), m.alphabet().len());
        assert_eq!(p.len(), b.len());
        for c in 0..m.alphabet().len() as u8 {
            for (j, &bj) in b.iter().enumerate() {
                assert_eq!(p.row(c)[j], m.score(c, bj), "code {c} position {j}");
            }
        }
    }

    #[test]
    fn build_in_reuses_storage_without_reallocating() {
        let m = SubstitutionMatrix::match_mismatch("unit", Alphabet::dna(), 1, -1);
        let b = vec![2u8; 100];
        let p = QueryProfile::build_in(&m, &b, Vec::with_capacity(4 * 100));
        let storage = p.into_storage();
        let cap = storage.capacity();
        let ptr = storage.as_ptr();
        let p2 = QueryProfile::build_in(&m, &b[..50], storage);
        assert_eq!(p2.row(2), &[1; 50][..]);
        let storage = p2.into_storage();
        assert_eq!(storage.capacity(), cap);
        assert_eq!(storage.as_ptr(), ptr);
    }

    #[test]
    fn i16_profile_matches_matrix_lookup_and_pads_with_zero() {
        let m = crate::tables::blosum62();
        let b: Vec<u8> = (0..m.alphabet().len() as u8).cycle().take(23).collect();
        let p = QueryProfileI16::build_padded_in(&m, &b, 32, Vec::new());
        assert_eq!(p.padded_len(), 32);
        assert_eq!(p.codes(), m.alphabet().len());
        for c in 0..m.alphabet().len() as u8 {
            for (j, &bj) in b.iter().enumerate() {
                assert_eq!(p.row(c)[j] as i32, m.score(c, bj), "code {c} position {j}");
            }
            for j in b.len()..32 {
                assert_eq!(p.row(c)[j], 0, "code {c} pad position {j}");
            }
        }
        // Storage round-trips for arena reuse.
        let storage = p.into_storage();
        let p2 = QueryProfileI16::build_padded_in(&m, &b[..7], 8, storage);
        assert_eq!(p2.padded_len(), 8);
    }

    #[test]
    fn empty_sequence_profile() {
        let m = SubstitutionMatrix::match_mismatch("unit", Alphabet::dna(), 1, -1);
        let p = QueryProfile::build(&m, &[]);
        assert!(p.is_empty());
        assert_eq!(p.row(0), &[] as &[i32]);
    }
}

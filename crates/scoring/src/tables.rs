//! Built-in substitution matrices.
//!
//! * [`mdm_fragment`] — the exact fragment of the PepTool-scaled Dayhoff
//!   MDM78 matrix printed as Table 1 of the paper (symbols `A D K L T V`),
//!   used to reproduce the paper's worked example (score 82, Figure 1).
//! * [`blosum62`], [`pam250`] — the standard NCBI protein matrices.
//! * [`dna_default`] — the +5/−4 DNA matrix (EDNAFULL-style core).
//! * [`identity`] — match 1 / mismatch 0 (turns global alignment into the
//!   longest-common-subsequence problem Hirschberg's algorithm was
//!   originally designed for).

use flsa_seq::Alphabet;

use crate::{GapModel, ScoringScheme, SubstitutionMatrix};

/// Alphabet of the paper's Table 1 fragment, in the table's own order.
pub fn mdm_fragment_alphabet() -> Alphabet {
    Alphabet::new("mdm-fragment", "ADKLTV")
}

/// The Table 1 fragment of the scaled Dayhoff MDM78 matrix.
///
/// Diagonal: A=16, D=K=L=T=V=20; the single similar pair is L/V = 12; every
/// other off-diagonal entry is 0 (the table is printed lower-triangular in
/// the paper; it is symmetric).
///
/// # Examples
///
/// ```
/// use flsa_scoring::tables;
/// let m = tables::mdm_fragment();
/// assert_eq!(m.score_chars('L', 'V'), Some(12));
/// assert_eq!(m.score_chars('K', 'L'), Some(0));
/// assert_eq!(m.score_chars('T', 'T'), Some(20));
/// ```
pub fn mdm_fragment() -> SubstitutionMatrix {
    let alphabet = mdm_fragment_alphabet();
    let n = alphabet.len();
    let mut table = vec![0i32; n * n];
    let set = |table: &mut Vec<i32>, a: char, b: char, v: i32| {
        // flsa-check: allow(unwrap) — callers pass symbols of this alphabet
        let i = alphabet.encode_symbol(a).unwrap() as usize;
        // flsa-check: allow(unwrap) — same invariant as above
        let j = alphabet.encode_symbol(b).unwrap() as usize;
        table[i * n + j] = v;
        table[j * n + i] = v;
    };
    set(&mut table, 'A', 'A', 16);
    for c in ['D', 'K', 'L', 'T', 'V'] {
        set(&mut table, c, c, 20);
    }
    set(&mut table, 'L', 'V', 12);
    SubstitutionMatrix::from_table("mdm78-fragment", alphabet, table)
}

/// BLOSUM62 over the 24-code protein alphabet (`ARNDCQEGHILKMFPSTWYVBZX*`).
pub fn blosum62() -> SubstitutionMatrix {
    #[rustfmt::skip]
    const T: [i32; 24 * 24] = [
    //   A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
         4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4,
        -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4,
        -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4,
        -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4,
         0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4,
        -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4,
        -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4,
         0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4,
        -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4,
        -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4,
        -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4,
        -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4,
        -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4,
        -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4,
        -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4,
         1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4,
         0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4,
        -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4,
        -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4,
         0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4,
        -2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4,
        -1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4,
         0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4,
        -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1,
    ];
    SubstitutionMatrix::from_table("blosum62", Alphabet::protein(), T.to_vec())
}

/// PAM250 over the 24-code protein alphabet. PAM250 is the descendant of the
/// Dayhoff MDM78 family the paper's PepTool table was scaled from.
pub fn pam250() -> SubstitutionMatrix {
    #[rustfmt::skip]
    const T: [i32; 24 * 24] = [
    //   A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
         2, -2,  0,  0, -2,  0,  0,  1, -1, -1, -2, -1, -1, -3,  1,  1,  1, -6, -3,  0,  0,  0,  0, -8,
        -2,  6,  0, -1, -4,  1, -1, -3,  2, -2, -3,  3,  0, -4,  0,  0, -1,  2, -4, -2, -1,  0, -1, -8,
         0,  0,  2,  2, -4,  1,  1,  0,  2, -2, -3,  1, -2, -3,  0,  1,  0, -4, -2, -2,  2,  1,  0, -8,
         0, -1,  2,  4, -5,  2,  3,  1,  1, -2, -4,  0, -3, -6, -1,  0,  0, -7, -4, -2,  3,  3, -1, -8,
        -2, -4, -4, -5, 12, -5, -5, -3, -3, -2, -6, -5, -5, -4, -3,  0, -2, -8,  0, -2, -4, -5, -3, -8,
         0,  1,  1,  2, -5,  4,  2, -1,  3, -2, -2,  1, -1, -5,  0, -1, -1, -5, -4, -2,  1,  3, -1, -8,
         0, -1,  1,  3, -5,  2,  4,  0,  1, -2, -3,  0, -2, -5, -1,  0,  0, -7, -4, -2,  3,  3, -1, -8,
         1, -3,  0,  1, -3, -1,  0,  5, -2, -3, -4, -2, -3, -5,  0,  1,  0, -7, -5, -1,  0,  0, -1, -8,
        -1,  2,  2,  1, -3,  3,  1, -2,  6, -2, -2,  0, -2, -2,  0, -1, -1, -3,  0, -2,  1,  2, -1, -8,
        -1, -2, -2, -2, -2, -2, -2, -3, -2,  5,  2, -2,  2,  1, -2, -1,  0, -5, -1,  4, -2, -2, -1, -8,
        -2, -3, -3, -4, -6, -2, -3, -4, -2,  2,  6, -3,  4,  2, -3, -3, -2, -2, -1,  2, -3, -3, -1, -8,
        -1,  3,  1,  0, -5,  1,  0, -2,  0, -2, -3,  5,  0, -5, -1,  0,  0, -3, -4, -2,  1,  0, -1, -8,
        -1,  0, -2, -3, -5, -1, -2, -3, -2,  2,  4,  0,  6,  0, -2, -2, -1, -4, -2,  2, -2, -2, -1, -8,
        -3, -4, -3, -6, -4, -5, -5, -5, -2,  1,  2, -5,  0,  9, -5, -3, -3,  0,  7, -1, -4, -5, -2, -8,
         1,  0,  0, -1, -3,  0, -1,  0,  0, -2, -3, -1, -2, -5,  6,  1,  0, -6, -5, -1, -1,  0, -1, -8,
         1,  0,  1,  0,  0, -1,  0,  1, -1, -1, -3,  0, -2, -3,  1,  2,  1, -2, -3, -1,  0,  0,  0, -8,
         1, -1,  0,  0, -2, -1,  0,  0, -1,  0, -2,  0, -1, -3,  0,  1,  3, -5, -3,  0,  0, -1,  0, -8,
        -6,  2, -4, -7, -8, -5, -7, -7, -3, -5, -2, -3, -4,  0, -6, -2, -5, 17,  0, -6, -5, -6, -4, -8,
        -3, -4, -2, -4,  0, -4, -4, -5,  0, -1, -1, -4, -2,  7, -5, -3, -3,  0, 10, -2, -3, -4, -2, -8,
         0, -2, -2, -2, -2, -2, -2, -1, -2,  4,  2, -2,  2, -1, -1, -1,  0, -6, -2,  4, -2, -2, -1, -8,
         0, -1,  2,  3, -4,  1,  3,  0,  1, -2, -3,  1, -2, -4, -1,  0,  0, -5, -3, -2,  3,  2, -1, -8,
         0,  0,  1,  3, -5,  3,  3,  0,  2, -2, -3,  0, -2, -5,  0,  0, -1, -6, -4, -2,  2,  3, -1, -8,
         0, -1,  0, -1, -3, -1, -1, -1, -1, -1, -1, -1, -1, -2, -1,  0,  0, -4, -2, -1, -1, -1, -1, -8,
        -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8,  1,
    ];
    SubstitutionMatrix::from_table("pam250", Alphabet::protein(), T.to_vec())
}

/// The conventional +5/−4 DNA matrix; `N` matches nothing and mismatches
/// nothing (score 0 against everything, including itself).
pub fn dna_default() -> SubstitutionMatrix {
    let alphabet = Alphabet::dna();
    let n = alphabet.len();
    let mut table = vec![-4i32; n * n];
    for i in 0..4 {
        table[i * n + i] = 5;
    }
    // flsa-check: allow(unwrap) — 'N' is part of the DNA alphabet
    let nn = alphabet.encode_symbol('N').unwrap() as usize;
    for i in 0..n {
        table[nn * n + i] = 0;
        table[i * n + nn] = 0;
    }
    SubstitutionMatrix::from_table("dna+5/-4", alphabet, table)
}

/// Match 1 / mismatch 0 over `alphabet`. With a zero gap penalty this turns
/// global alignment into longest-common-subsequence, which is a useful
/// cross-check (Hirschberg's original problem).
pub fn identity(alphabet: Alphabet) -> SubstitutionMatrix {
    SubstitutionMatrix::match_mismatch("identity", alphabet, 1, 0)
}

/// Resolves a named scheme with a linear gap penalty — the single matrix
/// registry shared by the CLI, the serve daemon, and the shard protocol,
/// so every surface accepts exactly the same names. `None` for unknown
/// names.
pub fn scheme_by_name(name: &str, gap: i32) -> Option<ScoringScheme> {
    let matrix = match name {
        "dna" => dna_default(),
        "blosum62" => blosum62(),
        "pam250" => pam250(),
        "identity" => identity(Alphabet::dna()),
        "paper" => mdm_fragment(),
        _ => return None,
    };
    Some(ScoringScheme::new(matrix, GapModel::linear(gap)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mdm_fragment_matches_table_1() {
        let m = mdm_fragment();
        assert_eq!(m.score_chars('A', 'A'), Some(16));
        for c in ['D', 'K', 'L', 'T', 'V'] {
            assert_eq!(m.score_chars(c, c), Some(20), "diag {c}");
        }
        assert_eq!(m.score_chars('L', 'V'), Some(12));
        assert_eq!(m.score_chars('V', 'L'), Some(12));
        assert_eq!(m.score_chars('K', 'L'), Some(0));
        assert_eq!(m.score_chars('T', 'D'), Some(0));
        assert!(m.is_symmetric());
    }

    #[test]
    fn blosum62_spot_checks() {
        let m = blosum62();
        assert!(m.is_symmetric());
        assert_eq!(m.score_chars('W', 'W'), Some(11));
        assert_eq!(m.score_chars('C', 'C'), Some(9));
        assert_eq!(m.score_chars('A', 'A'), Some(4));
        assert_eq!(m.score_chars('L', 'V'), Some(1));
        assert_eq!(m.score_chars('E', 'Q'), Some(2));
        assert_eq!(m.score_chars('*', '*'), Some(1));
        assert_eq!(m.score_chars('A', '*'), Some(-4));
    }

    #[test]
    fn pam250_spot_checks() {
        let m = pam250();
        assert!(m.is_symmetric());
        assert_eq!(m.score_chars('W', 'W'), Some(17));
        assert_eq!(m.score_chars('C', 'C'), Some(12));
        assert_eq!(m.score_chars('L', 'V'), Some(2));
        assert_eq!(m.score_chars('F', 'Y'), Some(7));
    }

    #[test]
    fn dna_default_scores() {
        let m = dna_default();
        assert_eq!(m.score_chars('A', 'A'), Some(5));
        assert_eq!(m.score_chars('A', 'G'), Some(-4));
        assert_eq!(m.score_chars('N', 'A'), Some(0));
        assert_eq!(m.score_chars('N', 'N'), Some(0));
        assert!(m.is_symmetric());
    }

    #[test]
    fn identity_is_lcs_scoring() {
        let m = identity(Alphabet::dna());
        assert_eq!(m.score_chars('A', 'A'), Some(1));
        assert_eq!(m.score_chars('A', 'C'), Some(0));
        assert_eq!(m.max_score(), 1);
    }
}

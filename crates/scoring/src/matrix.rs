//! Dense substitution matrices.

use flsa_seq::Alphabet;

/// A dense similarity table indexed by alphabet codes.
///
/// Higher scores mean higher similarity (the paper's convention — alignment
/// maximizes total score). Matrices are square over the alphabet's code
/// space and, for all the built-ins, symmetric.
///
/// # Examples
///
/// ```
/// use flsa_scoring::tables;
/// let m = tables::blosum62();
/// let l = m.alphabet().encode_symbol('L').unwrap();
/// let v = m.alphabet().encode_symbol('V').unwrap();
/// assert_eq!(m.score(l, v), 1);
/// assert_eq!(m.score(l, l), 4);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SubstitutionMatrix {
    name: String,
    alphabet: Alphabet,
    n: usize,
    table: Vec<i32>,
}

impl std::fmt::Debug for SubstitutionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SubstitutionMatrix({}, {}x{})",
            self.name, self.n, self.n
        )
    }
}

impl SubstitutionMatrix {
    /// Builds a matrix from a row-major table of `alphabet.len()²` scores.
    ///
    /// # Panics
    ///
    /// Panics when the table size does not match the alphabet — matrices
    /// are static configuration, so this is a programming error.
    pub fn from_table(name: &str, alphabet: Alphabet, table: Vec<i32>) -> Self {
        let n = alphabet.len();
        assert_eq!(table.len(), n * n, "substitution table must be {n}x{n}");
        SubstitutionMatrix {
            name: name.to_string(),
            alphabet,
            n,
            table,
        }
    }

    /// Builds a uniform match/mismatch matrix over `alphabet`.
    pub fn match_mismatch(name: &str, alphabet: Alphabet, mat: i32, mis: i32) -> Self {
        let n = alphabet.len();
        let mut table = vec![mis; n * n];
        for i in 0..n {
            table[i * n + i] = mat;
        }
        SubstitutionMatrix {
            name: name.to_string(),
            alphabet,
            n,
            table,
        }
    }

    /// Matrix name (for diagnostics and experiment logs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The alphabet whose codes index this matrix.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Similarity score of two residue codes.
    ///
    /// This is the innermost call of every DP kernel, hence `#[inline]` and
    /// unchecked-feeling but actually bounds-checked indexing (the codes
    /// come from `Sequence`, which guarantees range).
    #[inline(always)]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.table[a as usize * self.n + b as usize]
    }

    /// Similarity score of two characters (test/diagnostic convenience).
    pub fn score_chars(&self, a: char, b: char) -> Option<i32> {
        Some(self.score(
            self.alphabet.encode_symbol(a)?,
            self.alphabet.encode_symbol(b)?,
        ))
    }

    /// True when the matrix is symmetric (all built-ins are).
    pub fn is_symmetric(&self) -> bool {
        (0..self.n)
            .all(|i| (0..i).all(|j| self.table[i * self.n + j] == self.table[j * self.n + i]))
    }

    /// Largest score in the table (used for overflow reasoning and for the
    /// score upper bound `min(m,n) * max_score`).
    pub fn max_score(&self) -> i32 {
        self.table.iter().copied().max().unwrap_or(0)
    }

    /// Smallest score in the table.
    pub fn min_score(&self) -> i32 {
        self.table.iter().copied().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_mismatch_scores() {
        let m = SubstitutionMatrix::match_mismatch("unit", Alphabet::dna(), 5, -4);
        assert_eq!(m.score_chars('A', 'A'), Some(5));
        assert_eq!(m.score_chars('A', 'C'), Some(-4));
        assert!(m.is_symmetric());
        assert_eq!(m.max_score(), 5);
        assert_eq!(m.min_score(), -4);
    }

    #[test]
    #[should_panic(expected = "substitution table must be")]
    fn wrong_table_size_panics() {
        SubstitutionMatrix::from_table("bad", Alphabet::dna(), vec![0; 3]);
    }

    #[test]
    fn score_chars_rejects_unknown() {
        let m = SubstitutionMatrix::match_mismatch("unit", Alphabet::dna(), 1, 0);
        assert_eq!(m.score_chars('A', 'U'), None);
    }
}

//! Parser for NCBI-format substitution matrix files.
//!
//! The format used by BLAST/EMBOSS matrix distributions: `#` comment
//! lines, then a header row of column symbols, then one row per symbol
//! with integer scores. Symmetric by convention but not required.
//!
//! ```text
//! # Example
//!    A  C  G  T
//! A  5 -4 -4 -4
//! C -4  5 -4 -4
//! G -4 -4  5 -4
//! T -4 -4 -4  5
//! ```

use flsa_seq::Alphabet;

use crate::SubstitutionMatrix;

/// Errors from matrix-file parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixParseError {
    /// No header row of symbols found.
    MissingHeader,
    /// A data row's leading symbol is not in the header.
    UnknownRowSymbol(char),
    /// A row has the wrong number of scores.
    WrongRowWidth {
        /// Row symbol.
        symbol: char,
        /// Scores found.
        found: usize,
        /// Scores expected (header width).
        expected: usize,
    },
    /// A score failed to parse as an integer.
    BadScore(String),
    /// Header symbols are duplicated or non-ASCII.
    BadHeader(String),
    /// Rows were missing for some header symbols.
    MissingRows(usize),
}

impl std::fmt::Display for MatrixParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixParseError::MissingHeader => write!(f, "no header row of symbols"),
            MatrixParseError::UnknownRowSymbol(c) => {
                write!(f, "row symbol {c:?} not present in header")
            }
            MatrixParseError::WrongRowWidth {
                symbol,
                found,
                expected,
            } => {
                write!(f, "row {symbol:?} has {found} scores, expected {expected}")
            }
            MatrixParseError::BadScore(s) => write!(f, "invalid score {s:?}"),
            MatrixParseError::BadHeader(s) => write!(f, "invalid header: {s}"),
            MatrixParseError::MissingRows(n) => write!(f, "{n} header symbol(s) have no row"),
        }
    }
}

impl std::error::Error for MatrixParseError {}

/// Parses an NCBI-format matrix from text. The alphabet is built from the
/// header symbols in header order; the matrix `name` is caller-supplied
/// (files carry it only in comments).
pub fn parse_ncbi(name: &str, text: &str) -> Result<SubstitutionMatrix, MatrixParseError> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));

    let header_line = lines.next().ok_or(MatrixParseError::MissingHeader)?;
    let symbols: Vec<char> = header_line
        .split_whitespace()
        .map(|tok| {
            let mut chars = tok.chars();
            (chars.next(), chars.next())
        })
        .map(|(first, rest)| match (first, rest) {
            (Some(c), None) => Ok(c),
            _ => Err(MatrixParseError::BadHeader(format!(
                "multi-character symbol in {header_line:?}"
            ))),
        })
        .collect::<Result<_, _>>()?;
    if symbols.is_empty() {
        return Err(MatrixParseError::MissingHeader);
    }
    let sym_string: String = symbols.iter().collect();
    if !sym_string.is_ascii() {
        return Err(MatrixParseError::BadHeader("non-ASCII symbol".to_string()));
    }
    {
        let mut seen = [false; 256];
        for &c in &symbols {
            let u = c.to_ascii_uppercase() as usize;
            if seen[u] {
                return Err(MatrixParseError::BadHeader(format!(
                    "duplicate symbol {c:?}"
                )));
            }
            seen[u] = true;
        }
    }

    let n = symbols.len();
    let mut table = vec![i32::MIN; n * n];
    let mut rows_seen = vec![false; n];
    for line in lines {
        let mut toks = line.split_whitespace();
        let row_sym = toks
            .next()
            .and_then(|t| t.chars().next())
            .ok_or(MatrixParseError::MissingHeader)?;
        let row_idx = symbols
            .iter()
            .position(|&c| c.eq_ignore_ascii_case(&row_sym))
            .ok_or(MatrixParseError::UnknownRowSymbol(row_sym))?;
        let scores: Vec<&str> = toks.collect();
        if scores.len() != n {
            return Err(MatrixParseError::WrongRowWidth {
                symbol: row_sym,
                found: scores.len(),
                expected: n,
            });
        }
        for (col, tok) in scores.iter().enumerate() {
            let v: i32 = tok
                .parse()
                .map_err(|_| MatrixParseError::BadScore(tok.to_string()))?;
            table[row_idx * n + col] = v;
        }
        rows_seen[row_idx] = true;
    }
    let missing = rows_seen.iter().filter(|&&s| !s).count();
    if missing > 0 {
        return Err(MatrixParseError::MissingRows(missing));
    }

    // Leak-free static name trick is unnecessary: Alphabet wants &'static
    // str only for its diagnostic name; use a leaked copy for custom
    // alphabets (one per parsed file, negligible).
    let alpha_name: &'static str = Box::leak(format!("custom:{name}").into_boxed_str());
    let alphabet = Alphabet::new(alpha_name, &sym_string);
    Ok(SubstitutionMatrix::from_table(name, alphabet, table))
}

/// Renders a matrix back to NCBI format (round-trip support, and handy
/// for exporting the built-ins).
pub fn to_ncbi(matrix: &SubstitutionMatrix) -> String {
    let alpha = matrix.alphabet();
    let n = alpha.len();
    let mut out = String::new();
    out.push_str("# emitted by flsa-scoring\n  ");
    for c in 0..n {
        out.push_str(&format!(" {:>3}", alpha.decode(c as u8)));
    }
    out.push('\n');
    for r in 0..n {
        out.push_str(&format!("{:<2}", alpha.decode(r as u8)));
        for c in 0..n {
            out.push_str(&format!(" {:>3}", matrix.score(r as u8, c as u8)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DNA_TEXT: &str = "\
# test matrix
   A  C  G  T
A  5 -4 -4 -4
C -4  5 -4 -4
G -4 -4  5 -4
T -4 -4 -4  5
";

    #[test]
    fn parses_simple_dna_matrix() {
        let m = parse_ncbi("dna-test", DNA_TEXT).unwrap();
        assert_eq!(m.alphabet().len(), 4);
        assert_eq!(m.score_chars('A', 'A'), Some(5));
        assert_eq!(m.score_chars('G', 'T'), Some(-4));
        assert!(m.is_symmetric());
    }

    #[test]
    fn round_trips_blosum62() {
        let original = crate::tables::blosum62();
        let text = to_ncbi(&original);
        let parsed = parse_ncbi("blosum62", &text).unwrap();
        for a in "ARNDCQEGHILKMFPSTWYVBZX*".chars() {
            for b in "ARNDCQEGHILKMFPSTWYVBZX*".chars() {
                assert_eq!(
                    parsed.score_chars(a, b),
                    original.score_chars(a, b),
                    "{a}/{b}"
                );
            }
        }
    }

    #[test]
    fn reports_wrong_row_width() {
        let text = "  A C\nA 1\nC 0 1\n";
        assert_eq!(
            parse_ncbi("x", text).unwrap_err(),
            MatrixParseError::WrongRowWidth {
                symbol: 'A',
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn reports_unknown_row_symbol() {
        let text = "  A C\nA 1 0\nZ 0 1\n";
        assert_eq!(
            parse_ncbi("x", text).unwrap_err(),
            MatrixParseError::UnknownRowSymbol('Z')
        );
    }

    #[test]
    fn reports_bad_score() {
        let text = "  A C\nA 1 x\nC 0 1\n";
        assert!(matches!(
            parse_ncbi("x", text).unwrap_err(),
            MatrixParseError::BadScore(_)
        ));
    }

    #[test]
    fn reports_missing_rows() {
        let text = "  A C\nA 1 0\n";
        assert_eq!(
            parse_ncbi("x", text).unwrap_err(),
            MatrixParseError::MissingRows(1)
        );
    }

    #[test]
    fn reports_duplicate_header() {
        let text = "  A A\nA 1 0\n";
        assert!(matches!(
            parse_ncbi("x", text).unwrap_err(),
            MatrixParseError::BadHeader(_)
        ));
    }

    #[test]
    fn empty_input_is_missing_header() {
        assert_eq!(
            parse_ncbi("x", "# only comments\n").unwrap_err(),
            MatrixParseError::MissingHeader
        );
    }
}

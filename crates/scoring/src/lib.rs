//! Scoring functions for pairwise alignment.
//!
//! The paper scores alignments with a similarity table (its Table 1 shows a
//! fragment of the PepTool-scaled Dayhoff MDM78 matrix) plus a linear gap
//! penalty of −10. This crate provides:
//!
//! * [`SubstitutionMatrix`] — a dense, alphabet-indexed similarity table,
//! * [`tables`] — built-in matrices (the paper's Table 1 fragment,
//!   BLOSUM62, PAM250, DNA match/mismatch, identity),
//! * [`GapModel`] — linear (the paper's model) and affine (Gotoh
//!   extension) gap penalties,
//! * [`ScoringScheme`] — the bundle every aligner consumes.
#![forbid(unsafe_code)]

pub mod gap;
pub mod matrix;
pub mod parser;
pub mod profile;
pub mod scheme;
pub mod tables;

pub use gap::GapModel;
pub use matrix::SubstitutionMatrix;
pub use parser::{parse_ncbi, to_ncbi, MatrixParseError};
pub use profile::{QueryProfile, QueryProfileI16};
pub use scheme::ScoringScheme;

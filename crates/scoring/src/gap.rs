//! Gap penalty models.

/// How gaps are penalized.
///
/// The paper (and all of its experiments) uses a linear model: every gap
/// symbol costs the same fixed penalty. The affine model (Gotoh) is
/// provided as the conventional production extension; only the full-matrix
/// aligner supports it (see DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapModel {
    /// Each gap symbol adds `penalty` (negative) to the score.
    Linear {
        /// Per-symbol gap score; must be ≤ 0.
        penalty: i32,
    },
    /// Opening a gap adds `open`, each symbol (including the first) adds
    /// `extend`; both negative. A gap of length L costs `open + L*extend`.
    Affine {
        /// One-time gap-open score; must be ≤ 0.
        open: i32,
        /// Per-symbol gap-extension score; must be ≤ 0.
        extend: i32,
    },
}

impl GapModel {
    /// The paper's default: linear penalty −10.
    pub const PAPER_DEFAULT: GapModel = GapModel::Linear { penalty: -10 };

    /// Builds a linear model, validating sign.
    ///
    /// # Panics
    ///
    /// Panics when `penalty > 0` — a positive gap score makes "optimal
    /// alignment" unbounded, so this is a configuration error.
    pub fn linear(penalty: i32) -> Self {
        assert!(penalty <= 0, "gap penalty must be <= 0, got {penalty}");
        GapModel::Linear { penalty }
    }

    /// Builds an affine model, validating signs.
    ///
    /// # Panics
    ///
    /// Panics when either component is positive.
    pub fn affine(open: i32, extend: i32) -> Self {
        assert!(open <= 0 && extend <= 0, "affine gap scores must be <= 0");
        GapModel::Affine { open, extend }
    }

    /// The per-symbol penalty of a linear model.
    ///
    /// # Panics
    ///
    /// Panics on an affine model: the linear-space algorithms (FastLSA,
    /// Hirschberg) are defined for linear gaps only, and silently dropping
    /// the open cost would produce wrong scores.
    pub fn linear_penalty(&self) -> i32 {
        match *self {
            GapModel::Linear { penalty } => penalty,
            GapModel::Affine { .. } => {
                // flsa-check: allow(panic) — documented `# Panics`
                // contract: the solver validates the gap model up front
                // (ConfigError::GapModelNotAffine), so the DP kernels
                // only call this after admission.
                panic!("this aligner supports linear gap penalties only (paper's model)")
            }
        }
    }

    /// Worst-case score magnitude a single gap symbol can contribute.
    ///
    /// For the linear model this is `|penalty|`; for the affine model it
    /// conservatively charges the one-time open on every symbol,
    /// `|open| + |extend|`. Used by the i32-overflow guard
    /// (`fastlsa::max_safe_span`) and mirrored by the static audit's
    /// R10 certificate — both must stay at least this pessimistic.
    pub fn max_penalty_abs(&self) -> i64 {
        match *self {
            GapModel::Linear { penalty } => (penalty as i64).abs(),
            GapModel::Affine { open, extend } => (open as i64).abs() + (extend as i64).abs(),
        }
    }

    /// Total cost of a gap run of `len` symbols.
    pub fn run_cost(&self, len: usize) -> i64 {
        match *self {
            GapModel::Linear { penalty } => penalty as i64 * len as i64,
            GapModel::Affine { open, extend } => {
                if len == 0 {
                    0
                } else {
                    open as i64 + extend as i64 * len as i64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_minus_ten_linear() {
        assert_eq!(GapModel::PAPER_DEFAULT.linear_penalty(), -10);
        assert_eq!(GapModel::PAPER_DEFAULT.run_cost(3), -30);
    }

    #[test]
    fn affine_run_cost_counts_open_once() {
        let g = GapModel::affine(-10, -2);
        assert_eq!(g.run_cost(0), 0);
        assert_eq!(g.run_cost(1), -12);
        assert_eq!(g.run_cost(5), -20);
    }

    #[test]
    #[should_panic(expected = "linear gap penalties only")]
    fn linear_penalty_rejects_affine() {
        GapModel::affine(-10, -2).linear_penalty();
    }

    #[test]
    #[should_panic(expected = "must be <= 0")]
    fn positive_linear_penalty_rejected() {
        GapModel::linear(3);
    }
}

//! The scoring bundle consumed by every aligner.

use flsa_seq::{Alphabet, Sequence};

use crate::{GapModel, SubstitutionMatrix};

/// A complete scoring scheme: substitution matrix + gap model.
///
/// # Examples
///
/// ```
/// use flsa_scoring::ScoringScheme;
/// let scheme = ScoringScheme::paper_example();
/// assert_eq!(scheme.gap().linear_penalty(), -10);
/// assert_eq!(scheme.matrix().score_chars('L', 'V'), Some(12));
/// ```
#[derive(Debug, Clone)]
pub struct ScoringScheme {
    matrix: SubstitutionMatrix,
    gap: GapModel,
}

impl ScoringScheme {
    /// Bundles a matrix and a gap model.
    pub fn new(matrix: SubstitutionMatrix, gap: GapModel) -> Self {
        ScoringScheme { matrix, gap }
    }

    /// The paper's worked-example scheme: Table 1 fragment + gap −10.
    pub fn paper_example() -> Self {
        ScoringScheme::new(crate::tables::mdm_fragment(), GapModel::PAPER_DEFAULT)
    }

    /// BLOSUM62 + gap −10 (a reasonable protein default).
    pub fn protein_default() -> Self {
        ScoringScheme::new(crate::tables::blosum62(), GapModel::linear(-10))
    }

    /// +5/−4 DNA matrix + gap −10.
    pub fn dna_default() -> Self {
        ScoringScheme::new(crate::tables::dna_default(), GapModel::linear(-10))
    }

    /// Identity matrix + zero gap over `alphabet` (the LCS cross-check
    /// scheme).
    pub fn lcs(alphabet: Alphabet) -> Self {
        ScoringScheme::new(crate::tables::identity(alphabet), GapModel::linear(0))
    }

    /// The substitution matrix.
    pub fn matrix(&self) -> &SubstitutionMatrix {
        &self.matrix
    }

    /// The gap model.
    pub fn gap(&self) -> &GapModel {
        &self.gap
    }

    /// The alphabet the scheme scores over.
    pub fn alphabet(&self) -> &Alphabet {
        self.matrix.alphabet()
    }

    /// Substitution score of two residue codes (hot-path shorthand).
    #[inline(always)]
    pub fn sub(&self, a: u8, b: u8) -> i32 {
        self.matrix.score(a, b)
    }

    /// Checks that both sequences are encoded in this scheme's alphabet.
    ///
    /// # Panics
    ///
    /// Panics on mismatch: aligning sequences against the wrong matrix is
    /// never recoverable and would silently produce garbage scores.
    pub fn check_sequences(&self, a: &Sequence, b: &Sequence) {
        assert!(
            a.alphabet() == self.alphabet() && b.alphabet() == self.alphabet(),
            "sequences must be encoded in the scoring scheme's alphabet ({})",
            self.alphabet().name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_seq::Sequence;

    #[test]
    fn check_sequences_accepts_matching_alphabet() {
        let scheme = ScoringScheme::dna_default();
        let a = Sequence::from_str("a", scheme.alphabet(), "ACGT").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "ACGA").unwrap();
        scheme.check_sequences(&a, &b);
    }

    #[test]
    #[should_panic(expected = "scoring scheme's alphabet")]
    fn check_sequences_rejects_mismatch() {
        let scheme = ScoringScheme::dna_default();
        let a = Sequence::from_str("a", &Alphabet::protein(), "ACGT").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "ACGT").unwrap();
        scheme.check_sequences(&a, &b);
    }

    #[test]
    fn lcs_scheme_has_zero_gap() {
        let scheme = ScoringScheme::lcs(Alphabet::dna());
        assert_eq!(scheme.gap().linear_penalty(), 0);
        assert_eq!(scheme.sub(0, 0), 1);
        assert_eq!(scheme.sub(0, 1), 0);
    }
}

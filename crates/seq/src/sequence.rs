//! Encoded sequences.

use crate::{Alphabet, SeqError};

/// An encoded biological sequence.
///
/// Residues are stored as alphabet codes (see [`Alphabet`]); the DP kernels
/// operate on `&[u8]` code slices obtained from [`Sequence::codes`].
///
/// # Examples
///
/// ```
/// use flsa_seq::{Alphabet, Sequence};
/// let s = Sequence::from_str("query", &Alphabet::protein(), "TLDKLLKD").unwrap();
/// assert_eq!(s.len(), 8);
/// assert_eq!(s.to_string(), "TLDKLLKD");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Sequence {
    id: String,
    alphabet: Alphabet,
    codes: Vec<u8>,
}

impl std::fmt::Debug for Sequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: String = self
            .codes
            .iter()
            .take(24)
            .map(|&c| self.alphabet.decode(c))
            .collect();
        let ellipsis = if self.codes.len() > 24 { "…" } else { "" };
        write!(
            f,
            "Sequence({:?}, len={}, {}{})",
            self.id,
            self.codes.len(),
            preview,
            ellipsis
        )
    }
}

impl std::fmt::Display for Sequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.alphabet.decode_all(&self.codes))
    }
}

impl Sequence {
    /// Builds a sequence by encoding `text` with `alphabet`.
    pub fn from_str(id: &str, alphabet: &Alphabet, text: &str) -> Result<Self, SeqError> {
        Ok(Sequence {
            id: id.to_string(),
            alphabet: alphabet.clone(),
            codes: alphabet.encode_str(text)?,
        })
    }

    /// Builds a sequence from pre-encoded codes.
    ///
    /// # Panics
    ///
    /// Panics when any code is out of range for `alphabet` — codes are an
    /// internal representation, so an out-of-range code is a logic error.
    pub fn from_codes(id: &str, alphabet: &Alphabet, codes: Vec<u8>) -> Self {
        let n = alphabet.len() as u8;
        assert!(
            codes.iter().all(|&c| c < n),
            "sequence code out of alphabet range"
        );
        Sequence {
            id: id.to_string(),
            alphabet: alphabet.clone(),
            codes,
        }
    }

    /// Sequence identifier (FASTA header word).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The alphabet the sequence is encoded in.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Encoded residues.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Residue count.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the sequence has no residues.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// A new sequence holding the reverse of this one (used by
    /// Hirschberg's backward pass).
    pub fn reversed(&self) -> Sequence {
        let mut codes = self.codes.clone();
        codes.reverse();
        Sequence {
            id: format!("{}|rev", self.id),
            alphabet: self.alphabet.clone(),
            codes,
        }
    }

    /// A sub-sequence covering `range` (by residue index).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Sequence {
        Sequence {
            id: format!("{}[{}..{}]", self.id, range.start, range.end),
            alphabet: self.alphabet.clone(),
            codes: self.codes[range].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_round_trips() {
        let s = Sequence::from_str("x", &Alphabet::dna(), "ACGTACGT").unwrap();
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.len(), 8);
        assert_eq!(s.id(), "x");
    }

    #[test]
    fn reversed_reverses() {
        let s = Sequence::from_str("x", &Alphabet::dna(), "ACGT").unwrap();
        assert_eq!(s.reversed().to_string(), "TGCA");
        assert_eq!(s.reversed().reversed().codes(), s.codes());
    }

    #[test]
    fn slice_extracts_range() {
        let s = Sequence::from_str("x", &Alphabet::dna(), "ACGTACGT").unwrap();
        assert_eq!(s.slice(2..6).to_string(), "GTAC");
    }

    #[test]
    #[should_panic(expected = "out of alphabet range")]
    fn from_codes_rejects_out_of_range() {
        Sequence::from_codes("x", &Alphabet::dna(), vec![0, 1, 200]);
    }

    #[test]
    fn empty_sequence_is_legal() {
        let s = Sequence::from_str("e", &Alphabet::dna(), "").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.reversed().len(), 0);
    }
}

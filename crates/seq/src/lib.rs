//! Sequence substrate for the FastLSA reproduction.
//!
//! This crate provides everything the alignment algorithms consume that is
//! *about the data* rather than about dynamic programming:
//!
//! * [`Alphabet`] — residue alphabets (DNA, protein, or custom) with a
//!   compact `u8` code space,
//! * [`Sequence`] — an encoded biological sequence with an identifier,
//! * [`fasta`] — FASTA parsing and serialization,
//! * [`generate`] — seeded random sequence and homologous-pair generators
//!   (the stand-in for the paper's Table 3 workloads; see DESIGN.md §2),
//! * [`workload`] — the named workload suite used by the experiment
//!   harness.
//!
//! Sequences are stored *encoded*: each residue is a small integer code in
//! `0..alphabet.len()`. The scoring crate indexes substitution matrices
//! directly by these codes, so the DP inner loops never touch ASCII.
#![forbid(unsafe_code)]

pub mod alphabet;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod generate;
pub mod sequence;
pub mod stats;
pub mod workload;

pub use alphabet::Alphabet;
pub use error::SeqError;
pub use sequence::Sequence;

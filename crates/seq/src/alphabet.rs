//! Residue alphabets.
//!
//! An [`Alphabet`] maps between ASCII residue characters and compact `u8`
//! codes `0..len()`. The scoring crate builds substitution tables indexed by
//! these codes, so the encoding must be stable: code order is the order of
//! the `symbols` string.

use crate::SeqError;

/// The 20 standard amino acids in the conventional alphabetical
/// one-letter order used by PAM/BLOSUM tables, plus the ambiguity/extra
/// codes `B`, `Z`, `X` and the stop `*`.
pub const PROTEIN_SYMBOLS: &str = "ARNDCQEGHILKMFPSTWYVBZX*";

/// DNA nucleotides plus the ambiguity code `N`.
pub const DNA_SYMBOLS: &str = "ACGTN";

/// A residue alphabet: an ordered set of ASCII symbols with a dense code
/// space `0..len()`.
///
/// Encoding is case-insensitive (lower-case input maps to the upper-case
/// symbol). Two alphabets are equal when their symbol strings are equal.
///
/// # Examples
///
/// ```
/// use flsa_seq::Alphabet;
/// let dna = Alphabet::dna();
/// assert_eq!(dna.len(), 5);
/// assert_eq!(dna.encode_symbol('a').unwrap(), dna.encode_symbol('A').unwrap());
/// assert_eq!(dna.decode(0), 'A');
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Alphabet {
    name: &'static str,
    symbols: Vec<u8>,
    /// ASCII byte -> code + 1 (0 means invalid), case-folded at build time.
    lut: [u8; 256],
}

impl std::fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Alphabet")
            .field("name", &self.name)
            .field(
                "symbols",
                &std::str::from_utf8(&self.symbols).unwrap_or("?"),
            )
            .finish()
    }
}

impl Alphabet {
    /// Builds an alphabet from a symbol string. Symbols must be distinct
    /// ASCII; at most 250 symbols are supported (codes must fit the LUT
    /// sentinel scheme).
    ///
    /// # Panics
    ///
    /// Panics on duplicate or non-ASCII symbols — alphabets are static
    /// configuration, so this is a programming error, not a runtime error.
    pub fn new(name: &'static str, symbols: &str) -> Self {
        assert!(symbols.is_ascii(), "alphabet symbols must be ASCII");
        assert!(symbols.len() <= 250, "alphabet too large");
        let symbols: Vec<u8> = symbols.bytes().collect();
        let mut lut = [0u8; 256];
        for (code, &b) in symbols.iter().enumerate() {
            let up = b.to_ascii_uppercase();
            let lo = b.to_ascii_lowercase();
            assert!(
                lut[up as usize] == 0,
                "duplicate alphabet symbol {:?}",
                b as char
            );
            lut[up as usize] = code as u8 + 1;
            lut[lo as usize] = code as u8 + 1;
        }
        Alphabet { name, symbols, lut }
    }

    /// The standard protein alphabet (24 codes: 20 amino acids, `B`, `Z`,
    /// `X`, `*`), matching PAM/BLOSUM table order.
    pub fn protein() -> Self {
        Alphabet::new("protein", PROTEIN_SYMBOLS)
    }

    /// The DNA alphabet `ACGTN`.
    pub fn dna() -> Self {
        Alphabet::new("dna", DNA_SYMBOLS)
    }

    /// Alphabet name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of distinct codes.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the alphabet has no symbols (never true for the built-ins).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Encodes one character, case-insensitively.
    pub fn encode_symbol(&self, c: char) -> Option<u8> {
        if !c.is_ascii() {
            return None;
        }
        match self.lut[c as usize] {
            0 => None,
            v => Some(v - 1),
        }
    }

    /// Decodes a code back to its (upper-case form of the) symbol.
    ///
    /// # Panics
    ///
    /// Panics when `code >= self.len()`.
    pub fn decode(&self, code: u8) -> char {
        self.symbols[code as usize] as char
    }

    /// Encodes a string, reporting the first invalid symbol.
    pub fn encode_str(&self, s: &str) -> Result<Vec<u8>, SeqError> {
        let mut out = Vec::with_capacity(s.len());
        for (i, c) in s.char_indices() {
            match self.encode_symbol(c) {
                Some(code) => out.push(code),
                None => {
                    return Err(SeqError::InvalidSymbol {
                        symbol: c,
                        position: i,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Decodes a code slice to a `String`.
    pub fn decode_all(&self, codes: &[u8]) -> String {
        codes.iter().map(|&c| self.decode(c)).collect()
    }

    /// True when `c` is encodable.
    pub fn contains(&self, c: char) -> bool {
        self.encode_symbol(c).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_alphabet_has_24_codes_in_blosum_order() {
        let p = Alphabet::protein();
        assert_eq!(p.len(), 24);
        assert_eq!(p.encode_symbol('A'), Some(0));
        assert_eq!(p.encode_symbol('R'), Some(1));
        assert_eq!(p.encode_symbol('V'), Some(19));
        assert_eq!(p.encode_symbol('*'), Some(23));
    }

    #[test]
    fn dna_round_trips() {
        let d = Alphabet::dna();
        for (i, c) in "ACGTN".chars().enumerate() {
            assert_eq!(d.encode_symbol(c), Some(i as u8));
            assert_eq!(d.decode(i as u8), c);
        }
    }

    #[test]
    fn encoding_is_case_insensitive() {
        let d = Alphabet::dna();
        assert_eq!(d.encode_str("acgt").unwrap(), d.encode_str("ACGT").unwrap());
    }

    #[test]
    fn invalid_symbol_is_reported_with_position() {
        let d = Alphabet::dna();
        let err = d.encode_str("ACGU").unwrap_err();
        assert_eq!(
            err,
            SeqError::InvalidSymbol {
                symbol: 'U',
                position: 3
            }
        );
    }

    #[test]
    fn non_ascii_rejected() {
        let d = Alphabet::dna();
        assert_eq!(d.encode_symbol('é'), None);
    }

    #[test]
    fn decode_all_round_trips() {
        let p = Alphabet::protein();
        let s = "TLDKLLKD";
        assert_eq!(p.decode_all(&p.encode_str(s).unwrap()), s);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_symbols_panic() {
        Alphabet::new("bad", "AA");
    }
}

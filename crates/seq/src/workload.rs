//! The named workload suite (stand-in for the paper's Table 3).
//!
//! The paper's experiments align real protein and DNA pairs whose lengths
//! range from a few hundred residues to hundreds of kilobases. The exact
//! sequences are not redistributable, so this module defines a suite of
//! *synthetic* pairs spanning the same length scales and similarity bands,
//! generated deterministically from fixed seeds (see DESIGN.md §2 for the
//! substitution argument). Experiment harnesses refer to workloads by name
//! so that every table/figure is regenerated from identical inputs.

use crate::generate::homologous_pair;
use crate::{Alphabet, Sequence};

/// Kind of biological data a workload mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Protein pair (20-letter alphabet, PAM/BLOSUM scoring).
    Protein,
    /// DNA pair (4-letter alphabet, match/mismatch scoring).
    Dna,
}

/// A named entry of the workload suite.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Stable name used by the experiment harness and EXPERIMENTS.md.
    pub name: &'static str,
    /// Data kind (decides alphabet and default scoring).
    pub kind: WorkloadKind,
    /// Ancestor length (descendant length differs slightly via indels).
    pub len: usize,
    /// Approximate fractional identity of the pair.
    pub identity: f64,
    /// Generator seed (fixed: workloads are reproducible by name).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Materializes the pair of sequences for this workload.
    pub fn generate(&self) -> (Sequence, Sequence) {
        let alphabet = match self.kind {
            WorkloadKind::Protein => Alphabet::protein(),
            WorkloadKind::Dna => Alphabet::dna(),
        };
        homologous_pair(self.name, &alphabet, self.len, self.identity, self.seed)
            // flsa-check: allow(unwrap) — SUITE entries are valid by construction
            .expect("suite parameters are valid by construction")
    }
}

/// The full suite, ordered by size. Mirrors the spread of the paper's
/// Table 3: small proteins, mid-size proteins, and DNA from 1 kb up to
/// hundreds of kb.
pub const SUITE: &[WorkloadSpec] = &[
    WorkloadSpec {
        name: "prot-0.3k",
        kind: WorkloadKind::Protein,
        len: 300,
        identity: 0.85,
        seed: 101,
    },
    WorkloadSpec {
        name: "prot-1k",
        kind: WorkloadKind::Protein,
        len: 1_000,
        identity: 0.80,
        seed: 102,
    },
    WorkloadSpec {
        name: "prot-4k",
        kind: WorkloadKind::Protein,
        len: 4_000,
        identity: 0.75,
        seed: 103,
    },
    WorkloadSpec {
        name: "dna-1k",
        kind: WorkloadKind::Dna,
        len: 1_000,
        identity: 0.90,
        seed: 201,
    },
    WorkloadSpec {
        name: "dna-4k",
        kind: WorkloadKind::Dna,
        len: 4_000,
        identity: 0.85,
        seed: 202,
    },
    WorkloadSpec {
        name: "dna-16k",
        kind: WorkloadKind::Dna,
        len: 16_000,
        identity: 0.80,
        seed: 203,
    },
    WorkloadSpec {
        name: "dna-64k",
        kind: WorkloadKind::Dna,
        len: 64_000,
        identity: 0.75,
        seed: 204,
    },
    WorkloadSpec {
        name: "dna-256k",
        kind: WorkloadKind::Dna,
        len: 256_000,
        identity: 0.70,
        seed: 205,
    },
    WorkloadSpec {
        name: "dna-512k",
        kind: WorkloadKind::Dna,
        len: 512_000,
        identity: 0.70,
        seed: 206,
    },
];

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<&'static WorkloadSpec> {
    SUITE.iter().find(|w| w.name == name)
}

/// The sub-suite with ancestor length ≤ `max_len` (experiment harnesses use
/// this to bound runtime on small machines).
pub fn up_to(max_len: usize) -> Vec<&'static WorkloadSpec> {
    SUITE.iter().filter(|w| w.len <= max_len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique() {
        let mut names: Vec<_> = SUITE.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SUITE.len());
    }

    #[test]
    fn suite_is_sorted_by_kind_then_size() {
        for pair in SUITE.windows(2) {
            if pair[0].kind == pair[1].kind {
                assert!(pair[0].len <= pair[1].len);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = by_name("dna-1k").unwrap();
        let (a1, b1) = w.generate();
        let (a2, b2) = w.generate();
        assert_eq!(a1.codes(), a2.codes());
        assert_eq!(b1.codes(), b2.codes());
    }

    #[test]
    fn lengths_match_spec_scale() {
        let w = by_name("prot-1k").unwrap();
        let (a, b) = w.generate();
        assert_eq!(a.len(), 1000);
        let ratio = b.len() as f64 / a.len() as f64;
        assert!((0.8..1.2).contains(&ratio));
    }

    #[test]
    fn up_to_filters_by_length() {
        assert!(up_to(4000).iter().all(|w| w.len <= 4000));
        assert!(up_to(usize::MAX).len() == SUITE.len());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nope").is_none());
    }
}

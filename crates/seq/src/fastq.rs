//! Minimal FASTQ reading.
//!
//! Sequencing pipelines hand reads around as FASTQ; the aligners ignore
//! base qualities, but a production library must at least ingest the
//! format. Each record is four lines: `@id`, bases, `+`(optional id), qualities
//! (Phred+33). Qualities are validated for length and character range
//! and returned alongside the sequence.

use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use crate::{Alphabet, SeqError, Sequence};

/// One FASTQ record: the encoded sequence plus its Phred quality scores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// The encoded sequence.
    pub seq: Sequence,
    /// Phred quality per residue (already offset-corrected, i.e. 0–93).
    pub quals: Vec<u8>,
}

impl FastqRecord {
    /// Mean Phred quality (0 for an empty read).
    pub fn mean_quality(&self) -> f64 {
        if self.quals.is_empty() {
            return 0.0;
        }
        self.quals.iter().map(|&q| q as f64).sum::<f64>() / self.quals.len() as f64
    }
}

/// Parses every record from a FASTQ string.
///
/// # Examples
///
/// ```
/// use flsa_seq::{fastq, Alphabet};
/// let recs = fastq::parse_str("@r1\nACGT\n+\nIIII\n", &Alphabet::dna()).unwrap();
/// assert_eq!(recs[0].seq.to_string(), "ACGT");
/// assert_eq!(recs[0].quals, vec![40; 4]);
/// ```
pub fn parse_str(input: &str, alphabet: &Alphabet) -> Result<Vec<FastqRecord>, SeqError> {
    parse_reader(input.as_bytes(), alphabet)
}

/// Parses every record from a reader.
pub fn parse_reader<R: Read>(reader: R, alphabet: &Alphabet) -> Result<Vec<FastqRecord>, SeqError> {
    let mut out = Vec::new();
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;
    while let Some(header) = next_line(&mut lines, &mut lineno)? {
        let id = header
            .strip_prefix('@')
            .ok_or_else(|| SeqError::MalformedFastq {
                reason: format!("expected '@' header, got {header:?}"),
                line: lineno,
            })?
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string();
        if id.is_empty() {
            return Err(SeqError::MalformedFastq {
                reason: "empty FASTQ record id".into(),
                line: lineno,
            });
        }
        let bases = next_line(&mut lines, &mut lineno)?.ok_or_else(|| truncated(lineno))?;
        let plus = next_line(&mut lines, &mut lineno)?.ok_or_else(|| truncated(lineno))?;
        if !plus.starts_with('+') {
            return Err(SeqError::MalformedFastq {
                reason: format!("expected '+' separator, got {plus:?}"),
                line: lineno,
            });
        }
        let quals_line = next_line(&mut lines, &mut lineno)?.ok_or_else(|| truncated(lineno))?;
        if quals_line.len() != bases.len() {
            return Err(SeqError::MalformedFastq {
                reason: format!(
                    "quality length {} != sequence length {}",
                    quals_line.len(),
                    bases.len()
                ),
                line: lineno,
            });
        }
        let mut quals = Vec::with_capacity(quals_line.len());
        for ch in quals_line.bytes() {
            if !(b'!'..=b'~').contains(&ch) {
                return Err(SeqError::MalformedFastq {
                    reason: format!("quality character {:?} outside Phred+33 range", ch as char),
                    line: lineno,
                });
            }
            quals.push(ch - b'!');
        }
        let codes = alphabet
            .encode_str(&bases)
            .map_err(|e| SeqError::MalformedFastq {
                reason: e.to_string(),
                line: lineno - 2,
            })?;
        out.push(FastqRecord {
            seq: Sequence::from_codes(&id, alphabet, codes),
            quals,
        });
    }
    Ok(out)
}

/// Reads every record from a FASTQ file.
pub fn read_file<P: AsRef<Path>>(
    path: P,
    alphabet: &Alphabet,
) -> Result<Vec<FastqRecord>, SeqError> {
    parse_reader(std::fs::File::open(path)?, alphabet)
}

fn next_line(
    lines: &mut std::io::Lines<impl BufRead>,
    lineno: &mut usize,
) -> Result<Option<String>, SeqError> {
    for line in lines.by_ref() {
        let line = line?;
        *lineno += 1;
        let trimmed = line.trim_end_matches('\r');
        if !trimmed.is_empty() {
            return Ok(Some(trimmed.to_string()));
        }
    }
    Ok(None)
}

fn truncated(line: usize) -> SeqError {
    SeqError::MalformedFastq {
        reason: "truncated FASTQ record".into(),
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_records() {
        let recs = parse_str(
            "@r1 desc\nACGT\n+\nII5I\n@r2\nGG\n+r2\n!~\n",
            &Alphabet::dna(),
        )
        .unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.id(), "r1");
        assert_eq!(recs[0].seq.to_string(), "ACGT");
        assert_eq!(recs[0].quals, vec![40, 40, 20, 40]);
        assert_eq!(recs[1].quals, vec![0, 93]);
    }

    #[test]
    fn mean_quality() {
        let recs = parse_str("@r\nAC\n+\n!I\n", &Alphabet::dna()).unwrap();
        assert!((recs[0].mean_quality() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn quality_length_mismatch_rejected() {
        let err = parse_str("@r\nACGT\n+\nII\n", &Alphabet::dna()).unwrap_err();
        assert!(matches!(err, SeqError::MalformedFastq { .. }));
    }

    #[test]
    fn missing_plus_rejected() {
        let err = parse_str("@r\nACGT\nIIII\n@x\n", &Alphabet::dna()).unwrap_err();
        assert!(err.to_string().contains("separator"));
    }

    #[test]
    fn truncated_record_rejected() {
        // Cut after every prefix of a record: each must be a structured
        // MalformedFastq error, never a panic or a silent partial parse.
        for (cut, text) in [(1, "@r\n"), (2, "@r\nACGT\n"), (3, "@r\nACGT\n+\n")] {
            let err = parse_str(text, &Alphabet::dna()).unwrap_err();
            assert!(
                matches!(err, SeqError::MalformedFastq { .. }),
                "cut after line {cut}: {err}"
            );
            assert!(err.to_string().contains("truncated"), "cut {cut}: {err}");
        }
    }

    #[test]
    fn invalid_base_rejected() {
        let err = parse_str("@r\nACXT\n+\nIIII\n", &Alphabet::dna()).unwrap_err();
        assert!(matches!(err, SeqError::MalformedFastq { .. }));
    }

    #[test]
    fn out_of_range_quality_rejected() {
        let err = parse_str("@r\nAC\n+\nI \n", &Alphabet::dna()).unwrap_err();
        assert!(err.to_string().contains("Phred"));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse_str("", &Alphabet::dna()).unwrap().is_empty());
    }
}

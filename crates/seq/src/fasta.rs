//! Minimal FASTA reading and writing.
//!
//! Supports multi-record files, line-wrapped bodies, `;` comment lines, and
//! CRLF line endings. Records are encoded eagerly with the caller-supplied
//! alphabet so downstream code never sees raw ASCII.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{Alphabet, SeqError, Sequence};

/// Parses every record from a FASTA string.
///
/// # Examples
///
/// ```
/// use flsa_seq::{Alphabet, fasta};
/// let recs = fasta::parse_str(">a desc\nACGT\nACGT\n>b\nTTTT\n", &Alphabet::dna()).unwrap();
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[0].id(), "a");
/// assert_eq!(recs[0].len(), 8);
/// ```
pub fn parse_str(input: &str, alphabet: &Alphabet) -> Result<Vec<Sequence>, SeqError> {
    parse_reader(input.as_bytes(), alphabet)
}

/// Parses every record from any reader.
pub fn parse_reader<R: Read>(reader: R, alphabet: &Alphabet) -> Result<Vec<Sequence>, SeqError> {
    let mut records = Vec::new();
    let mut current: Option<(String, Vec<u8>)> = None;
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;

    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            if let Some((id, codes)) = current.take() {
                records.push(finish_record(id, codes, alphabet, lineno)?);
            }
            let id = header.split_whitespace().next().unwrap_or("").to_string();
            if id.is_empty() {
                return Err(SeqError::MalformedFasta {
                    reason: "empty record header".to_string(),
                    line: lineno,
                });
            }
            current = Some((id, Vec::new()));
        } else {
            let (_, codes) = current.as_mut().ok_or_else(|| SeqError::MalformedFasta {
                reason: "sequence data before first '>' header".to_string(),
                line: lineno,
            })?;
            for (i, c) in trimmed.char_indices() {
                match alphabet.encode_symbol(c) {
                    Some(code) => codes.push(code),
                    None => {
                        return Err(SeqError::MalformedFasta {
                            reason: format!("invalid residue {c:?} at column {}", i + 1),
                            line: lineno,
                        })
                    }
                }
            }
        }
    }
    if let Some((id, codes)) = current.take() {
        records.push(finish_record(id, codes, alphabet, lineno)?);
    }
    Ok(records)
}

/// A record is complete only once it has body lines: a bare `>id` header
/// (mid-file or at EOF) is a truncated record, not an empty sequence.
fn finish_record(
    id: String,
    codes: Vec<u8>,
    alphabet: &Alphabet,
    lineno: usize,
) -> Result<Sequence, SeqError> {
    if codes.is_empty() {
        return Err(SeqError::MalformedFasta {
            reason: format!("record {id:?} has no sequence data (truncated record?)"),
            line: lineno,
        });
    }
    Ok(Sequence::from_codes(&id, alphabet, codes))
}

/// Reads every record from a FASTA file.
pub fn read_file<P: AsRef<Path>>(path: P, alphabet: &Alphabet) -> Result<Vec<Sequence>, SeqError> {
    let file = std::fs::File::open(path)?;
    parse_reader(file, alphabet)
}

/// Writes records in FASTA format, wrapping bodies at `width` characters.
pub fn write_to<W: Write>(mut w: W, records: &[Sequence], width: usize) -> Result<(), SeqError> {
    let width = width.max(1);
    for rec in records {
        writeln!(w, ">{}", rec.id())?;
        let text = rec.alphabet().decode_all(rec.codes());
        for chunk in text.as_bytes().chunks(width) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Renders records to a FASTA string (60-column bodies).
pub fn to_string(records: &[Sequence]) -> String {
    let mut buf = Vec::new();
    // flsa-check: allow(unwrap) — writing to a Vec is infallible
    write_to(&mut buf, records, 60).expect("writing to a Vec cannot fail");
    // flsa-check: allow(unwrap) — FASTA bodies are ASCII by construction
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

/// Writes records to a file (60-column bodies).
pub fn write_file<P: AsRef<Path>>(path: P, records: &[Sequence]) -> Result<(), SeqError> {
    let file = std::fs::File::create(path)?;
    write_to(std::io::BufWriter::new(file), records, 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_record_wrapped_fasta() {
        let recs = parse_str(">s1 first\nACGT\nACG\n\n>s2\nTT\nTT\n", &Alphabet::dna()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].to_string(), "ACGTACG");
        assert_eq!(recs[1].to_string(), "TTTT");
    }

    #[test]
    fn header_takes_first_word_as_id() {
        let recs = parse_str(">seq/1 some description here\nAC\n", &Alphabet::dna()).unwrap();
        assert_eq!(recs[0].id(), "seq/1");
    }

    #[test]
    fn crlf_and_comments_are_tolerated() {
        let recs = parse_str("; comment\r\n>a\r\nACGT\r\n", &Alphabet::dna()).unwrap();
        assert_eq!(recs[0].to_string(), "ACGT");
    }

    #[test]
    fn data_before_header_is_an_error() {
        let err = parse_str("ACGT\n>a\nAC\n", &Alphabet::dna()).unwrap_err();
        assert!(matches!(err, SeqError::MalformedFasta { line: 1, .. }));
    }

    #[test]
    fn invalid_residue_reports_line() {
        let err = parse_str(">a\nACGT\nACXT\n", &Alphabet::dna()).unwrap_err();
        assert!(matches!(err, SeqError::MalformedFasta { line: 3, .. }));
    }

    #[test]
    fn truncated_records_rejected() {
        // A header with no body — at EOF or mid-file — is malformed.
        for text in [">a\n", ">a\n>b\nAC\n"] {
            let err = parse_str(text, &Alphabet::dna()).unwrap_err();
            assert!(
                matches!(err, SeqError::MalformedFasta { .. }),
                "{text:?}: {err}"
            );
            assert!(err.to_string().contains("no sequence data"), "{err}");
        }
    }

    #[test]
    fn empty_header_is_an_error() {
        let err = parse_str(">\nAC\n", &Alphabet::dna()).unwrap_err();
        assert!(matches!(err, SeqError::MalformedFasta { line: 1, .. }));
    }

    #[test]
    fn round_trip_through_string() {
        let alpha = Alphabet::protein();
        let recs = vec![
            Sequence::from_str("a", &alpha, "TLDKLLKD").unwrap(),
            Sequence::from_str("b", &alpha, "TDVLKAD").unwrap(),
        ];
        let text = to_string(&recs);
        let back = parse_str(&text, &alpha).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn bodies_wrap_at_requested_width() {
        let alpha = Alphabet::dna();
        let rec = Sequence::from_str("a", &alpha, &"ACGT".repeat(10)).unwrap();
        let mut buf = Vec::new();
        write_to(&mut buf, std::slice::from_ref(&rec), 8).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let body_lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(body_lines.len(), 5);
        assert!(body_lines.iter().take(4).all(|l| l.len() == 8));
    }
}

//! Error type shared by the sequence substrate.

use std::fmt;

/// Errors produced while encoding, parsing or generating sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A character that the target [`crate::Alphabet`] cannot encode.
    InvalidSymbol {
        /// The offending character.
        symbol: char,
        /// Byte offset in the input where it occurred.
        position: usize,
    },
    /// FASTA input was structurally malformed.
    MalformedFasta {
        /// Human-readable description of the problem.
        reason: String,
        /// Line number (1-based) where the problem was detected.
        line: usize,
    },
    /// FASTQ input was structurally malformed (bad header, missing `+`
    /// separator, truncated record, or quality-line problems).
    MalformedFastq {
        /// Human-readable description of the problem.
        reason: String,
        /// Line number (1-based) where the problem was detected.
        line: usize,
    },
    /// An I/O error while reading or writing sequence files.
    Io(String),
    /// A generator was asked for an impossible configuration
    /// (e.g. a mutation rate outside `[0, 1]`).
    InvalidParameter(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidSymbol { symbol, position } => {
                write!(f, "invalid symbol {symbol:?} at byte {position}")
            }
            SeqError::MalformedFasta { reason, line } => {
                write!(f, "malformed FASTA at line {line}: {reason}")
            }
            SeqError::MalformedFastq { reason, line } => {
                write!(f, "malformed FASTQ at line {line}: {reason}")
            }
            SeqError::Io(msg) => write!(f, "I/O error: {msg}"),
            SeqError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {}

impl From<std::io::Error> for SeqError {
    fn from(e: std::io::Error) -> Self {
        SeqError::Io(e.to_string())
    }
}

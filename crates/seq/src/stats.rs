//! Sequence composition statistics.
//!
//! Used by the CLI's `info`/reporting paths and by the workload suite's
//! validation tests: synthetic sequences must look statistically like
//! the real data they stand in for (uniform-ish composition, no
//! low-complexity artifacts), otherwise the alignment path shapes — the
//! one data property the algorithms are sensitive to — would be off.

use crate::Sequence;

/// Residue composition and complexity summary of one sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqStats {
    /// Count per alphabet code.
    pub counts: Vec<u64>,
    /// Sequence length.
    pub len: usize,
    /// Shannon entropy of the residue distribution, in bits.
    pub entropy_bits: f64,
}

impl SeqStats {
    /// Computes the summary.
    pub fn of(seq: &Sequence) -> SeqStats {
        let mut counts = vec![0u64; seq.alphabet().len()];
        for &c in seq.codes() {
            counts[c as usize] += 1;
        }
        let len = seq.len();
        let entropy_bits = if len == 0 {
            0.0
        } else {
            counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / len as f64;
                    -p * p.log2()
                })
                .sum()
        };
        SeqStats {
            counts,
            len,
            entropy_bits,
        }
    }

    /// Frequency of one residue (by character), 0 when absent or unknown.
    pub fn frequency(&self, seq: &Sequence, symbol: char) -> f64 {
        match seq.alphabet().encode_symbol(symbol) {
            Some(code) if self.len > 0 => self.counts[code as usize] as f64 / self.len as f64,
            _ => 0.0,
        }
    }
}

/// GC fraction of a DNA sequence (G + C over non-N residues); `None` for
/// empty or all-ambiguous input.
pub fn gc_content(seq: &Sequence) -> Option<f64> {
    let alpha = seq.alphabet();
    let g = alpha.encode_symbol('G')?;
    let c = alpha.encode_symbol('C')?;
    let n = alpha.encode_symbol('N');
    let mut gc = 0u64;
    let mut total = 0u64;
    for &code in seq.codes() {
        if Some(code) == n {
            continue;
        }
        total += 1;
        if code == g || code == c {
            gc += 1;
        }
    }
    (total > 0).then(|| gc as f64 / total as f64)
}

/// Counts of all overlapping k-mers (as code tuples), returned as a map
/// from the packed k-mer id to its count. Packing: base-`alphabet.len()`
/// little-endian. `k` up to 12 for DNA fits comfortably in `u64`.
///
/// # Panics
///
/// Panics when `alphabet.len().pow(k)` overflows `u64`.
pub fn kmer_counts(seq: &Sequence, k: usize) -> std::collections::HashMap<u64, u64> {
    assert!(k >= 1, "k must be positive");
    let radix = seq.alphabet().len() as u64;
    assert!(
        radix.checked_pow(k as u32).is_some(),
        "k-mer space must fit in u64 (|alphabet|^{k} overflows)"
    );
    let mut map = std::collections::HashMap::new();
    if seq.len() < k {
        return map;
    }
    for win in seq.codes().windows(k) {
        let mut id = 0u64;
        for &c in win.iter().rev() {
            id = id * radix + c as u64;
        }
        *map.entry(id).or_insert(0) += 1;
    }
    map
}

/// Fraction of distinct k-mers observed out of the maximum possible for
/// the sequence length — a cheap low-complexity detector (repetitive
/// sequences score low).
pub fn kmer_diversity(seq: &Sequence, k: usize) -> f64 {
    if seq.len() < k {
        return 0.0;
    }
    let windows = (seq.len() - k + 1) as f64;
    let distinct = kmer_counts(seq, k).len() as f64;
    distinct / windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_sequence;
    use crate::Alphabet;

    fn dna(s: &str) -> Sequence {
        Sequence::from_str("s", &Alphabet::dna(), s).unwrap()
    }

    #[test]
    fn counts_and_entropy() {
        let s = dna("AACCGGTT");
        let st = SeqStats::of(&s);
        assert_eq!(st.counts[..4], [2, 2, 2, 2]);
        assert!(
            (st.entropy_bits - 2.0).abs() < 1e-12,
            "uniform 4-letter = 2 bits"
        );
        assert!((st.frequency(&s, 'A') - 0.25).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_homopolymer_is_zero() {
        let st = SeqStats::of(&dna("AAAAAAA"));
        assert_eq!(st.entropy_bits, 0.0);
    }

    #[test]
    fn empty_sequence_stats() {
        let st = SeqStats::of(&dna(""));
        assert_eq!(st.len, 0);
        assert_eq!(st.entropy_bits, 0.0);
        assert_eq!(gc_content(&dna("")), None);
    }

    #[test]
    fn gc_content_ignores_n() {
        assert_eq!(gc_content(&dna("GGCC")), Some(1.0));
        assert_eq!(gc_content(&dna("AATT")), Some(0.0));
        assert_eq!(gc_content(&dna("GCATNN")), Some(0.5));
        assert_eq!(gc_content(&dna("NNNN")), None);
    }

    #[test]
    fn kmer_counts_hand_example() {
        let counts = kmer_counts(&dna("ACGAC"), 2);
        // 2-mers: AC, CG, GA, AC.
        assert_eq!(counts.len(), 3);
        let ac = 5u64; // A=0 + C=1 * radix 5, little-endian packing
        assert_eq!(counts[&ac], 2);
    }

    #[test]
    fn kmer_diversity_detects_repeats() {
        let repetitive = dna(&"AC".repeat(50));
        let random = random_sequence("r", &Alphabet::dna(), 100, 3);
        assert!(kmer_diversity(&repetitive, 4) < 0.06);
        assert!(kmer_diversity(&random, 4) > 0.5);
    }

    #[test]
    fn generated_workloads_look_random() {
        // The Table 3 stand-in argument (DESIGN.md §2) relies on this.
        let s = random_sequence("w", &Alphabet::dna(), 10_000, 42);
        let st = SeqStats::of(&s);
        assert!(st.entropy_bits > 1.99, "entropy {}", st.entropy_bits);
        let gc = gc_content(&s).unwrap();
        assert!((0.47..0.53).contains(&gc), "gc {gc}");
        assert!(kmer_diversity(&s, 8) > 0.9);
    }

    #[test]
    fn short_sequences_have_no_kmers() {
        assert!(kmer_counts(&dna("AC"), 3).is_empty());
        assert_eq!(kmer_diversity(&dna("AC"), 3), 0.0);
    }
}

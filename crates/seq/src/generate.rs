//! Seeded synthetic sequence generators.
//!
//! The paper evaluates on real protein and DNA pairs (its Table 3). Those
//! exact sequences are not redistributable, so the reproduction generates
//! *homologous pairs*: a seeded random ancestor plus a mutated descendant
//! produced by a point-substitution + indel process. This preserves the one
//! data property the algorithms are sensitive to — the shape of the optimal
//! path (long diagonal runs broken by indel excursions) — while keeping
//! every experiment deterministic (fixed seeds).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Alphabet, SeqError, Sequence};

/// Parameters of the descendant-mutation process.
///
/// Rates are per-residue probabilities; `sub_rate + ins_rate + del_rate`
/// must be ≤ 1. Insertion/deletion lengths are geometric with mean
/// `mean_indel_len`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationModel {
    /// Probability that a residue is substituted by a random other residue.
    pub sub_rate: f64,
    /// Probability that an insertion starts after a residue.
    pub ins_rate: f64,
    /// Probability that a deletion starts at a residue.
    pub del_rate: f64,
    /// Mean length of an indel event (geometric distribution, ≥ 1).
    pub mean_indel_len: f64,
}

impl MutationModel {
    /// A model giving roughly `identity` fractional identity between
    /// ancestor and descendant (e.g. `0.9` → ~90 % identical residues),
    /// splitting the divergence 80 % substitutions / 20 % indels as is
    /// typical for closely related biological sequences.
    pub fn with_identity(identity: f64) -> Self {
        let divergence = (1.0 - identity).clamp(0.0, 0.9);
        MutationModel {
            sub_rate: divergence * 0.8,
            ins_rate: divergence * 0.1,
            del_rate: divergence * 0.1,
            mean_indel_len: 3.0,
        }
    }

    fn validate(&self) -> Result<(), SeqError> {
        let total = self.sub_rate + self.ins_rate + self.del_rate;
        if !(0.0..=1.0).contains(&self.sub_rate)
            || !(0.0..=1.0).contains(&self.ins_rate)
            || !(0.0..=1.0).contains(&self.del_rate)
            || total > 1.0
        {
            return Err(SeqError::InvalidParameter(format!(
                "mutation rates must be probabilities with sum <= 1 (got {total})"
            )));
        }
        if self.mean_indel_len < 1.0 {
            return Err(SeqError::InvalidParameter(
                "mean_indel_len must be >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Generates a uniform random sequence of length `len` over the non-ambiguous
/// part of `alphabet` (DNA: `ACGT`, protein: the 20 amino acids).
pub fn random_sequence(id: &str, alphabet: &Alphabet, len: usize, seed: u64) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = core_symbol_count(alphabet);
    let codes: Vec<u8> = (0..len).map(|_| rng.random_range(0..span) as u8).collect();
    Sequence::from_codes(id, alphabet, codes)
}

/// Number of "core" (non-ambiguity) symbols for the built-in alphabets:
/// ambiguity codes never appear in generated data, matching real inputs
/// where they are rare.
fn core_symbol_count(alphabet: &Alphabet) -> usize {
    match alphabet.name() {
        "dna" => 4,
        "protein" => 20,
        _ => alphabet.len(),
    }
}

/// Applies `model` to `ancestor`, producing a mutated descendant.
pub fn mutate(ancestor: &Sequence, model: &MutationModel, seed: u64) -> Result<Sequence, SeqError> {
    model.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = ancestor.alphabet();
    let span = core_symbol_count(alphabet);
    let mut out = Vec::with_capacity(ancestor.len() + ancestor.len() / 8);

    let geometric_len = |rng: &mut StdRng| -> usize {
        // Geometric with mean `mean_indel_len`: success prob 1/mean.
        let p = 1.0 / model.mean_indel_len;
        let mut len = 1usize;
        while rng.random::<f64>() > p && len < 1000 {
            len += 1;
        }
        len
    };

    let mut i = 0usize;
    let codes = ancestor.codes();
    while i < codes.len() {
        let r = rng.random::<f64>();
        if r < model.del_rate {
            i += geometric_len(&mut rng).min(codes.len() - i);
        } else if r < model.del_rate + model.ins_rate {
            for _ in 0..geometric_len(&mut rng) {
                out.push(rng.random_range(0..span) as u8);
            }
            out.push(codes[i]);
            i += 1;
        } else if r < model.del_rate + model.ins_rate + model.sub_rate {
            // Substitute with a *different* residue so sub_rate is the
            // realized mismatch probability.
            let old = codes[i];
            let mut new = rng.random_range(0..span) as u8;
            if span > 1 {
                while new == old {
                    new = rng.random_range(0..span) as u8;
                }
            }
            out.push(new);
            i += 1;
        } else {
            out.push(codes[i]);
            i += 1;
        }
    }

    Ok(Sequence::from_codes(
        &format!("{}|mut", ancestor.id()),
        alphabet,
        out,
    ))
}

/// Generates a homologous pair: a random ancestor of length `len` and a
/// descendant at roughly `identity` fractional identity.
pub fn homologous_pair(
    id: &str,
    alphabet: &Alphabet,
    len: usize,
    identity: f64,
    seed: u64,
) -> Result<(Sequence, Sequence), SeqError> {
    let a = random_sequence(&format!("{id}/a"), alphabet, len, seed);
    let model = MutationModel::with_identity(identity);
    let b = mutate(&a, &model, seed.wrapping_add(0x9E37_79B9_7F4A_7C15))?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sequence_is_deterministic_per_seed() {
        let alpha = Alphabet::dna();
        let a = random_sequence("x", &alpha, 100, 7);
        let b = random_sequence("x", &alpha, 100, 7);
        let c = random_sequence("x", &alpha, 100, 8);
        assert_eq!(a.codes(), b.codes());
        assert_ne!(a.codes(), c.codes());
    }

    #[test]
    fn random_dna_avoids_ambiguity_codes() {
        let alpha = Alphabet::dna();
        let s = random_sequence("x", &alpha, 1000, 1);
        assert!(s.codes().iter().all(|&c| c < 4), "no N in generated DNA");
    }

    #[test]
    fn random_protein_avoids_ambiguity_codes() {
        let alpha = Alphabet::protein();
        let s = random_sequence("x", &alpha, 1000, 1);
        assert!(s.codes().iter().all(|&c| c < 20));
    }

    #[test]
    fn identity_zero_divergence_copies_exactly() {
        let alpha = Alphabet::dna();
        let a = random_sequence("x", &alpha, 500, 3);
        let model = MutationModel {
            sub_rate: 0.0,
            ins_rate: 0.0,
            del_rate: 0.0,
            mean_indel_len: 1.0,
        };
        let b = mutate(&a, &model, 4).unwrap();
        assert_eq!(a.codes(), b.codes());
    }

    #[test]
    fn high_divergence_changes_length_and_content() {
        let alpha = Alphabet::dna();
        let (a, b) = homologous_pair("p", &alpha, 2000, 0.6, 11).unwrap();
        assert_ne!(a.codes(), b.codes());
        // Length should remain in the same ballpark (indels are balanced).
        let ratio = b.len() as f64 / a.len() as f64;
        assert!((0.7..1.3).contains(&ratio), "length ratio {ratio}");
    }

    #[test]
    fn realized_substitution_rate_tracks_model() {
        // With indels disabled, positions stay aligned and the mismatch
        // fraction directly estimates sub_rate.
        let alpha = Alphabet::protein();
        let a = random_sequence("x", &alpha, 20_000, 42);
        let model = MutationModel {
            sub_rate: 0.1,
            ins_rate: 0.0,
            del_rate: 0.0,
            mean_indel_len: 1.0,
        };
        let b = mutate(&a, &model, 43).unwrap();
        assert_eq!(a.len(), b.len());
        let diff = a
            .codes()
            .iter()
            .zip(b.codes())
            .filter(|(x, y)| x != y)
            .count();
        let rate = diff as f64 / a.len() as f64;
        assert!((0.08..0.12).contains(&rate), "realized sub rate {rate}");
    }

    #[test]
    fn invalid_rates_rejected() {
        let alpha = Alphabet::dna();
        let a = random_sequence("x", &alpha, 10, 0);
        let model = MutationModel {
            sub_rate: 0.9,
            ins_rate: 0.2,
            del_rate: 0.0,
            mean_indel_len: 1.0,
        };
        assert!(mutate(&a, &model, 0).is_err());
        let model = MutationModel {
            sub_rate: 0.1,
            ins_rate: 0.1,
            del_rate: 0.1,
            mean_indel_len: 0.5,
        };
        assert!(mutate(&a, &model, 0).is_err());
    }
}

//! Semi-global ("ends-free") alignment.
//!
//! Global alignment with selected terminal gaps un-penalized — the
//! standard tool for overlap detection (free leading gaps in one
//! sequence, free trailing gaps in the other) and for fitting a short
//! query inside a long reference (all four ends of the reference free).

use flsa_dp::{AlignResult, Metrics, Move, PathBuilder, ScoreMatrix};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

/// Which terminal gaps are free (un-penalized).
///
/// `a` is the vertical sequence (rows), `b` the horizontal one (columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EndsFree {
    /// Leading gaps in `a` are free (the path may start anywhere in row 0
    /// … i.e. skip a prefix of `b`): free first row.
    pub b_prefix: bool,
    /// Leading gaps in `b` free (skip a prefix of `a`): free first column.
    pub a_prefix: bool,
    /// Trailing gaps in `a` free (skip a suffix of `b`): the path may end
    /// anywhere in the last row.
    pub b_suffix: bool,
    /// Trailing gaps in `b` free (skip a suffix of `a`): end anywhere in
    /// the last column.
    pub a_suffix: bool,
}

impl EndsFree {
    /// Fit the (short) vertical sequence `a` inside `b`: both a prefix
    /// and a suffix of `b` are free.
    pub const FIT_A_IN_B: EndsFree = EndsFree {
        b_prefix: true,
        a_prefix: false,
        b_suffix: true,
        a_suffix: false,
    };

    /// Dovetail overlap: a suffix of `a` aligns a prefix of `b` (free
    /// prefix of `a`, free suffix of `b`).
    pub const OVERLAP_A_THEN_B: EndsFree = EndsFree {
        b_prefix: false,
        a_prefix: true,
        b_suffix: true,
        a_suffix: false,
    };
}

/// Semi-global alignment with the given free ends. With all four flags
/// false this is exactly global Needleman–Wunsch.
///
/// The returned path is always a complete `(0,0) → (m,n)` staircase;
/// the free terminal gap runs are included as moves but excluded from
/// the score.
pub fn semiglobal(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    ends: EndsFree,
    metrics: &Metrics,
) -> AlignResult {
    scheme.check_sequences(a, b);
    let (m, n) = (a.len(), b.len());
    // Release guard for the `codes()[i - 1]` indexing below: the DP
    // loops trust `len() == codes().len()`.
    assert_eq!(a.codes().len(), m, "a codes length");
    assert_eq!(b.codes().len(), n, "b codes length");
    let gap = scheme.gap().linear_penalty();
    let matrix = scheme.matrix();

    let mut dpm = ScoreMatrix::new(m, n);
    let _mem = metrics.track_alloc(dpm.bytes());
    for j in 0..=n {
        dpm.set(0, j, if ends.b_prefix { 0 } else { gap * j as i32 });
    }
    for i in 1..=m {
        dpm.set(i, 0, if ends.a_prefix { 0 } else { gap * i as i32 });
    }
    for i in 1..=m {
        let ai = a.codes()[i - 1];
        let (prev, cur) = dpm.rows_prev_cur(i);
        let mut left_val = cur[0];
        for j in 1..=n {
            let v = (prev[j - 1] + matrix.score(ai, b.codes()[j - 1]))
                .max(prev[j] + gap)
                .max(left_val + gap);
            cur[j] = v;
            left_val = v;
        }
    }
    metrics.add_cells(m as u64 * n as u64);

    // End point: the best cell among those reachable by free trailing gaps.
    let mut end = (m, n);
    let mut best = dpm.get(m, n);
    if ends.b_suffix {
        for j in 0..=n {
            if dpm.get(m, j) > best {
                best = dpm.get(m, j);
                end = (m, j);
            }
        }
    }
    if ends.a_suffix {
        for i in 0..=m {
            if dpm.get(i, n) > best {
                best = dpm.get(i, n);
                end = (i, n);
            }
        }
    }

    // Trailing free moves from `end` to (m, n), prepended first.
    let mut builder = PathBuilder::new();
    for _ in end.0..m {
        builder.push_back(Move::Up);
    }
    for _ in end.1..n {
        builder.push_back(Move::Left);
    }

    // Standard traceback to row 0 / column 0.
    let (mut i, mut j) = end;
    let mut steps = 0u64;
    while i > 0 && j > 0 {
        let v = dpm.get(i, j);
        let mv = if dpm.get(i - 1, j - 1) + matrix.score(a.codes()[i - 1], b.codes()[j - 1]) == v {
            i -= 1;
            j -= 1;
            Move::Diag
        } else if dpm.get(i - 1, j) + gap == v {
            i -= 1;
            Move::Up
        } else if dpm.get(i, j - 1) + gap == v {
            j -= 1;
            Move::Left
        } else {
            // flsa-check: allow(panic) — unreachable unless the DPM is corrupt.
            panic!("semiglobal traceback found no predecessor at ({i},{j})");
        };
        builder.push_back(mv);
        steps += 1;
    }
    metrics.add_traceback_steps(steps);

    // Leading free/boundary moves back to the origin.
    for _ in 0..i {
        builder.push_back(Move::Up);
    }
    for _ in 0..j {
        builder.push_back(Move::Left);
    }
    AlignResult {
        score: best as i64,
        path: builder.finish((0, 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::needleman_wunsch;

    fn dna(s: &str) -> Sequence {
        Sequence::from_str("s", ScoringScheme::dna_default().alphabet(), s).unwrap()
    }

    #[test]
    fn no_free_ends_equals_global() {
        let scheme = ScoringScheme::dna_default();
        let a = dna("ACGTTACG");
        let b = dna("ACTTACGG");
        let metrics = Metrics::new();
        let global = needleman_wunsch(&a, &b, &scheme, &metrics);
        let semi = semiglobal(&a, &b, &scheme, EndsFree::default(), &metrics);
        assert_eq!(semi.score, global.score);
        assert_eq!(semi.path, global.path);
    }

    #[test]
    fn fit_short_query_in_long_reference() {
        let scheme = ScoringScheme::dna_default();
        let query = dna("GATTACA");
        let reference = dna("CCCCCCGATTACACCCCCC");
        let metrics = Metrics::new();
        let r = semiglobal(&query, &reference, &scheme, EndsFree::FIT_A_IN_B, &metrics);
        // Perfect embedded match: 7 * +5, flanks free.
        assert_eq!(r.score, 35);
        assert!(r.path.is_global(query.len(), reference.len()));
        // The non-gap portion must cover exactly the query.
        let (d, u, _l) = r.path.move_counts();
        assert_eq!(d + u, query.len());
        assert_eq!(u, 0, "perfect match needs no vertical gaps");
    }

    #[test]
    fn overlap_detection() {
        // Suffix of a overlaps prefix of b by 6 matching bases.
        let scheme = ScoringScheme::dna_default();
        let a = dna("TTTTTTACGTAC");
        let b = dna("ACGTACGGGGGG");
        let metrics = Metrics::new();
        let r = semiglobal(&a, &b, &scheme, EndsFree::OVERLAP_A_THEN_B, &metrics);
        assert_eq!(r.score, 30, "6 overlap matches at +5");
        let global = needleman_wunsch(&a, &b, &scheme, &metrics);
        assert!(r.score > global.score);
    }

    #[test]
    fn semiglobal_score_at_least_global() {
        // Freeing ends can only help.
        let scheme = ScoringScheme::dna_default();
        let a = dna("ACGGCTATTTT");
        let b = dna("GGGACGGCTAT");
        let metrics = Metrics::new();
        let global = needleman_wunsch(&a, &b, &scheme, &metrics).score;
        for ends in [
            EndsFree {
                b_prefix: true,
                ..Default::default()
            },
            EndsFree {
                a_prefix: true,
                ..Default::default()
            },
            EndsFree {
                b_suffix: true,
                ..Default::default()
            },
            EndsFree {
                a_suffix: true,
                ..Default::default()
            },
            EndsFree {
                b_prefix: true,
                a_prefix: true,
                b_suffix: true,
                a_suffix: true,
            },
        ] {
            let r = semiglobal(&a, &b, &scheme, ends, &metrics);
            assert!(r.score >= global, "{ends:?}");
            assert!(r.path.is_global(a.len(), b.len()), "{ends:?}");
        }
    }

    #[test]
    fn empty_inputs() {
        let scheme = ScoringScheme::dna_default();
        let e = dna("");
        let b = dna("ACGT");
        let metrics = Metrics::new();
        let r = semiglobal(&e, &b, &scheme, EndsFree::FIT_A_IN_B, &metrics);
        assert_eq!(r.score, 0, "empty query fits for free");
        let r = semiglobal(&e, &b, &scheme, EndsFree::default(), &metrics);
        assert_eq!(r.score, -40);
    }
}

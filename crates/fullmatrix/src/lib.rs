//! Full-matrix (FM) baseline aligners.
//!
//! The paper's FM family (§2.1): algorithms that store the whole dynamic
//! program matrix, minimizing computation (`m·n` cells, zero
//! recomputation) at `O(m·n)` space. These are the baselines FastLSA is
//! measured against and the solver FastLSA itself uses for base-case
//! subproblems.
//!
//! * [`needleman_wunsch`] — global alignment over a full `i32` score
//!   matrix, score-comparison traceback;
//! * [`needleman_wunsch_packed`] — global alignment storing packed 2-bit
//!   directions (¼ byte/entry; the paper's low-memory FM traceback
//!   variant);
//! * [`smith_waterman`] — local alignment (the paper cites
//!   Smith–Waterman as the other canonical FM algorithm);
//! * [`gotoh()`] — affine-gap global alignment (production extension; not
//!   part of the paper's evaluation).
#![forbid(unsafe_code)]

pub mod banded;
pub mod gotoh;
pub mod nw;
pub mod semiglobal;
pub mod sw;

pub use banded::{adaptive_banded, banded_needleman_wunsch};
pub use gotoh::gotoh;
pub use nw::{needleman_wunsch, needleman_wunsch_kernel, needleman_wunsch_packed, nw_score_only};
pub use semiglobal::{semiglobal, EndsFree};
pub use sw::{smith_waterman, LocalAlignResult};

//! Smith–Waterman local alignment.
//!
//! The other canonical FM algorithm the paper cites (§1.1). Local
//! alignment zero-floors the recurrence and tracebacks from the best cell
//! to the nearest zero cell.

use flsa_dp::{Metrics, Move, Path, PathBuilder, ScoreMatrix};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

/// The outcome of a local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignResult {
    /// Best local score (≥ 0; 0 means no positive-scoring segment pair).
    pub score: i64,
    /// The local path; `path.start()`/`path.end()` are DPM coordinates, so
    /// the aligned segments are `a[start.0..end.0]` and `b[start.1..end.1]`.
    pub path: Path,
}

impl LocalAlignResult {
    /// The aligned segment of the vertical sequence, as a residue range.
    pub fn a_range(&self) -> std::ops::Range<usize> {
        self.path.start().0..self.path.end().0
    }

    /// The aligned segment of the horizontal sequence, as a residue range.
    pub fn b_range(&self) -> std::ops::Range<usize> {
        self.path.start().1..self.path.end().1
    }
}

/// Smith–Waterman local alignment over a full score matrix.
///
/// # Examples
///
/// ```
/// use flsa_fullmatrix::smith_waterman;
/// use flsa_dp::Metrics;
/// use flsa_scoring::ScoringScheme;
/// use flsa_seq::Sequence;
///
/// let scheme = ScoringScheme::dna_default();
/// let a = Sequence::from_str("a", scheme.alphabet(), "TTTTACGTACGTTTTT").unwrap();
/// let b = Sequence::from_str("b", scheme.alphabet(), "GGGACGTACGGGG").unwrap();
/// let metrics = Metrics::new();
/// let r = smith_waterman(&a, &b, &scheme, &metrics);
/// assert_eq!(r.score, 7 * 5); // the common ACGTACG core
/// ```
pub fn smith_waterman(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> LocalAlignResult {
    scheme.check_sequences(a, b);
    let (m, n) = (a.len(), b.len());
    // Release guard for the `codes()[i - 1]` indexing below: the DP
    // loops trust `len() == codes().len()`.
    assert_eq!(a.codes().len(), m, "a codes length");
    assert_eq!(b.codes().len(), n, "b codes length");
    let gap = scheme.gap().linear_penalty();
    let matrix = scheme.matrix();

    let mut dpm = ScoreMatrix::new(m, n);
    let _mem = metrics.track_alloc(dpm.bytes());
    let mut best = 0i32;
    let mut best_at = (0usize, 0usize);
    for i in 1..=m {
        let ai = a.codes()[i - 1];
        let (prev, cur) = dpm.rows_prev_cur(i);
        let mut left_val = 0i32;
        cur[0] = 0;
        for j in 1..=n {
            let diag = prev[j - 1] + matrix.score(ai, b.codes()[j - 1]);
            let up = prev[j] + gap;
            let lf = left_val + gap;
            let v = diag.max(up).max(lf).max(0);
            cur[j] = v;
            left_val = v;
            if v > best {
                best = v;
                best_at = (i, j);
            }
        }
    }
    metrics.add_cells(m as u64 * n as u64);
    metrics.add_base_case_cells(m as u64 * n as u64);

    // Traceback from the best cell to the nearest zero cell, with the
    // shared Diag ≻ Up ≻ Left tie-break.
    let mut builder = PathBuilder::new();
    let (mut i, mut j) = best_at;
    let mut steps = 0u64;
    while i > 0 && j > 0 {
        let v = dpm.get(i, j);
        if v == 0 {
            break;
        }
        let mv = if dpm.get(i - 1, j - 1) + matrix.score(a.codes()[i - 1], b.codes()[j - 1]) == v {
            i -= 1;
            j -= 1;
            Move::Diag
        } else if dpm.get(i - 1, j) + gap == v {
            i -= 1;
            Move::Up
        } else if dpm.get(i, j - 1) + gap == v {
            j -= 1;
            Move::Left
        } else {
            // v arose from the zero floor: the local path starts here.
            break;
        };
        builder.push_back(mv);
        steps += 1;
    }
    metrics.add_traceback_steps(steps);
    LocalAlignResult {
        score: best as i64,
        path: builder.finish((i, j)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> Sequence {
        Sequence::from_str("s", ScoringScheme::dna_default().alphabet(), s).unwrap()
    }

    #[test]
    fn finds_embedded_common_segment() {
        let scheme = ScoringScheme::dna_default();
        let a = dna("TTTTTACGTACGTCCCC");
        let b = dna("GGGGACGTACGTAAAA");
        let metrics = Metrics::new();
        let r = smith_waterman(&a, &b, &scheme, &metrics);
        assert_eq!(r.score, 8 * 5);
        assert_eq!(&a.to_string()[r.a_range()], "ACGTACGT");
        assert_eq!(&b.to_string()[r.b_range()], "ACGTACGT");
    }

    #[test]
    fn disjoint_alphabets_score_zero() {
        let scheme = ScoringScheme::dna_default();
        let a = dna("AAAA");
        let b = dna("GGGG");
        let metrics = Metrics::new();
        let r = smith_waterman(&a, &b, &scheme, &metrics);
        assert_eq!(r.score, 0);
        assert!(r.path.is_empty());
    }

    #[test]
    fn local_path_rescores_to_local_score() {
        let scheme = ScoringScheme::dna_default();
        let a = dna("CCCACGTAGGGACGTA");
        let b = dna("ACGTATTTACGTA");
        let metrics = Metrics::new();
        let r = smith_waterman(&a, &b, &scheme, &metrics);
        assert_eq!(r.path.score(&a, &b, &scheme), r.score);
    }

    #[test]
    fn local_beats_global_on_flanked_match() {
        // Global alignment must pay for the mismatched flanks; local skips
        // them — the standard motivation for Smith-Waterman.
        let scheme = ScoringScheme::dna_default();
        let a = dna("TTTTTTTTTTACGTACGT");
        let b = dna("ACGTACGTGGGGGGGGGG");
        let metrics = Metrics::new();
        let local = smith_waterman(&a, &b, &scheme, &metrics);
        let global = crate::needleman_wunsch(&a, &b, &scheme, &metrics);
        assert!(local.score > global.score);
    }

    #[test]
    fn empty_input_gives_empty_local_alignment() {
        let scheme = ScoringScheme::dna_default();
        let a = dna("");
        let b = dna("ACGT");
        let metrics = Metrics::new();
        let r = smith_waterman(&a, &b, &scheme, &metrics);
        assert_eq!(r.score, 0);
        assert!(r.path.is_empty());
    }
}

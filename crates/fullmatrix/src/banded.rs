//! Banded global alignment.
//!
//! A standard production optimization the paper's related work assumes:
//! when the two sequences are known to be similar, the optimal path stays
//! near the main diagonal, so only a band of half-width `w` around the
//! diagonal needs computing — `O((m+n)·w)` time and space.
//!
//! Banded alignment is a *heuristic*: the returned score is the optimum
//! over paths inside the band, which equals the global optimum iff some
//! optimal path fits the band (always true once
//! `w ≥ max(m, n)`). [`banded_needleman_wunsch`] therefore reports the
//! band-constrained score; callers widen the band until it stabilizes or
//! validate against a linear-space exact run.

use flsa_dp::{AlignResult, Metrics, Move, PathBuilder};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

/// Sentinel for out-of-band entries: low enough never to win a max, high
/// enough not to wrap when a score is added.
const NEG: i32 = i32::MIN / 4;

/// Band-constrained Needleman–Wunsch: only cells with
/// `lo ≤ j − i ≤ hi` are computed, where
/// `lo = min(0, n−m) − w` and `hi = max(0, n−m) + w` (the band always
/// contains both corners, so a path exists for every `w ≥ 0`).
///
/// # Examples
///
/// ```
/// use flsa_fullmatrix::{banded_needleman_wunsch, needleman_wunsch};
/// use flsa_dp::Metrics;
/// use flsa_scoring::ScoringScheme;
/// use flsa_seq::Sequence;
///
/// let scheme = ScoringScheme::dna_default();
/// let a = Sequence::from_str("a", scheme.alphabet(), "ACGTACGTAC").unwrap();
/// let b = Sequence::from_str("b", scheme.alphabet(), "ACGTCGTAC").unwrap();
/// let metrics = Metrics::new();
/// let exact = needleman_wunsch(&a, &b, &scheme, &metrics);
/// let banded = banded_needleman_wunsch(&a, &b, &scheme, 4, &metrics);
/// assert_eq!(banded.score, exact.score); // similar pair: band of 4 suffices
/// ```
pub fn banded_needleman_wunsch(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    w: usize,
    metrics: &Metrics,
) -> AlignResult {
    scheme.check_sequences(a, b);
    let (m, n) = (a.len(), b.len());
    let gap = scheme.gap().linear_penalty();
    let matrix = scheme.matrix();

    let diff = n as i64 - m as i64;
    let lo = diff.min(0) - w as i64;
    let hi = diff.max(0) + w as i64;
    let width = (hi - lo + 1) as usize; // diagonals stored per row

    // band[i][d] = H(i, i + lo + d) for d in 0..width.
    let mut band = vec![NEG; (m + 1) * width];
    let _mem = metrics.track_alloc(band.len() * std::mem::size_of::<i32>());
    let idx = |i: usize, j: usize| -> usize {
        let d = j as i64 - i as i64 - lo;
        // Release-mode bounds guard: every band[] access in the fill and
        // the traceback funnels through here, and an out-of-band `d`
        // would silently read a neighboring row's diagonal.
        assert!((0..width as i64).contains(&d), "cell ({i},{j}) out of band");
        i * width + d as usize
    };
    let in_band = |i: usize, j: i64| -> bool {
        j >= 0 && j <= n as i64 && (lo..=hi).contains(&(j - i as i64))
    };

    let mut cells = 0u64;
    for i in 0..=m {
        let j_lo = (i as i64 + lo).max(0);
        let j_hi = (i as i64 + hi).min(n as i64);
        for j in j_lo..=j_hi {
            let ju = j as usize;
            let v = if i == 0 && ju == 0 {
                0
            } else {
                let mut best = NEG;
                if i > 0 && ju > 0 && in_band(i - 1, j - 1) {
                    best = best.max(
                        band[idx(i - 1, ju - 1)]
                            + matrix.score(a.codes()[i - 1], b.codes()[ju - 1]),
                    );
                }
                if i > 0 && in_band(i - 1, j) {
                    best = best.max(band[idx(i - 1, ju)] + gap);
                }
                if ju > 0 && in_band(i, j - 1) {
                    best = best.max(band[idx(i, ju - 1)] + gap);
                }
                best
            };
            band[idx(i, ju)] = v;
            cells += 1;
        }
    }
    metrics.add_cells(cells);

    // Traceback inside the band with the shared Diag > Up > Left tie-break.
    let mut builder = PathBuilder::new();
    let (mut i, mut j) = (m, n);
    let mut steps = 0u64;
    while i > 0 || j > 0 {
        let v = band[idx(i, j)];
        let mv = if i > 0
            && j > 0
            && in_band(i - 1, j as i64 - 1)
            && band[idx(i - 1, j - 1)] + matrix.score(a.codes()[i - 1], b.codes()[j - 1]) == v
        {
            i -= 1;
            j -= 1;
            Move::Diag
        } else if i > 0 && in_band(i - 1, j as i64) && band[idx(i - 1, j)] + gap == v {
            i -= 1;
            Move::Up
        } else if j > 0 && in_band(i, j as i64 - 1) && band[idx(i, j - 1)] + gap == v {
            j -= 1;
            Move::Left
        } else {
            // flsa-check: allow(panic) — unreachable unless the band is corrupt.
            panic!("banded traceback found no predecessor at ({i},{j})");
        };
        builder.push_back(mv);
        steps += 1;
    }
    metrics.add_traceback_steps(steps);
    AlignResult {
        score: band[idx(m, n)] as i64,
        path: builder.finish((0, 0)),
    }
}

/// Widens the band geometrically until the score stabilizes across one
/// doubling — the conventional adaptive-band driver. The result is exact
/// whenever stabilization implies optimality for the instance (always
/// true once the band covers the whole matrix, the driver's last resort).
pub fn adaptive_banded(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> AlignResult {
    let max_dim = a.len().max(b.len()).max(1);
    let mut w = 8usize;
    let mut best = banded_needleman_wunsch(a, b, scheme, w, metrics);
    while w < max_dim {
        let next_w = (w * 2).min(max_dim);
        let next = banded_needleman_wunsch(a, b, scheme, next_w, metrics);
        if next.score == best.score {
            return next;
        }
        best = next;
        w = next_w;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::needleman_wunsch;
    use flsa_seq::generate::homologous_pair;
    use flsa_seq::Alphabet;

    fn dna(s: &str) -> Sequence {
        Sequence::from_str("s", ScoringScheme::dna_default().alphabet(), s).unwrap()
    }

    #[test]
    fn full_width_band_equals_exact() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 150, 0.7, 3).unwrap();
        let metrics = Metrics::new();
        let exact = needleman_wunsch(&a, &b, &scheme, &metrics);
        let banded = banded_needleman_wunsch(&a, &b, &scheme, a.len() + b.len(), &metrics);
        assert_eq!(banded.score, exact.score);
        assert_eq!(banded.path, exact.path, "same tie-break, same path");
    }

    #[test]
    fn score_is_monotone_in_band_width() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 200, 0.6, 9).unwrap();
        let metrics = Metrics::new();
        let exact = needleman_wunsch(&a, &b, &scheme, &metrics).score;
        let mut prev = i64::MIN;
        for w in [0usize, 1, 2, 4, 8, 16, 64, 256] {
            let r = banded_needleman_wunsch(&a, &b, &scheme, w, &metrics);
            assert!(r.score >= prev, "w={w}");
            assert!(r.score <= exact, "w={w}");
            assert!(r.path.is_global(a.len(), b.len()), "w={w}");
            assert_eq!(r.path.score(&a, &b, &scheme), r.score, "w={w}");
            prev = r.score;
        }
        assert_eq!(prev, exact, "widest band reaches the optimum");
    }

    #[test]
    fn narrow_band_still_returns_a_valid_path() {
        let scheme = ScoringScheme::dna_default();
        let a = dna("ACGTACGTACGT");
        let b = dna("TTTT");
        let metrics = Metrics::new();
        let r = banded_needleman_wunsch(&a, &b, &scheme, 0, &metrics);
        assert!(r.path.is_global(a.len(), b.len()));
        assert_eq!(r.path.score(&a, &b, &scheme), r.score);
    }

    #[test]
    fn banded_computes_fewer_cells_than_full() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 500, 0.9, 4).unwrap();
        let m_band = Metrics::new();
        banded_needleman_wunsch(&a, &b, &scheme, 16, &m_band);
        let m_full = Metrics::new();
        needleman_wunsch(&a, &b, &scheme, &m_full);
        assert!(
            m_band.snapshot().cells_computed * 4 < m_full.snapshot().cells_computed,
            "band {} vs full {}",
            m_band.snapshot().cells_computed,
            m_full.snapshot().cells_computed
        );
    }

    #[test]
    fn adaptive_band_matches_exact_on_homologs() {
        let scheme = ScoringScheme::dna_default();
        for seed in 0..5 {
            let (a, b) = homologous_pair("t", &Alphabet::dna(), 300, 0.8, seed).unwrap();
            let metrics = Metrics::new();
            let exact = needleman_wunsch(&a, &b, &scheme, &metrics);
            let adaptive = adaptive_banded(&a, &b, &scheme, &metrics);
            assert_eq!(adaptive.score, exact.score, "seed {seed}");
        }
    }

    #[test]
    fn empty_sequences() {
        let scheme = ScoringScheme::dna_default();
        let e = dna("");
        let b = dna("ACG");
        let metrics = Metrics::new();
        let r = banded_needleman_wunsch(&e, &b, &scheme, 2, &metrics);
        assert_eq!(r.score, -30);
        let r = banded_needleman_wunsch(&e, &e, &scheme, 2, &metrics);
        assert_eq!(r.score, 0);
    }
}

//! Needleman–Wunsch global alignment (the paper's FM reference).

use flsa_dp::kernel::{fill_dir, fill_last_row};
use flsa_dp::traceback::{trace_dirs, trace_from};
use flsa_dp::{AlignResult, Boundary, Kernel, Metrics, Move, PathBuilder};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

/// Global alignment storing the full score matrix
/// (`(m+1)·(n+1)` × 4 bytes), traceback by score comparison.
///
/// This is the paper's canonical FM algorithm: `m·n` cell computations and
/// quadratic space.
///
/// # Examples
///
/// ```
/// use flsa_fullmatrix::needleman_wunsch;
/// use flsa_dp::Metrics;
/// use flsa_scoring::ScoringScheme;
/// use flsa_seq::Sequence;
///
/// let scheme = ScoringScheme::paper_example();
/// let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
/// let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
/// let metrics = Metrics::new();
/// let r = needleman_wunsch(&a, &b, &scheme, &metrics);
/// assert_eq!(r.score, 82); // the paper's worked example
/// assert_eq!(r.path.score(&a, &b, &scheme), 82);
/// ```
pub fn needleman_wunsch(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> AlignResult {
    // The reference implementation stays on the scalar kernel; use
    // [`needleman_wunsch_kernel`] to pick a vectorized backend.
    needleman_wunsch_kernel(a, b, scheme, &Kernel::scalar(), metrics)
}

/// [`needleman_wunsch`] with the matrix fill dispatched through an
/// explicit DP kernel. Every backend is bit-identical to the scalar
/// kernel, so the score and path never depend on the choice.
pub fn needleman_wunsch_kernel(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    kernel: &Kernel,
    metrics: &Metrics,
) -> AlignResult {
    scheme.check_sequences(a, b);
    let (m, n) = (a.len(), b.len());
    let gap = scheme.gap().linear_penalty();
    let bound = Boundary::global(m, n, gap);

    let dpm = kernel.fill_full(
        a.codes(),
        b.codes(),
        &bound.top,
        &bound.left,
        scheme,
        metrics,
    );
    let _mem = metrics.track_alloc(dpm.bytes());
    metrics.add_base_case_cells(m as u64 * n as u64);

    let mut builder = PathBuilder::new();
    let (ei, ej) = trace_from(
        &dpm,
        a.codes(),
        b.codes(),
        scheme,
        (m, n),
        &mut builder,
        metrics,
    );
    // The exit is on the gap-ramp boundary; the optimal continuation to the
    // origin runs straight along it.
    for _ in 0..ei {
        builder.push_back(Move::Up);
    }
    for _ in 0..ej {
        builder.push_back(Move::Left);
    }
    AlignResult {
        score: dpm.get(m, n) as i64,
        path: builder.finish((0, 0)),
    }
}

/// Global alignment storing packed 2-bit directions instead of scores
/// (¼ byte per entry — the paper's §2.1 "two bits … encode the three path
/// choices" variant), plus one rolling score row.
///
/// Returns the identical path to [`needleman_wunsch`] (shared tie-break).
pub fn needleman_wunsch_packed(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> AlignResult {
    scheme.check_sequences(a, b);
    let (m, n) = (a.len(), b.len());
    let gap = scheme.gap().linear_penalty();
    let bound = Boundary::global(m, n, gap);

    let (dirs, last_row) = fill_dir(
        a.codes(),
        b.codes(),
        &bound.top,
        &bound.left,
        scheme,
        metrics,
    );
    // Release guard for `last_row[n]` below: ties the kernel's output
    // row length to this fn's (m, n).
    assert_eq!(last_row.len(), n + 1, "last row length");
    let _mem = metrics.track_alloc(dirs.bytes() + (n + 1) * std::mem::size_of::<i32>());
    metrics.add_base_case_cells(m as u64 * n as u64);

    let mut builder = PathBuilder::new();
    let stop = trace_dirs(&dirs, (m, n), &mut builder, metrics);
    debug_assert_eq!(stop, (0, 0));
    AlignResult {
        score: last_row[n] as i64,
        path: builder.finish((0, 0)),
    }
}

/// FindScore only: the optimal global score in `O(min(m,n))` space and no
/// path (used by experiments that don't need FindPath, and as a
/// cross-check oracle).
pub fn nw_score_only(a: &Sequence, b: &Sequence, scheme: &ScoringScheme, metrics: &Metrics) -> i64 {
    scheme.check_sequences(a, b);
    // Roll along the shorter dimension.
    let (v, h) = if a.len() <= b.len() { (b, a) } else { (a, b) };
    // Release guard: `bottom[h.len()]` below is the rolled row's last
    // entry; the swap above must have put the shorter sequence in `h`.
    assert!(h.len() <= v.len(), "roll dimension swap");
    let gap = scheme.gap().linear_penalty();
    let bound = Boundary::global(v.len(), h.len(), gap);
    let mut bottom = vec![0i32; h.len() + 1];
    let _mem = metrics.track_alloc(bottom.len() * std::mem::size_of::<i32>());
    fill_last_row(
        v.codes(),
        h.codes(),
        &bound.top,
        &bound.left,
        scheme,
        &mut bottom,
        metrics,
    );
    bottom[h.len()] as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_seq::Alphabet;

    fn paper_pair() -> (Sequence, Sequence, ScoringScheme) {
        let scheme = ScoringScheme::paper_example();
        let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
        (a, b, scheme)
    }

    #[test]
    fn paper_example_scores_82_both_orientations() {
        let (a, b, scheme) = paper_pair();
        let metrics = Metrics::new();
        assert_eq!(needleman_wunsch(&a, &b, &scheme, &metrics).score, 82);
        assert_eq!(needleman_wunsch(&b, &a, &scheme, &metrics).score, 82);
    }

    #[test]
    fn paper_example_path_is_the_papers_optimal_alignment() {
        // Figure 1's subscripts trace a unique optimal path; rendered it is
        // TLDKLLK-D over T-D-VLKAD (the paper's second alignment).
        let (a, b, scheme) = paper_pair();
        let metrics = Metrics::new();
        let r = needleman_wunsch(&a, &b, &scheme, &metrics);
        let al = flsa_dp::Alignment::from_path(&a, &b, &r.path, &scheme);
        assert_eq!(al.aligned_a, "TLDKLLK-D");
        assert_eq!(al.aligned_b, "T-D-VLKAD");
    }

    #[test]
    fn packed_variant_matches_full_variant() {
        let (a, b, scheme) = paper_pair();
        let metrics = Metrics::new();
        let full = needleman_wunsch(&a, &b, &scheme, &metrics);
        let packed = needleman_wunsch_packed(&a, &b, &scheme, &metrics);
        assert_eq!(full.score, packed.score);
        assert_eq!(full.path, packed.path);
    }

    #[test]
    fn score_only_matches_full() {
        let (a, b, scheme) = paper_pair();
        let metrics = Metrics::new();
        assert_eq!(nw_score_only(&a, &b, &scheme, &metrics), 82);
        assert_eq!(nw_score_only(&b, &a, &scheme, &metrics), 82);
    }

    #[test]
    fn empty_vs_nonempty_is_all_gaps() {
        let scheme = ScoringScheme::dna_default();
        let a = Sequence::from_str("a", scheme.alphabet(), "").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "ACGT").unwrap();
        let metrics = Metrics::new();
        let r = needleman_wunsch(&a, &b, &scheme, &metrics);
        assert_eq!(r.score, -40);
        assert_eq!(r.path.moves(), &[Move::Left; 4]);
    }

    #[test]
    fn both_empty_scores_zero() {
        let scheme = ScoringScheme::dna_default();
        let a = Sequence::from_str("a", scheme.alphabet(), "").unwrap();
        let metrics = Metrics::new();
        let r = needleman_wunsch(&a, &a, &scheme, &metrics);
        assert_eq!(r.score, 0);
        assert!(r.path.is_empty());
    }

    #[test]
    fn identical_sequences_align_diagonally() {
        let scheme = ScoringScheme::dna_default();
        let a = Sequence::from_str("a", scheme.alphabet(), "ACGTACGT").unwrap();
        let metrics = Metrics::new();
        let r = needleman_wunsch(&a, &a, &scheme, &metrics);
        assert_eq!(r.score, 8 * 5);
        assert!(r.path.moves().iter().all(|&m| m == Move::Diag));
    }

    #[test]
    fn fm_computes_exactly_mn_cells() {
        let (a, b, scheme) = paper_pair();
        let metrics = Metrics::new();
        needleman_wunsch(&a, &b, &scheme, &metrics);
        let s = metrics.snapshot();
        assert_eq!(s.cells_computed, (a.len() * b.len()) as u64);
        // FM stores the whole matrix: peak memory is (m+1)(n+1) i32s.
        assert_eq!(s.peak_bytes, ((a.len() + 1) * (b.len() + 1) * 4) as u64);
    }

    #[test]
    fn packed_variant_uses_quarter_byte_per_entry() {
        let scheme = ScoringScheme::dna_default();
        let alpha = Alphabet::dna();
        let a = Sequence::from_str("a", &alpha, &"ACGT".repeat(64)).unwrap();
        let metrics_full = Metrics::new();
        needleman_wunsch(&a, &a, &scheme, &metrics_full);
        let metrics_packed = Metrics::new();
        needleman_wunsch_packed(&a, &a, &scheme, &metrics_packed);
        let full_bytes = metrics_full.snapshot().peak_bytes as f64;
        let packed_bytes = metrics_packed.snapshot().peak_bytes as f64;
        assert!(
            packed_bytes < full_bytes / 10.0,
            "packed {packed_bytes} vs full {full_bytes}"
        );
    }
}

//! Gotoh affine-gap global alignment (production extension).
//!
//! Not part of the paper's evaluation (the paper uses linear gaps
//! throughout); provided because every production aligner offers affine
//! gaps, and it gives the test suite an independent oracle for the
//! linear-gap algorithms (affine with `open = 0` must equal linear).

use flsa_dp::{AlignResult, Metrics, Move, PathBuilder, ScoreMatrix};
use flsa_scoring::{GapModel, ScoringScheme};
use flsa_seq::Sequence;

/// Sentinel "minus infinity" that survives additions without wrapping.
const NEG: i32 = i32::MIN / 4;

/// Affine-gap global alignment (Gotoh's algorithm): gap of length L costs
/// `open + L·extend`.
///
/// Uses three full matrices (best-ending-in-match `H`, gap-in-`a` `E`,
/// gap-in-`b` `F`), so memory is 3× the linear-gap FM aligner.
///
/// # Panics
///
/// Panics when `scheme.gap()` is not [`GapModel::Affine`].
pub fn gotoh(a: &Sequence, b: &Sequence, scheme: &ScoringScheme, metrics: &Metrics) -> AlignResult {
    scheme.check_sequences(a, b);
    let (open, extend) = match *scheme.gap() {
        GapModel::Affine { open, extend } => (open, extend),
        // flsa-check: allow(panic) — documented caller contract.
        GapModel::Linear { .. } => panic!("gotoh requires an affine gap model"),
    };
    let (m, n) = (a.len(), b.len());
    // Release guard for the `codes()[i - 1]` indexing below: the DP
    // loops trust `len() == codes().len()`.
    assert_eq!(a.codes().len(), m, "a codes length");
    assert_eq!(b.codes().len(), n, "b codes length");
    let matrix = scheme.matrix();

    let mut h = ScoreMatrix::new(m, n);
    let mut e = ScoreMatrix::new(m, n); // best ending with a gap in `a` (Left run)
    let mut f = ScoreMatrix::new(m, n); // best ending with a gap in `b` (Up run)
    let _mem = metrics.track_alloc(h.bytes() * 3);

    h.set(0, 0, 0);
    e.set(0, 0, NEG);
    f.set(0, 0, NEG);
    for j in 1..=n {
        let v = open + extend * j as i32;
        h.set(0, j, v);
        e.set(0, j, v);
        f.set(0, j, NEG);
    }
    for i in 1..=m {
        let v = open + extend * i as i32;
        h.set(i, 0, v);
        f.set(i, 0, v);
        e.set(i, 0, NEG);
    }

    for i in 1..=m {
        let ai = a.codes()[i - 1];
        for j in 1..=n {
            let ev = (e.get(i, j - 1) + extend).max(h.get(i, j - 1) + open + extend);
            let fv = (f.get(i - 1, j) + extend).max(h.get(i - 1, j) + open + extend);
            let hv = (h.get(i - 1, j - 1) + matrix.score(ai, b.codes()[j - 1]))
                .max(ev)
                .max(fv);
            e.set(i, j, ev);
            f.set(i, j, fv);
            h.set(i, j, hv);
        }
    }
    metrics.add_cells(m as u64 * n as u64);
    metrics.add_base_case_cells(m as u64 * n as u64);

    // State-machine traceback: state H, E (in a Left-gap run), or F (Up run).
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut builder = PathBuilder::new();
    let (mut i, mut j) = (m, n);
    let mut state = State::H;
    let mut steps = 0u64;
    while i > 0 || j > 0 {
        match state {
            State::H => {
                let v = h.get(i, j);
                if i > 0
                    && j > 0
                    && h.get(i - 1, j - 1) + matrix.score(a.codes()[i - 1], b.codes()[j - 1]) == v
                {
                    builder.push_back(Move::Diag);
                    steps += 1;
                    i -= 1;
                    j -= 1;
                } else if i > 0 && f.get(i, j) == v {
                    state = State::F;
                } else if j > 0 && e.get(i, j) == v {
                    state = State::E;
                } else {
                    // flsa-check: allow(panic) — unreachable unless the DPM is corrupt.
                    panic!("gotoh traceback stuck in H at ({i},{j})");
                }
            }
            State::E => {
                // Ending a Left-gap run: came from E (continue run) or H (open).
                let v = e.get(i, j);
                builder.push_back(Move::Left);
                steps += 1;
                let from_e = j > 1 && e.get(i, j - 1) + extend == v;
                let from_h = h.get(i, j - 1) + open + extend == v;
                j -= 1;
                state = if from_h {
                    State::H
                } else if from_e {
                    State::E
                } else {
                    // flsa-check: allow(panic) — unreachable unless the DPM is corrupt.
                    panic!("gotoh traceback stuck in E")
                };
            }
            State::F => {
                let v = f.get(i, j);
                builder.push_back(Move::Up);
                steps += 1;
                let from_f = i > 1 && f.get(i - 1, j) + extend == v;
                let from_h = h.get(i - 1, j) + open + extend == v;
                i -= 1;
                state = if from_h {
                    State::H
                } else if from_f {
                    State::F
                } else {
                    // flsa-check: allow(panic) — unreachable unless the DPM is corrupt.
                    panic!("gotoh traceback stuck in F")
                };
            }
        }
    }
    metrics.add_traceback_steps(steps);
    AlignResult {
        score: h.get(m, n) as i64,
        path: builder.finish((0, 0)),
    }
}

/// Scores an alignment path under an affine gap model (test oracle: the
/// linear `Path::score` cannot price gap opens).
pub fn score_path_affine(
    path: &flsa_dp::Path,
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
) -> i64 {
    let (open, extend) = match *scheme.gap() {
        GapModel::Affine { open, extend } => (open as i64, extend as i64),
        GapModel::Linear { penalty } => (0, penalty as i64),
    };
    let (mut i, mut j) = path.start();
    let (ei, ej) = path.end();
    assert!(
        ei <= a.len() && ej <= b.len(),
        "path ({ei},{ej}) exceeds sequence bounds ({}, {})",
        a.len(),
        b.len()
    );
    let mut total = 0i64;
    let mut prev: Option<Move> = None;
    for &mv in path.moves() {
        match mv {
            Move::Diag => {
                total += scheme.sub(a.codes()[i], b.codes()[j]) as i64;
                i += 1;
                j += 1;
            }
            Move::Up => {
                if prev != Some(Move::Up) {
                    total += open;
                }
                total += extend;
                i += 1;
            }
            Move::Left => {
                if prev != Some(Move::Left) {
                    total += open;
                }
                total += extend;
                j += 1;
            }
        }
        prev = Some(mv);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::needleman_wunsch;

    fn dna2(s: &str) -> Sequence {
        let scheme = ScoringScheme::dna_default();
        Sequence::from_str("s", scheme.alphabet(), s).unwrap()
    }

    #[test]
    fn zero_open_equals_linear_gap() {
        let linear = ScoringScheme::dna_default();
        let affine = ScoringScheme::new(
            flsa_scoring::tables::dna_default(),
            GapModel::affine(0, -10),
        );
        let a = dna2("ACGTACGTTT");
        let b = dna2("ACGACGTT");
        let metrics = Metrics::new();
        let lin = needleman_wunsch(&a, &b, &linear, &metrics);
        let aff = gotoh(&a, &b, &affine, &metrics);
        assert_eq!(lin.score, aff.score);
        assert_eq!(aff.path.score(&a, &b, &linear), aff.score);
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        // With affine gaps, one length-2 gap is cheaper than two length-1
        // gaps; the path should concentrate its gaps.
        let scheme = ScoringScheme::new(
            flsa_scoring::tables::dna_default(),
            GapModel::affine(-10, -1),
        );
        let a = dna2("AAAACCAAAA");
        let b = dna2("AAAAAAAA");
        let metrics = Metrics::new();
        let r = gotoh(&a, &b, &scheme, &metrics);
        // Expect: 8 matches (40) + one gap of length 2 (-12) = 28.
        assert_eq!(r.score, 28);
        assert_eq!(score_path_affine(&r.path, &a, &b, &scheme), r.score);
        // The two Up moves must be adjacent (single run).
        let ups: Vec<usize> = r
            .path
            .moves()
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == Move::Up)
            .map(|(idx, _)| idx)
            .collect();
        assert_eq!(ups.len(), 2);
        assert_eq!(ups[1], ups[0] + 1);
    }

    #[test]
    fn gotoh_path_is_global_and_rescoreable() {
        let scheme = ScoringScheme::new(
            flsa_scoring::tables::dna_default(),
            GapModel::affine(-12, -2),
        );
        let a = dna2("ACGTTGCAACGT");
        let b = dna2("ACGTGCACGTT");
        let metrics = Metrics::new();
        let r = gotoh(&a, &b, &scheme, &metrics);
        assert!(r.path.is_global(a.len(), b.len()));
        assert_eq!(score_path_affine(&r.path, &a, &b, &scheme), r.score);
    }

    #[test]
    fn empty_sequences_cost_one_gap_open() {
        let scheme = ScoringScheme::new(
            flsa_scoring::tables::dna_default(),
            GapModel::affine(-10, -2),
        );
        let a = dna2("");
        let b = dna2("ACG");
        let metrics = Metrics::new();
        let r = gotoh(&a, &b, &scheme, &metrics);
        assert_eq!(r.score, -16); // -10 open + 3 * -2 extend
    }

    #[test]
    #[should_panic(expected = "affine gap model")]
    fn linear_scheme_rejected() {
        let scheme = ScoringScheme::dna_default();
        let a = dna2("ACG");
        let metrics = Metrics::new();
        gotoh(&a, &a, &scheme, &metrics);
    }
}

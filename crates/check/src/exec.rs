//! Deterministic virtual-thread runtime.
//!
//! Each *virtual thread* runs on a real OS thread, but a token-passing
//! scheduler guarantees that **exactly one** virtual thread executes at
//! any moment, and that every context switch happens at a *visible
//! operation* (monitor lock/unlock/wait/notify, atomic access, spawn,
//! exit). Between two decisions the schedule is fully determined by the
//! [`SchedPolicy`], so a recorded choice sequence replays the identical
//! interleaving — the property model checking needs.
//!
//! The runtime also maintains vector clocks ([`crate::clock::VClock`])
//! per thread, monitor and atomic: monitor unlock→lock and
//! `Release`→`Acquire` atomic pairs transfer clock state, `Relaxed`
//! operations move values but *no* clock state. Plain accesses through
//! [`crate::vsync::RaceCell`] are checked against those clocks, so a
//! missing happens-before edge (e.g. an ordering weakened to `Relaxed`)
//! is reported as a data race even though the serialized execution can
//! never corrupt memory physically.
//!
//! Modeling notes (documented deviations from the raw primitives):
//! * Mutexes hand off FIFO to the oldest waiter instead of letting
//!   threads barge and retry — this keeps the schedule tree finite.
//! * `notify_one` wakes the oldest waiter (deterministic); random-mode
//!   schedules add *spurious* wakeups on top, so predicate re-check
//!   loops are still exercised.
//! * Condvar wakeups transfer no clock state — exactly like POSIX, where
//!   only the associated mutex synchronizes.
//!
//! Deadlocks (every live thread blocked) abort the schedule: all parked
//! threads unwind with the private [`SchedAbort`] marker and the outcome
//! records the blocked state for the caller to assert on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once};

use crate::clock::VClock;
use crate::explore::SchedPolicy;

/// Virtual-thread id of the schedule's main thread (the one running the
/// body passed to [`run_schedule`]).
pub const MAIN_TID: usize = 0;

/// Upper bound on visible operations per schedule — a livelock guard;
/// the wavefront protocol on model-sized grids needs a few hundred.
const MAX_STEPS: u64 = 1_000_000;

/// Marker payload for scheduler-initiated unwinds (deadlock abort).
pub struct SchedAbort;

/// Marker payload for deliberately-injected tile panics in model
/// scenarios, so the panic hook can keep test output quiet.
pub struct TilePanic;

/// Installs (once) a panic hook that silences the two marker payloads
/// above; every other panic keeps the default behavior.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = info.payload().is::<SchedAbort>() || info.payload().is::<TilePanic>();
            if !quiet {
                default(info);
            }
        }));
    });
}

/// Why a virtual thread cannot currently be scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VStatus {
    Runnable,
    /// Waiting to acquire monitor `mid`'s lock.
    MutexWait(usize),
    /// Waiting on monitor `mid`'s condition variable.
    CondWait(usize),
    Finished,
}

struct ThreadSlot {
    status: VStatus,
    clock: VClock,
}

#[derive(Default)]
struct MonitorSlot {
    owner: Option<usize>,
    /// FIFO of threads waiting for the lock.
    lock_queue: Vec<usize>,
    /// FIFO of threads waiting on the condvar.
    cond_queue: Vec<usize>,
    /// Release clock, joined by every unlocker.
    clock: VClock,
}

struct AtomicSlot {
    value: u64,
    /// Release clock, joined by `Release`-ordered writers.
    clock: VClock,
}

/// Last-access metadata of one race-checked plain cell.
#[derive(Default)]
struct CellSlot {
    /// Epoch of the last write: `(tid, tick)`.
    write: Option<(usize, u32)>,
    /// Join of all read epochs since the last write.
    reads: VClock,
}

/// How one virtual thread's body ended.
#[derive(Debug)]
pub enum VExit {
    /// Ran to completion.
    Ok,
    /// Unwound with the scheduler-abort marker (deadlock teardown).
    Aborted,
    /// Unwound with an injected [`TilePanic`].
    TilePanic,
    /// Unwound with an ordinary panic (payload rendered to text).
    Panic(String),
}

struct ExecState {
    threads: Vec<ThreadSlot>,
    monitors: Vec<MonitorSlot>,
    atomics: Vec<AtomicSlot>,
    cells: Vec<CellSlot>,
    /// The one virtual thread allowed to run (`usize::MAX`: none).
    active: usize,
    policy: SchedPolicy,
    /// Chosen tid at every scheduling step — the schedule's identity.
    schedule: Vec<u32>,
    steps: u64,
    /// Deadlock description once detected.
    deadlock: Option<String>,
    exits: Vec<(usize, VExit)>,
}

/// The shared runtime for one schedule execution.
pub struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling OS thread's virtual-thread context.
///
/// # Panics
///
/// Panics when called outside a [`run_schedule`] body.
pub fn ctx() -> (Arc<Exec>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("virtual sync primitive used outside run_schedule")
    })
}

fn set_ctx(exec: &Arc<Exec>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

impl Exec {
    fn new(policy: SchedPolicy) -> Arc<Exec> {
        install_quiet_hook();
        // Every thread's clock starts with its own component at 1
        // (FastTrack convention): a tick-0 epoch would be vacuously
        // dominated by everyone, hiding races on first accesses.
        let mut main_clock = VClock::new();
        main_clock.inc(MAIN_TID);
        Arc::new(Exec {
            state: Mutex::new(ExecState {
                threads: vec![ThreadSlot {
                    status: VStatus::Runnable,
                    clock: main_clock,
                }],
                monitors: Vec::new(),
                atomics: Vec::new(),
                cells: Vec::new(),
                active: MAIN_TID,
                policy,
                schedule: Vec::new(),
                steps: 0,
                deadlock: None,
                exits: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// One visible operation by thread `tid`: apply `mutate` to the state,
    /// take a scheduling decision, park until re-activated. Returns the
    /// value produced by `mutate`.
    fn op<R>(&self, tid: usize, mutate: impl FnOnce(&mut ExecState) -> R) -> R {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // During teardown (deadlock abort) ops degrade to bare state
        // mutations: no scheduling, no parking, and crucially no panics —
        // this path runs from Drop impls while threads are unwinding.
        if st.deadlock.is_some() {
            return mutate(&mut st);
        }
        let r = mutate(&mut st);
        self.schedule_next(&mut st, tid);
        while st.active != tid {
            if st.deadlock.is_some() {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            if st.threads[tid].status == VStatus::Finished {
                // Detached exit path: nothing left to run here.
                break;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        r
    }

    /// Picks the next virtual thread to run. Called with the state lock
    /// held, after `tid` performed its operation.
    fn schedule_next(&self, st: &mut ExecState, tid: usize) {
        st.steps += 1;
        if st.steps > MAX_STEPS {
            st.deadlock = Some("step budget exceeded (livelock?)".to_string());
            self.cv.notify_all();
            return;
        }

        // Random-mode spurious wakeups: pull one condvar waiter back to
        // runnable; it will re-acquire the lock and re-check its
        // predicate, exactly like a real spurious wakeup.
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, VStatus::CondWait(_)))
            .map(|(i, _)| i)
            .collect();
        if let Some(w) = st.policy.spurious(&waiters) {
            if let VStatus::CondWait(mid) = st.threads[w].status {
                st.monitors[mid].cond_queue.retain(|&q| q != w);
                st.threads[w].status = VStatus::Runnable;
            }
        }

        let current_runnable = st.threads[tid].status == VStatus::Runnable;
        let mut alts: Vec<usize> = Vec::with_capacity(st.threads.len());
        if current_runnable {
            alts.push(tid);
        }
        for (i, t) in st.threads.iter().enumerate() {
            if i != tid && t.status == VStatus::Runnable {
                alts.push(i);
            }
        }

        if alts.is_empty() {
            if st.threads.iter().all(|t| t.status == VStatus::Finished) {
                st.active = usize::MAX;
                return;
            }
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != VStatus::Finished)
                .map(|(i, t)| format!("vthread {i}: {:?}", t.status))
                .collect();
            st.deadlock = Some(format!("deadlock: {}", stuck.join(", ")));
            st.active = usize::MAX;
            self.cv.notify_all();
            return;
        }

        let chosen = st.policy.pick(current_runnable, &alts);
        debug_assert!(alts.contains(&chosen), "policy chose a non-runnable thread");
        st.schedule.push(chosen as u32);
        if chosen != st.active {
            st.active = chosen;
            self.cv.notify_all();
        } else {
            st.active = chosen;
        }
    }

    /// Parks the calling OS thread until its virtual thread is activated
    /// for the first time (spawn path).
    fn wait_for_activation(&self, tid: usize) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while st.active != tid {
            if st.deadlock.is_some() {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Registers a new virtual thread (inheriting the spawner's clock —
    /// spawn is a happens-before edge) and returns its tid.
    fn register_thread(&self, parent: usize) -> usize {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.threads[parent].clock.inc(parent);
        let mut clock = st.threads[parent].clock.clone();
        let tid = st.threads.len();
        // Own component starts nonzero — see the note in `Exec::new`.
        clock.inc(tid);
        st.threads.push(ThreadSlot {
            status: VStatus::Runnable,
            clock,
        });
        tid
    }

    /// Marks `tid` finished and hands the token onward without parking.
    fn finish_thread(&self, tid: usize, exit: VExit) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.threads[tid].status = VStatus::Finished;
        st.exits.push((tid, exit));
        if st.deadlock.is_none() {
            self.schedule_next(&mut st, tid);
        }
    }

    // ---------------------------------------------------------------
    // Monitor operations (called from `crate::vsync::VirtMonitor`).
    // ---------------------------------------------------------------

    pub(crate) fn register_monitor(&self) -> usize {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.monitors.push(MonitorSlot::default());
        st.monitors.len() - 1
    }

    pub(crate) fn mutex_lock(&self, tid: usize, mid: usize) {
        loop {
            let acquired = self.op(tid, |st| {
                let m = &mut st.monitors[mid];
                if m.owner == Some(tid) {
                    // Direct FIFO hand-off from the previous owner.
                    true
                } else if m.owner.is_none() && m.lock_queue.is_empty() {
                    m.owner = Some(tid);
                    true
                } else {
                    if !m.lock_queue.contains(&tid) {
                        m.lock_queue.push(tid);
                    }
                    st.threads[tid].status = VStatus::MutexWait(mid);
                    false
                }
            });
            if acquired {
                // Acquire edge: the release clock of every prior unlock.
                let mut st = self
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let mclock = st.monitors[mid].clock.clone();
                st.threads[tid].clock.join(&mclock);
                st.threads[tid].clock.inc(tid);
                return;
            }
        }
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, mid: usize) {
        self.op(tid, |st| {
            Self::unlock_inner(st, tid, mid);
        });
    }

    fn unlock_inner(st: &mut ExecState, tid: usize, mid: usize) {
        if st.monitors[mid].owner != Some(tid) {
            // Only reachable during teardown: a `SchedAbort` unwound out
            // of `cond_wait` after the lock was already released, and the
            // guard's Drop is re-running the unlock. Must not panic here —
            // this is a destructor on an unwinding thread.
            debug_assert!(st.deadlock.is_some(), "unlock by non-owner");
            return;
        }
        st.threads[tid].clock.inc(tid);
        let thread_clock = st.threads[tid].clock.clone();
        let m = &mut st.monitors[mid];
        m.clock.join(&thread_clock);
        // FIFO hand-off: the oldest lock-waiter becomes the owner and is
        // made runnable; it completes the acquire when scheduled.
        if m.lock_queue.is_empty() {
            m.owner = None;
        } else {
            let next = m.lock_queue.remove(0);
            m.owner = Some(next);
            st.threads[next].status = VStatus::Runnable;
        }
    }

    pub(crate) fn cond_wait(&self, tid: usize, mid: usize) {
        // Atomically: release the lock and join the condvar queue. The
        // wakeup itself carries no clock state (POSIX semantics); the
        // re-acquire below provides the synchronization.
        self.op(tid, |st| {
            Self::unlock_inner(st, tid, mid);
            st.monitors[mid].cond_queue.push(tid);
            st.threads[tid].status = VStatus::CondWait(mid);
        });
        // Back runnable (notified or spurious): re-acquire the lock.
        self.mutex_lock(tid, mid);
    }

    pub(crate) fn notify_one(&self, tid: usize, mid: usize) {
        self.op(tid, |st| {
            let m = &mut st.monitors[mid];
            if !m.cond_queue.is_empty() {
                let w = m.cond_queue.remove(0);
                st.threads[w].status = VStatus::Runnable;
            }
        });
    }

    pub(crate) fn notify_all(&self, tid: usize, mid: usize) {
        self.op(tid, |st| {
            let m = &mut st.monitors[mid];
            let woken: Vec<usize> = m.cond_queue.drain(..).collect();
            for w in woken {
                st.threads[w].status = VStatus::Runnable;
            }
        });
    }

    // ---------------------------------------------------------------
    // Atomic operations (called from `crate::vsync` atomics).
    // ---------------------------------------------------------------

    pub(crate) fn register_atomic(&self, value: u64) -> usize {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.atomics.push(AtomicSlot {
            value,
            clock: VClock::new(),
        });
        st.atomics.len() - 1
    }

    /// One atomic access: `f` maps the current value to `Some(new)` for
    /// writes/RMWs or `None` for pure loads; returns the previous value.
    /// Only `Acquire`-class orderings pull the atomic's release clock in,
    /// only `Release`-class orderings push the thread's clock out —
    /// `Relaxed` transfers the value alone.
    pub(crate) fn atomic_access(
        &self,
        tid: usize,
        aid: usize,
        order: std::sync::atomic::Ordering,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        use std::sync::atomic::Ordering::*;
        let is_acquire = matches!(order, Acquire | AcqRel | SeqCst);
        let is_release = matches!(order, Release | AcqRel | SeqCst);
        self.op(tid, |st| {
            let old = st.atomics[aid].value;
            let new = f(old);
            if is_acquire {
                let aclock = st.atomics[aid].clock.clone();
                st.threads[tid].clock.join(&aclock);
            }
            if new.is_some() && is_release {
                st.threads[tid].clock.inc(tid);
                let tclock = st.threads[tid].clock.clone();
                st.atomics[aid].clock.join(&tclock);
            }
            if let Some(v) = new {
                st.atomics[aid].value = v;
            }
            st.threads[tid].clock.inc(tid);
            old
        })
    }

    /// One atomic compare-and-swap. On success the clock transfer follows
    /// `success` (both acquire and release sides when `AcqRel`/`SeqCst`);
    /// on mismatch only the acquire side of `failure` applies — exactly
    /// the hardware contract `std` documents.
    pub(crate) fn atomic_cas(
        &self,
        tid: usize,
        aid: usize,
        current: u64,
        new: u64,
        success: std::sync::atomic::Ordering,
        failure: std::sync::atomic::Ordering,
    ) -> Result<u64, u64> {
        use std::sync::atomic::Ordering::*;
        self.op(tid, |st| {
            let old = st.atomics[aid].value;
            let matched = old == current;
            let order = if matched { success } else { failure };
            if matches!(order, Acquire | AcqRel | SeqCst) {
                let aclock = st.atomics[aid].clock.clone();
                st.threads[tid].clock.join(&aclock);
            }
            if matched {
                if matches!(success, Release | AcqRel | SeqCst) {
                    st.threads[tid].clock.inc(tid);
                    let tclock = st.threads[tid].clock.clone();
                    st.atomics[aid].clock.join(&tclock);
                }
                st.atomics[aid].value = new;
            }
            st.threads[tid].clock.inc(tid);
            if matched {
                Ok(old)
            } else {
                Err(old)
            }
        })
    }

    // ---------------------------------------------------------------
    // Race-checked plain cells (called from `crate::vsync::RaceCell`).
    // ---------------------------------------------------------------

    pub(crate) fn register_cell(&self) -> usize {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.cells.push(CellSlot::default());
        st.cells.len() - 1
    }

    /// Records a plain read of cell `cid` and checks it is ordered after
    /// the last write. Plain accesses are not scheduling points: their
    /// placement between the surrounding sync operations cannot change
    /// the schedule, only the clock bookkeeping matters.
    pub(crate) fn cell_read(&self, tid: usize, cid: usize) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.deadlock.is_some() {
            return;
        }
        let tclock = st.threads[tid].clock.clone();
        let own_tick = tclock.get(tid);
        let cell = &mut st.cells[cid];
        if let Some((wtid, wtick)) = cell.write {
            assert!(
                tclock.dominates(wtid, wtick),
                "data race: vthread {tid} read cell {cid} without ordering after \
                 the write by vthread {wtid} (missing happens-before edge)"
            );
        }
        // Record this read's epoch so a later unordered write trips.
        cell.reads.record(tid, own_tick);
    }

    /// Records a plain write of cell `cid` and checks it is ordered after
    /// every previous access.
    pub(crate) fn cell_write(&self, tid: usize, cid: usize) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.deadlock.is_some() {
            return;
        }
        let tclock = st.threads[tid].clock.clone();
        let n = st.threads.len();
        let cell = &mut st.cells[cid];
        if let Some((wtid, wtick)) = cell.write {
            assert!(
                tclock.dominates(wtid, wtick),
                "data race: vthread {tid} wrote cell {cid} without ordering after \
                 the write by vthread {wtid} (missing happens-before edge)"
            );
        }
        for t in 0..n {
            assert!(
                tclock.get(t) >= cell.reads.get(t),
                "data race: vthread {tid} wrote cell {cid} without ordering after \
                 a read by vthread {t} (missing happens-before edge)"
            );
        }
        cell.write = Some((tid, tclock.get(tid)));
        cell.reads = VClock::new();
    }
}

/// Spawns additional virtual threads inside a [`run_schedule`] body.
/// Lifetimes mirror [`std::thread::scope`]: `'env` is the environment the
/// spawned bodies may borrow from (everything alive across the
/// `run_schedule` call), `'scope` the scope itself.
pub struct VScope<'scope, 'env: 'scope> {
    exec: Arc<Exec>,
    scope: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope> VScope<'scope, '_> {
    /// Spawns a virtual thread running `f`. The spawn is a visible
    /// operation and a happens-before edge from spawner to spawnee.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let (_, parent) = ctx();
        let tid = self.exec.register_thread(parent);
        let exec = Arc::clone(&self.exec);
        self.scope.spawn(move || {
            set_ctx(&exec, tid);
            // The activation wait is inside the catch: a deadlock abort
            // can unwind it with `SchedAbort` before `f` ever runs.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                exec.wait_for_activation(tid);
                f();
            }));
            clear_ctx();
            exec.finish_thread(tid, exit_of(outcome));
        });
        // Making the new thread runnable is itself a scheduling point.
        self.exec.op(parent, |_| {});
    }
}

fn exit_of(outcome: Result<(), Box<dyn std::any::Any + Send>>) -> VExit {
    match outcome {
        Ok(()) => VExit::Ok,
        Err(payload) => {
            if payload.is::<SchedAbort>() {
                VExit::Aborted
            } else if payload.is::<TilePanic>() {
                VExit::TilePanic
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                VExit::Panic((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                VExit::Panic(s.clone())
            } else {
                VExit::Panic("<non-string panic payload>".to_string())
            }
        }
    }
}

/// Outcome of one fully-executed schedule.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// FNV-1a hash of the decision sequence — the schedule's identity.
    pub schedule_hash: u64,
    /// Visible operations executed.
    pub steps: u64,
    /// Deadlock description, if the schedule deadlocked.
    pub deadlock: Option<String>,
    /// Exit status per virtual thread.
    pub exits: Vec<(usize, VExit)>,
    /// The policy, with its recorded trace (DFS backtracking input).
    pub policy: SchedPolicy,
}

impl ScheduleOutcome {
    /// Panic messages of threads that failed with a *real* panic (not a
    /// scheduler abort, not an injected tile panic).
    pub fn real_panics(&self) -> Vec<&str> {
        self.exits
            .iter()
            .filter_map(|(_, e)| match e {
                VExit::Panic(msg) => Some(msg.as_str()),
                _ => None,
            })
            .collect()
    }

    /// True when some thread unwound with the injected [`TilePanic`].
    pub fn tile_panicked(&self) -> bool {
        self.exits
            .iter()
            .any(|(_, e)| matches!(e, VExit::TilePanic))
    }
}

/// Runs `body` as virtual thread 0 under `policy`, returning the
/// schedule's outcome. `body` receives a [`VScope`] for spawning
/// further virtual threads; all of them are joined before this returns.
pub fn run_schedule<'env, F>(policy: SchedPolicy, body: F) -> ScheduleOutcome
where
    F: for<'scope> FnOnce(VScope<'scope, 'env>),
{
    let exec = Exec::new(policy);
    std::thread::scope(|s| {
        let vscope = VScope {
            exec: Arc::clone(&exec),
            scope: s,
        };
        set_ctx(&exec, MAIN_TID);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(vscope)));
        clear_ctx();
        exec.finish_thread(MAIN_TID, exit_of(outcome));
    });
    let st = Arc::into_inner(exec)
        .expect("all schedule threads joined")
        .state
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut hash: u64 = 0xcbf29ce484222325;
    for &tid in &st.schedule {
        hash ^= tid as u64 + 1;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    ScheduleOutcome {
        schedule_hash: hash,
        steps: st.steps,
        deadlock: st.deadlock,
        exits: st.exits,
        policy: st.policy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_schedule_runs_to_completion() {
        let out = run_schedule(SchedPolicy::random(1, 30, 0), |_scope| {
            // No sync ops at all — still a valid (empty) schedule.
        });
        assert!(out.deadlock.is_none());
        assert!(out.real_panics().is_empty());
    }

    #[test]
    fn spawned_threads_all_run() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let count = AtomicU32::new(0);
        let out = run_schedule(SchedPolicy::random(7, 50, 0), |scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert!(out.deadlock.is_none());
        assert_eq!(count.into_inner(), 3);
        assert_eq!(out.exits.len(), 4);
    }

    #[test]
    fn schedules_differ_across_seeds_but_replay_identically() {
        use crate::vsync::VirtSync;
        use flsa_wavefront::sync::{Monitor, SyncModel};
        let run = |seed: u64| {
            run_schedule(SchedPolicy::random(seed, 50, 0), |scope| {
                let m = std::sync::Arc::new(<VirtSync as SyncModel>::Monitor::<u32>::new(0));
                let m2 = std::sync::Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..4 {
                        *m2.lock() += 1;
                    }
                });
                for _ in 0..4 {
                    *m.lock() += 10;
                }
            })
            .schedule_hash
        };
        assert_eq!(run(3), run(3), "same seed must replay identically");
        let distinct: std::collections::HashSet<u64> = (0..16).map(run).collect();
        assert!(distinct.len() > 4, "seeds should yield varied schedules");
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        use crate::vsync::VirtSync;
        use flsa_wavefront::sync::{Monitor, SyncModel};
        // One thread waits on a condvar nobody ever signals.
        let out = run_schedule(SchedPolicy::random(5, 50, 0), |_scope| {
            let m = <VirtSync as SyncModel>::Monitor::<bool>::new(false);
            let mut g = m.lock();
            while !*g {
                m.wait(&mut g);
            }
        });
        let dl = out.deadlock.expect("must report the deadlock");
        assert!(dl.contains("deadlock"), "{dl}");
    }
}

//! Schedule exploration strategies.
//!
//! A schedule is the sequence of scheduler decisions ("which runnable
//! virtual thread executes the next visible operation"). Two explorers
//! are provided:
//!
//! * [`DfsExplorer`] — bounded-exhaustive depth-first enumeration with a
//!   *preemption bound* (CHESS-style): staying on the current thread is
//!   always free, switching away from a still-runnable thread consumes
//!   one unit of the bound, and forced switches (current thread blocked
//!   or finished) are free. Small preemption bounds are known to expose
//!   the vast majority of concurrency bugs while keeping the schedule
//!   tree enumerable.
//! * [`SchedPolicy::random`] — seeded pseudo-random schedules (SplitMix64,
//!   no external dependency) with a tunable switch probability and
//!   optional spurious condvar wakeups, for probabilistic coverage far
//!   beyond the exhaustive frontier.
//!
//! Both are deterministic: replaying the same prefix/seed reproduces the
//! identical interleaving, which is what makes failures debuggable.

/// Deterministic SplitMix64 generator — tiny, seedable, dependency-free.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The scheduling policy driving one schedule execution.
///
/// The runtime calls [`SchedPolicy::pick`] at every visible operation
/// with the list of threads allowed to run next (current thread first
/// when it may continue); the policy returns the chosen thread.
#[derive(Clone, Debug)]
pub enum SchedPolicy {
    /// Replay `prefix` choice ranks, then always take rank 0; records
    /// the `(rank, alternatives)` trace for DFS backtracking.
    Dfs {
        /// Choice ranks to force, produced by [`DfsExplorer`].
        prefix: Vec<u32>,
        /// `(taken_rank, n_alternatives)` per decision point.
        trace: Vec<(u32, u32)>,
        /// Decision index (cursor into `prefix`/`trace`).
        pos: usize,
        /// Preemptions consumed so far.
        preemptions: u32,
        /// Maximum voluntary preemptions per schedule.
        bound: u32,
    },
    /// Seeded random walk over the schedule space.
    Random {
        /// Deterministic generator.
        rng: SplitMix64,
        /// Percent chance to preempt a still-runnable current thread.
        switch_pct: u32,
        /// Percent chance per step to spuriously wake one condvar waiter.
        spurious_pct: u32,
    },
}

impl SchedPolicy {
    /// A DFS policy replaying `prefix` under `bound` preemptions.
    pub fn dfs(prefix: Vec<u32>, bound: u32) -> Self {
        SchedPolicy::Dfs {
            prefix,
            trace: Vec::new(),
            pos: 0,
            preemptions: 0,
            bound,
        }
    }

    /// A random policy from `seed`; `switch_pct` percent preemption
    /// chance, `spurious_pct` percent spurious-wakeup chance per step.
    pub fn random(seed: u64, switch_pct: u32, spurious_pct: u32) -> Self {
        SchedPolicy::Random {
            rng: SplitMix64::new(seed),
            switch_pct,
            spurious_pct,
        }
    }

    /// Chooses the next thread. `alts` is non-empty; when
    /// `current_runnable` is true, `alts[0]` is the current thread.
    pub fn pick(&mut self, current_runnable: bool, alts: &[usize]) -> usize {
        debug_assert!(!alts.is_empty());
        match self {
            SchedPolicy::Dfs {
                prefix,
                trace,
                pos,
                preemptions,
                bound,
            } => {
                // Once the preemption budget is spent, a runnable current
                // thread must continue: no alternatives, no choice point.
                let allowed = if current_runnable && *preemptions >= *bound {
                    &alts[..1]
                } else {
                    alts
                };
                let rank = prefix
                    .get(*pos)
                    .copied()
                    .unwrap_or(0)
                    .min(allowed.len() as u32 - 1);
                trace.push((rank, allowed.len() as u32));
                *pos += 1;
                let chosen = allowed[rank as usize];
                if current_runnable && chosen != alts[0] {
                    *preemptions += 1;
                }
                chosen
            }
            SchedPolicy::Random {
                rng, switch_pct, ..
            } => {
                if current_runnable && rng.below(100) as u32 >= *switch_pct {
                    alts[0]
                } else {
                    alts[rng.below(alts.len())]
                }
            }
        }
    }

    /// Random-mode hook: optionally pick one condvar waiter to wake
    /// spuriously (both `std` and `parking_lot` condvars permit this, so
    /// the protocol must tolerate it).
    pub fn spurious(&mut self, waiters: &[usize]) -> Option<usize> {
        match self {
            SchedPolicy::Random {
                rng, spurious_pct, ..
            } if *spurious_pct > 0 && !waiters.is_empty() => {
                if (rng.below(100) as u32) < *spurious_pct {
                    Some(waiters[rng.below(waiters.len())])
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The recorded decision trace (DFS mode; empty for random).
    pub fn trace(&self) -> &[(u32, u32)] {
        match self {
            SchedPolicy::Dfs { trace, .. } => trace,
            SchedPolicy::Random { .. } => &[],
        }
    }
}

/// Iterates the preemption-bounded schedule tree depth-first.
///
/// ```
/// use flsa_check::explore::DfsExplorer;
/// let mut dfs = DfsExplorer::new(2);
/// let mut schedules = 0u64;
/// while let Some(_policy) = dfs.next_policy() {
///     // run the schedule, then feed the recorded trace back:
///     // dfs.advance(policy.trace());
///     schedules += 1;
///     if schedules > 0 { break } // (doctest: not actually exploring)
/// }
/// ```
#[derive(Debug)]
pub struct DfsExplorer {
    prefix: Option<Vec<u32>>,
    bound: u32,
}

impl DfsExplorer {
    /// An explorer with the given preemption bound.
    pub fn new(bound: u32) -> Self {
        DfsExplorer {
            prefix: Some(Vec::new()),
            bound,
        }
    }

    /// The policy for the next unexplored schedule, or `None` when the
    /// bounded tree is exhausted.
    pub fn next_policy(&mut self) -> Option<SchedPolicy> {
        self.prefix.clone().map(|p| SchedPolicy::dfs(p, self.bound))
    }

    /// Consumes the decision trace of the schedule just run and moves to
    /// the next leaf: bump the deepest decision that still has an untried
    /// alternative, drop everything after it.
    pub fn advance(&mut self, trace: &[(u32, u32)]) {
        for i in (0..trace.len()).rev() {
            let (taken, alts) = trace[i];
            if taken + 1 < alts {
                let mut next: Vec<u32> = trace[..i].iter().map(|&(t, _)| t).collect();
                next.push(taken + 1);
                self.prefix = Some(next);
                return;
            }
        }
        self.prefix = None;
    }

    /// True when every schedule within the bound has been visited.
    pub fn exhausted(&self) -> bool {
        self.prefix.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(SplitMix64::new(1).next_u64() != SplitMix64::new(2).next_u64());
    }

    #[test]
    fn dfs_policy_replays_prefix_then_takes_zero() {
        let mut p = SchedPolicy::dfs(vec![1], 8);
        // Two alternatives, prefix forces rank 1.
        assert_eq!(p.pick(true, &[0, 1]), 1);
        // Past the prefix: rank 0 (stay on current).
        assert_eq!(p.pick(true, &[1, 0]), 1);
        assert_eq!(p.trace(), &[(1, 2), (0, 2)]);
    }

    #[test]
    fn dfs_policy_respects_preemption_bound() {
        let mut p = SchedPolicy::dfs(vec![1, 1, 1], 1);
        assert_eq!(p.pick(true, &[0, 1]), 1); // preemption 1 of 1
                                              // Budget spent: current thread must continue even though the
                                              // prefix asks for rank 1.
        assert_eq!(p.pick(true, &[1, 0]), 1);
        // Forced switches (current not runnable) stay free and unbounded.
        assert_eq!(p.pick(false, &[0, 2]), 2);
    }

    #[test]
    fn dfs_explorer_enumerates_a_tiny_tree_exactly_once() {
        // Simulate a run function: 2 decision points, 2 and 3 alternatives.
        let shape = [2u32, 3u32];
        let mut dfs = DfsExplorer::new(8);
        let mut seen = Vec::new();
        while let Some(mut policy) = dfs.next_policy() {
            let mut leaf = Vec::new();
            for &alts in &shape {
                let opts: Vec<usize> = (0..alts as usize).collect();
                leaf.push(policy.pick(false, &opts));
            }
            seen.push(leaf);
            dfs.advance(policy.trace());
        }
        assert_eq!(seen.len(), 6);
        let mut uniq = seen.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 6, "every leaf distinct: {seen:?}");
    }

    #[test]
    fn random_policy_is_reproducible() {
        let run = |seed: u64| -> Vec<usize> {
            let mut p = SchedPolicy::random(seed, 40, 0);
            (0..64).map(|i| p.pick(i % 3 != 0, &[0, 1, 2])).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

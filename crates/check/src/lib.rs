//! Static and dynamic analysis for the FastLSA workspace (DESIGN.md §8).
//!
//! Two subsystems share this crate:
//!
//! * **Concurrency model checker** — a loom-style deterministic scheduler
//!   ([`exec`]) that replays the *actual* wavefront scheduling protocol
//!   ([`flsa_wavefront::protocol::JobCore`], instantiated on the virtual
//!   [`vsync::VirtSync`] primitives) under bounded-exhaustive
//!   ([`explore::DfsExplorer`]) and seeded-random interleavings, checking
//!   the protocol invariants on every schedule and detecting data races
//!   with vector clocks ([`clock`]). The pool scenario and its invariant
//!   assertions live in [`model`].
//! * **Repo lint** — a dependency-free source scanner ([`lint`], exposed
//!   as `cargo run -p flsa-check --bin lint`) enforcing the workspace's
//!   unsafe-hygiene rules: `// SAFETY:` comments on `unsafe`, panic-free
//!   DP hot kernels, justified `Ordering::Relaxed`, and
//!   `#![forbid(unsafe_code)]` on crates with no unsafe code.
//! * **Semantic audit** — an item-level Rust parser ([`parse`]) feeding
//!   three interprocedural passes ([`audit`], exposed as
//!   `cargo run -p flsa-check --bin audit`): R8 panic-reachability over
//!   the DP/kernel call graph, R9 feature-detection dominance for
//!   `#[target_feature]` call sites, and R10 overflow certification of
//!   the DP recurrence with a machine-readable certificate
//!   (DESIGN.md §13).

pub mod audit;
pub mod clock;
pub mod exec;
pub mod explore;
pub mod lint;
pub mod model;
pub mod parse;
pub mod vsync;

//! The wavefront pool scenario under the model checker.
//!
//! [`check_schedule`] runs one schedule of the *real* protocol code —
//! [`JobCore`] monomorphized over [`VirtSync`] — mirroring what
//! `WorkerPool::run` does: N participants call `participate`, the
//! submitter then waits for quiescence and drops the job. On top of the
//! runtime's built-in race and deadlock detection it asserts the protocol
//! invariants documented in `flsa_wavefront::protocol`:
//!
//! * every live tile runs exactly once, skipped tiles never (inv. 1);
//! * a tile starts only after both live parents finished, and it *sees*
//!   their writes — checked through [`RaceCell`]s, so a missing
//!   happens-before edge fails the schedule as a race (inv. 2 & 5);
//! * no `work` call can run after the submitter observed quiescence —
//!   modeled by a plain write to an `alive` cell right where the real
//!   pool lets its borrowed closure die (inv. 3);
//! * the schedule terminates with no deadlock (inv. 4);
//! * an injected tile panic poisons the job and everyone still drains
//!   (inv. 6);
//! * a cancellation observed at a tile (`abort_cancelled`, mirroring
//!   the pool's cancel-callback path) marks the job cancelled, skips
//!   the tile's work, and still drains every participant (inv. 7);
//! * the tile set captured after quiescence — what the real solver
//!   persists as a [`fastlsa_core::CheckpointState`] — is a *consistent
//!   cut* of the dependency order, even when the run was cancelled or
//!   poisoned mid-wavefront (inv. 8; [`check_checkpoint_schedule`]).

use std::sync::{Arc, Mutex};

use flsa_wavefront::JobCore;

use crate::exec::{run_schedule, ScheduleOutcome, TilePanic};
use crate::explore::SchedPolicy;
use crate::vsync::{RaceCell, VirtSync};

/// One pool-model configuration: grid shape, participant count, skip
/// mask, and an optional tile that panics when it runs.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Tile-grid rows.
    pub rows: usize,
    /// Tile-grid columns.
    pub cols: usize,
    /// Total participants, including the submitting virtual thread.
    pub threads: usize,
    /// `skip[r * cols + c]`: tile does not exist (paper Fig. 13 shape).
    pub skip: Vec<bool>,
    /// Tile whose `work` panics (invariant-6 scenarios).
    pub panic_at: Option<(usize, usize)>,
    /// Tile at which a participant observes cancellation and calls
    /// `abort_cancelled` instead of running the work (invariant-7
    /// scenarios, mirroring `WorkerPool::run_with_cancel`).
    pub cancel_at: Option<(usize, usize)>,
}

impl ModelSpec {
    /// A dense grid with no panics.
    pub fn dense(rows: usize, cols: usize, threads: usize) -> Self {
        ModelSpec {
            rows,
            cols,
            threads,
            skip: vec![false; rows * cols],
            panic_at: None,
            cancel_at: None,
        }
    }

    /// Same spec with the FastLSA bottom-right skip block: tiles with
    /// `r >= rows - skip_rows && c >= cols - skip_cols` don't exist.
    pub fn with_skip_block(mut self, skip_rows: usize, skip_cols: usize) -> Self {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r + skip_rows >= self.rows && c + skip_cols >= self.cols {
                    self.skip[r * self.cols + c] = true;
                }
            }
        }
        self
    }

    /// Same spec with tile `(r, c)` panicking when it runs.
    pub fn with_panic_at(mut self, r: usize, c: usize) -> Self {
        self.panic_at = Some((r, c));
        self
    }

    /// Same spec with cancellation observed at tile `(r, c)`.
    pub fn with_cancel_at(mut self, r: usize, c: usize) -> Self {
        self.cancel_at = Some((r, c));
        self
    }

    fn live(&self) -> usize {
        self.skip.iter().filter(|&&s| !s).count()
    }
}

/// Everything shared between the participants of one modeled job.
struct Shared {
    core: JobCore<VirtSync>,
    /// One cell per tile: 0 = not run, 1 = run. Written by the tile,
    /// read by its dependents — the vehicle for invariants 1, 2 and 5.
    cells: Vec<RaceCell<u32>>,
    /// Models the lifetime of the pool's borrowed work closure: the
    /// submitter plain-writes `false` after quiescence; any `work` still
    /// reading it would be a detected race or a failed assert (inv. 3).
    alive: RaceCell<bool>,
}

/// The per-tile work body every participant runs.
fn tile_work(shared: &Shared, spec: &ModelSpec, runs: &Mutex<Vec<u32>>, r: usize, c: usize) {
    let cols = spec.cols;
    let idx = r * cols + c;
    assert!(
        shared.alive.get(),
        "work({r},{c}) executed after the job was dropped"
    );
    if spec.cancel_at == Some((r, c)) {
        // The pool's cancel callback fires before the tile body runs:
        // mark the job cancelled and skip the work. Everyone drains.
        shared.core.abort_cancelled();
        return;
    }
    if r > 0 && !spec.skip[(r - 1) * cols + c] {
        assert_eq!(
            shared.cells[(r - 1) * cols + c].get(),
            1,
            "work({r},{c}) started before its up-parent finished"
        );
    }
    if c > 0 && !spec.skip[r * cols + c - 1] {
        assert_eq!(
            shared.cells[r * cols + c - 1].get(),
            1,
            "work({r},{c}) started before its left-parent finished"
        );
    }
    assert_eq!(shared.cells[idx].get(), 0, "work({r},{c}) ran twice");
    shared.cells[idx].set(1);
    runs.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)[idx] += 1;
    if spec.panic_at == Some((r, c)) {
        std::panic::panic_any(TilePanic);
    }
}

/// Runs one schedule of the pool scenario under `policy` and checks every
/// protocol invariant. `Ok` carries the schedule outcome (hash, step
/// count, DFS trace); `Err` describes the violated invariant.
pub fn check_schedule(policy: SchedPolicy, spec: &ModelSpec) -> Result<ScheduleOutcome, String> {
    let n = spec.rows * spec.cols;
    // Host-side mirror of per-tile run counts: lives outside the virtual
    // world (physically serialized by the runtime, so a plain std mutex
    // is fine) and survives even schedules that fail mid-way.
    let runs: Mutex<Vec<u32>> = Mutex::new(vec![0; n]);
    let final_state: Mutex<Option<(bool, bool, bool)>> = Mutex::new(None);

    let outcome = run_schedule(policy, |scope| {
        let shared = Arc::new(Shared {
            core: JobCore::new(spec.rows, spec.cols, spec.skip.clone()),
            cells: (0..n).map(|_| RaceCell::new(0)).collect(),
            alive: RaceCell::new(true),
        });
        for _ in 1..spec.threads {
            let shared = Arc::clone(&shared);
            let runs = &runs;
            scope.spawn(move || {
                shared
                    .core
                    .participate(|r, c| tile_work(&shared, spec, runs, r, c));
            });
        }
        // The submitting thread, mirroring WorkerPool::run: participate,
        // wait for quiescence (even when its own tile panicked), then let
        // the "closure" die and re-raise.
        let participation = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared
                .core
                .participate(|r, c| tile_work(&shared, spec, &runs, r, c));
        }));
        shared.core.wait_quiescent();
        shared.alive.set(false);
        *final_state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((
            shared.core.is_drained(),
            shared.core.is_poisoned(),
            shared.core.is_cancelled(),
        ));
        if let Err(payload) = participation {
            std::panic::resume_unwind(payload);
        }
    });

    if let Some(dl) = &outcome.deadlock {
        return Err(format!("schedule {:#x}: {dl}", outcome.schedule_hash));
    }
    let panics = outcome.real_panics();
    if !panics.is_empty() {
        return Err(format!(
            "schedule {:#x}: {}",
            outcome.schedule_hash,
            panics.join("; ")
        ));
    }
    if spec.panic_at.is_some() && !outcome.tile_panicked() {
        return Err(format!(
            "schedule {:#x}: injected tile panic never surfaced on any participant",
            outcome.schedule_hash
        ));
    }

    let runs = runs
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut ran = 0usize;
    for (idx, &count) in runs.iter().enumerate() {
        let (r, c) = (idx / spec.cols, idx % spec.cols);
        if spec.skip[idx] && count != 0 {
            return Err(format!("skipped tile ({r},{c}) ran {count} times"));
        }
        if count > 1 {
            return Err(format!("tile ({r},{c}) ran {count} times"));
        }
        ran += count as usize;
    }
    let (drained, poisoned, cancelled) = final_state
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .ok_or_else(|| "submitter never recorded the final job state".to_string())?;
    if !drained {
        return Err("job not drained after quiescence".to_string());
    }
    if let Some((r, c)) = spec.cancel_at {
        // Invariant 7: the cancellation is visible, the cancelled tile's
        // work never ran, and nothing ran more than live (checked above).
        if !cancelled {
            return Err("cancelled job not reported cancelled".to_string());
        }
        if runs[r * spec.cols + c] != 0 {
            return Err(format!("cancelled tile ({r},{c}) ran its work"));
        }
        if ran >= spec.live() {
            return Err(format!(
                "{ran} of {} live tiles ran despite cancellation",
                spec.live()
            ));
        }
        return Ok(outcome);
    }
    if cancelled {
        return Err("job reported cancelled without a cancel injection".to_string());
    }
    match spec.panic_at {
        None => {
            if poisoned {
                return Err("clean job reported poisoned".to_string());
            }
            if ran != spec.live() {
                return Err(format!(
                    "{ran} of {} live tiles ran (exactly-once violated)",
                    spec.live()
                ));
            }
        }
        Some((r, c)) => {
            if !poisoned {
                return Err("panicked job not reported poisoned".to_string());
            }
            if runs[r * spec.cols + c] != 1 {
                return Err(format!("panicking tile ({r},{c}) did not run exactly once"));
            }
        }
    }
    Ok(outcome)
}

/// Runs one schedule of the pool scenario and captures the tile cut the
/// submitter would persist as a checkpoint, checking invariant 8: the
/// captured set is a *consistent cut* of the wavefront dependency order
/// (down-closed: a done tile's live parents are done), so a resume can
/// rebuild the frontier from it without re-running finished work or
/// starting a tile whose inputs are missing.
///
/// The spec may cancel or panic mid-wavefront (that is the interesting
/// case — the cut is partial, and *which* tiles made it in depends on
/// the preemption point). After `wait_quiescent` the submitter
/// plain-reads every tile cell, exactly like the real checkpoint sink
/// reading solver state after the workers drained; the [`RaceCell`]s
/// turn any missing happens-before edge on that capture into a failed
/// schedule. Returns the outcome and the cut (`cut[r * cols + c]`).
pub fn check_checkpoint_schedule(
    policy: SchedPolicy,
    spec: &ModelSpec,
) -> Result<(ScheduleOutcome, Vec<bool>), String> {
    let n = spec.rows * spec.cols;
    let runs: Mutex<Vec<u32>> = Mutex::new(vec![0; n]);
    let captured: Mutex<Option<Vec<bool>>> = Mutex::new(None);

    let outcome = run_schedule(policy, |scope| {
        let shared = Arc::new(Shared {
            core: JobCore::new(spec.rows, spec.cols, spec.skip.clone()),
            cells: (0..n).map(|_| RaceCell::new(0)).collect(),
            alive: RaceCell::new(true),
        });
        for _ in 1..spec.threads {
            let shared = Arc::clone(&shared);
            let runs = &runs;
            scope.spawn(move || {
                shared
                    .core
                    .participate(|r, c| tile_work(&shared, spec, runs, r, c));
            });
        }
        let participation = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared
                .core
                .participate(|r, c| tile_work(&shared, spec, &runs, r, c));
        }));
        shared.core.wait_quiescent();
        // The checkpoint capture: a plain read of every tile's cell.
        // Safe only because quiescence established a happens-before
        // edge from every worker — which the race detector verifies.
        let cut: Vec<bool> = shared.cells.iter().map(|c| c.get() == 1).collect();
        *captured
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(cut);
        shared.alive.set(false);
        if let Err(payload) = participation {
            std::panic::resume_unwind(payload);
        }
    });

    if let Some(dl) = &outcome.deadlock {
        return Err(format!("schedule {:#x}: {dl}", outcome.schedule_hash));
    }
    let panics = outcome.real_panics();
    if !panics.is_empty() {
        return Err(format!(
            "schedule {:#x}: {}",
            outcome.schedule_hash,
            panics.join("; ")
        ));
    }

    let cut = captured
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .ok_or_else(|| "submitter never captured the checkpoint cut".to_string())?;
    let runs = runs
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (idx, &done) in cut.iter().enumerate() {
        let (r, c) = (idx / spec.cols, idx % spec.cols);
        if spec.skip[idx] && done {
            return Err(format!("checkpoint cut contains skipped tile ({r},{c})"));
        }
        // The capture must agree with the host-side mirror: a tile is in
        // the cut iff its work ran (no lost or phantom publication).
        if done != (runs[idx] == 1) {
            return Err(format!(
                "cut disagrees with run counts at ({r},{c}): done={done}, runs={}",
                runs[idx]
            ));
        }
        if !done {
            continue;
        }
        // Invariant 8: down-closure under the wavefront dependency order.
        if r > 0 && !spec.skip[(r - 1) * spec.cols + c] && !cut[(r - 1) * spec.cols + c] {
            return Err(format!(
                "inconsistent cut: ({r},{c}) done but up-parent ({},{c}) missing",
                r - 1
            ));
        }
        if c > 0 && !spec.skip[r * spec.cols + c - 1] && !cut[r * spec.cols + c - 1] {
            return Err(format!(
                "inconsistent cut: ({r},{c}) done but left-parent ({r},{}) missing",
                c - 1
            ));
        }
    }
    if spec.panic_at.is_none() && spec.cancel_at.is_none() {
        let done = cut.iter().filter(|&&d| d).count();
        if done != spec.live() {
            return Err(format!(
                "clean run captured a partial cut: {done} of {} live tiles",
                spec.live()
            ));
        }
    }
    Ok((outcome, cut))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_grid_random_schedules_hold_every_invariant() {
        let spec = ModelSpec::dense(2, 2, 2);
        for seed in 0..30 {
            check_schedule(SchedPolicy::random(seed, 40, 10), &spec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn skip_block_grid_holds_invariants() {
        let spec = ModelSpec::dense(3, 3, 2).with_skip_block(2, 2);
        // The 2×2 bottom-right block is skipped: row 0 and column 0 stay.
        assert_eq!(spec.live(), 5);
        for seed in 0..20 {
            check_schedule(SchedPolicy::random(seed, 40, 10), &spec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn injected_panic_poisons_and_drains_without_deadlock() {
        let spec = ModelSpec::dense(2, 2, 2).with_panic_at(0, 1);
        for seed in 0..30 {
            check_schedule(SchedPolicy::random(seed, 40, 10), &spec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn cancellation_marks_the_job_and_drains_without_deadlock() {
        let spec = ModelSpec::dense(2, 2, 2).with_cancel_at(0, 1);
        for seed in 0..30 {
            check_schedule(SchedPolicy::random(seed, 40, 10), &spec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn checkpoint_cut_is_complete_on_clean_runs() {
        let spec = ModelSpec::dense(2, 2, 2);
        for seed in 0..20 {
            let (_, cut) = check_checkpoint_schedule(SchedPolicy::random(seed, 40, 10), &spec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(cut.iter().all(|&d| d), "seed {seed}: partial cut {cut:?}");
        }
    }

    #[test]
    fn cancelled_checkpoint_cut_is_consistent_and_partial() {
        let spec = ModelSpec::dense(2, 2, 2).with_cancel_at(1, 0);
        for seed in 0..30 {
            // check_checkpoint_schedule itself asserts down-closure; the
            // cancelled tile must additionally never be in the cut.
            let (_, cut) = check_checkpoint_schedule(SchedPolicy::random(seed, 40, 10), &spec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!cut[2], "seed {seed}: cancelled tile captured as done");
        }
    }

    #[test]
    fn three_participants_also_hold() {
        let spec = ModelSpec::dense(2, 2, 3);
        for seed in 0..15 {
            check_schedule(SchedPolicy::random(seed, 40, 10), &spec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}

//! Semantic audit driver: `cargo run -p flsa-check --bin audit [ROOT] [--json FILE]`.
//!
//! Parses the production sources under ROOT (default: this workspace)
//! into an item-level model and runs the interprocedural passes in
//! [`flsa_check::audit`]: R8 panic-reachability over the DP/kernel call
//! graph, R9 feature-detection dominance for `#[target_feature]` call
//! sites, and R10 overflow certification of the DP recurrence. With
//! `--json FILE` the derived overflow certificate (plus the finding
//! count) is written as machine-readable JSON for the CI artifact.
//!
//! Exit codes mirror the lint: 0 clean, 1 findings, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => {
                eprintln!("usage: audit [WORKSPACE_ROOT] [--json FILE]");
                eprintln!("semantic workspace analysis: R8 panic-reachability,");
                eprintln!("R9 feature-detection dominance, R10 overflow certification.");
                eprintln!("--json FILE  write the overflow certificate as JSON");
                return ExitCode::SUCCESS;
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("audit: --json requires a file path");
                        return ExitCode::from(2);
                    }
                }
            }
            flag if flag.starts_with('-') => {
                eprintln!("audit: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path if root.is_none() => root = Some(PathBuf::from(path)),
            extra => {
                eprintln!("audit: unexpected argument `{extra}` (try --help)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let root = root.unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let report = match flsa_check::audit::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: cannot read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    if let Some(path) = json {
        let doc = report.certificate.to_json(report.findings.len());
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("audit: cannot write certificate {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("audit: certificate written to {}", path.display());
    }
    let cert = &report.certificate;
    println!(
        "audit: certified i32-safe span m+n <= {} (S={}, G={}, C+G={})",
        cert.max_span, cert.sub_abs_max, cert.gap_abs_max, cert.unit_cost
    );
    if report.findings.is_empty() {
        println!("audit: workspace clean (R8 panic-reachability, R9 detection-dominance, R10 overflow-cert)");
        ExitCode::SUCCESS
    } else {
        println!("audit: {} finding(s)", report.findings.len());
        ExitCode::FAILURE
    }
}

//! Workspace lint driver: `cargo run -p flsa-check --bin lint [ROOT]`.
//!
//! Scans the production sources under ROOT (default: this workspace)
//! with the rules in [`flsa_check::lint`] and exits nonzero when any
//! finding is reported, so CI can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    if matches!(arg.as_deref(), Some("-h" | "--help")) {
        eprintln!("usage: lint [WORKSPACE_ROOT]");
        eprintln!("checks SAFETY comments, panic-free DP hot kernels,");
        eprintln!("justified Ordering::Relaxed, and forbid(unsafe_code).");
        return ExitCode::SUCCESS;
    }
    let root = arg
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let sources = match flsa_check::lint::collect_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lint: cannot read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if sources.is_empty() {
        eprintln!("lint: no sources found under {}", root.display());
        return ExitCode::from(2);
    }

    let findings = flsa_check::lint::lint_sources(&sources);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("lint: {} files clean", sources.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "lint: {} finding(s) in {} files scanned",
            findings.len(),
            sources.len()
        );
        ExitCode::FAILURE
    }
}

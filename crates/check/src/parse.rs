//! Item-level model of the workspace sources for the semantic audit.
//!
//! A small in-repo Rust parser — not a full grammar, but enough structure
//! for interprocedural analysis: it tokenizes the lexed code (strings
//! blanked, comments stripped by [`crate::lint`]'s line lexer) and
//! recovers, per file:
//!
//! * `fn` items with name, declaration line, body extent, `pub`/`unsafe`
//!   modifiers, `self` parameter, enclosing `impl` target type, and any
//!   `#[target_feature(enable = "…")]` attributes;
//! * call sites (free/path calls and `.method(` calls) and macro
//!   invocations inside each body;
//! * slice-index expressions (`expr[…]`), struct-literal type names
//!   (`Type { … }`), and `Type::Variant` path mentions;
//! * `is_x86_feature_detected!("…")` features and quoted
//!   `"FLSA_KERNEL_FORCE"` mentions per body.
//!
//! The model is deliberately conservative where Rust is ambiguous: name
//! resolution is by identifier (the audit passes over-approximate the
//! call graph), struct patterns count as struct literals, and attribute
//! lines are skipped wholesale so `#[cfg(…)]` arguments never register
//! as calls. That direction of error only ever *adds* edges and checks,
//! which is the safe side for R8/R9.

use crate::lint::{first_quoted, is_ident_char, lex, test_region_start, Line};
use std::collections::BTreeSet;

/// One call site inside a fn body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name: the last path segment for `a::b::f(…)`, the method
    /// name for `recv.f(…)`.
    pub name: String,
    /// 1-based source line.
    pub line: usize,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
}

/// One parsed `fn` item.
#[derive(Clone, Debug, Default)]
pub struct FnItem {
    /// Workspace-relative path of the defining file.
    pub file: String,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 0-based line range of the body, inclusive (empty for `fn …;`).
    pub body_start: usize,
    pub body_end: usize,
    /// Target type of the enclosing `impl` block, if any (for
    /// `impl Trait for Type`, the `Type`).
    pub self_type: Option<String>,
    pub is_unsafe: bool,
    pub is_pub: bool,
    pub has_self_param: bool,
    /// Features from `#[target_feature(enable = "…")]` attributes
    /// directly above the declaration.
    pub target_features: Vec<String>,
    /// Declared at or after the file's `#[cfg(test)]` region.
    pub in_test_region: bool,
    pub calls: Vec<CallSite>,
    /// Macro invocation names (`!` stripped).
    pub macros: Vec<CallSite>,
    /// 1-based lines containing a slice-index expression.
    pub index_lines: Vec<usize>,
    /// Struct-literal type names appearing in the body (`Type { … }`,
    /// including struct patterns — conservative by design).
    pub struct_literals: BTreeSet<String>,
    /// `Type::Variant` path mentions (both idents capitalized).
    pub variants: BTreeSet<String>,
    /// Features checked via `is_x86_feature_detected!("…")` in the body.
    pub detects: BTreeSet<String>,
    /// Body mentions the `"FLSA_KERNEL_FORCE"` env gate as a string
    /// literal (quoted in the raw source, so comments don't count).
    pub mentions_force_gate: bool,
}

impl FnItem {
    /// 1-based body line range for reporting.
    pub fn body_lines(&self) -> std::ops::RangeInclusive<usize> {
        self.body_start + 1..=self.body_end + 1
    }
}

/// The whole workspace, parsed.
#[derive(Debug, Default)]
pub struct Model {
    pub fns: Vec<FnItem>,
    /// Per-file lexed lines, kept for the passes' line-level checks
    /// (panic tokens, markers, match-arm guards).
    pub(crate) files: Vec<(String, Vec<Line>)>,
}

impl Model {
    /// Parses a set of `(relative path, contents)` sources.
    pub fn parse(files: &[(String, String)]) -> Model {
        let mut model = Model::default();
        for (rel, text) in files {
            parse_file(rel, text, &mut model);
        }
        model
    }

    /// Lexed lines of `file`, if it is part of the model.
    pub(crate) fn lines_of(&self, file: &str) -> Option<&[Line]> {
        self.files
            .iter()
            .find(|(f, _)| f == file)
            .map(|(_, l)| l.as_slice())
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    /// Single punctuation character; numbers are dropped entirely.
    P(char),
}

/// Tokenizes the lexed code of one file into `(line_idx, token)` pairs.
/// Attribute lines (`#[…]` / `#![…]`) are skipped so their arguments
/// never masquerade as calls or index expressions.
fn tokenize(lines: &[Line]) -> Vec<(usize, Tok)> {
    let mut toks = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        if code.starts_with("#[") || code.starts_with("#![") {
            continue;
        }
        let b: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                toks.push((idx, Tok::Ident(b[start..i].iter().collect())));
            } else if c.is_ascii_digit() {
                // Number literal (incl. suffixes like `0u8`); dropped.
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
            } else {
                toks.push((idx, Tok::P(c)));
                i += 1;
            }
        }
    }
    toks
}

/// Keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "move", "as", "where",
    "impl", "dyn", "break", "continue", "else", "unsafe", "pub", "use", "mod", "crate", "super",
    "ref", "mut", "box", "static", "const", "extern", "async", "await", "struct", "enum", "trait",
    "type", "union",
];

/// `fn` modifiers scanned backwards from the `fn` keyword.
const FN_MODIFIERS: &[&str] = &["pub", "unsafe", "const", "extern", "async"];

/// Keywords that exclude a following `Ident {` from struct-literal
/// detection (`impl Kernel {`, `struct Foo {`, …).
const NON_LITERAL_PRECEDERS: &[&str] = &[
    "impl", "for", "struct", "enum", "union", "trait", "mod", "use",
];

struct FileParser<'a> {
    rel: &'a str,
    raw: Vec<&'a str>,
    lines: &'a [Line],
    toks: Vec<(usize, Tok)>,
    test_start: usize,
}

fn parse_file(rel: &str, text: &str, model: &mut Model) {
    let lines = lex(text);
    let toks = tokenize(&lines);
    let p = FileParser {
        rel,
        raw: text.lines().collect(),
        lines: &lines,
        toks,
        test_start: test_region_start(&lines),
    };
    p.run(model);
    model.files.push((rel.to_string(), lines));
}

impl<'a> FileParser<'a> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.toks.get(i) {
            Some((_, Tok::Ident(s))) => Some(s),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize) -> Option<char> {
        match self.toks.get(i) {
            Some((_, Tok::P(c))) => Some(*c),
            _ => None,
        }
    }

    fn line_of(&self, i: usize) -> usize {
        self.toks.get(i).map_or(0, |(l, _)| *l)
    }

    /// `::` at token positions `i`, `i+1`.
    fn is_path_sep(&self, i: usize) -> bool {
        self.punct_at(i) == Some(':') && self.punct_at(i + 1) == Some(':')
    }

    /// Features enabled by `#[target_feature(enable = "…")]` attribute
    /// lines directly above `decl_idx` (skipping other attributes,
    /// comment-only and blank lines).
    fn features_above(&self, decl_idx: usize) -> Vec<String> {
        let mut feats = Vec::new();
        let mut j = decl_idx;
        while j > 0 {
            j -= 1;
            let code = self.lines[j].code.trim();
            if code.is_empty() {
                // Comment-only or genuinely blank line: keep scanning.
                continue;
            }
            if !(code.starts_with("#[") || code.starts_with("#![")) {
                break;
            }
            if code.contains("target_feature") {
                if let Some(p) = self.raw[j].find("enable") {
                    if let Some(csv) = first_quoted(&self.raw[j][p..]) {
                        for f in csv.split(',').map(str::trim).filter(|f| !f.is_empty()) {
                            feats.push(f.to_string());
                        }
                    }
                }
            }
        }
        feats.sort();
        feats.dedup();
        feats
    }

    /// Main parse loop: tracks brace depth plus `impl` and `fn` stacks,
    /// and attributes body-level facts to the innermost open fn.
    fn run(&self, model: &mut Model) {
        let mut depth: usize = 0;
        // (target type, depth inside the impl body)
        let mut impl_stack: Vec<(String, usize)> = Vec::new();
        // (index into out, depth inside the fn body)
        let mut fn_stack: Vec<(usize, usize)> = Vec::new();
        let mut pending_impl: Option<String> = None;
        let mut out: Vec<FnItem> = Vec::new();

        let mut i = 0;
        while i < self.toks.len() {
            match &self.toks[i].1 {
                Tok::P('{') => {
                    depth += 1;
                    if let Some(ty) = pending_impl.take() {
                        impl_stack.push((ty, depth));
                    }
                    i += 1;
                }
                Tok::P('}') => {
                    if let Some(&(fi, d)) = fn_stack.last() {
                        if d == depth {
                            out[fi].body_end = self.line_of(i);
                            fn_stack.pop();
                        }
                    }
                    if let Some(&(_, d)) = impl_stack.last() {
                        if d == depth {
                            impl_stack.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                    i += 1;
                }
                Tok::Ident(w) if w == "impl" && self.ident_at(i + 1) != Some("Trait") => {
                    // `impl<T> Trait for Type {` / `impl Type {`: recover
                    // the target type, leave `i` on the opening brace.
                    let (ty, next) = self.parse_impl_header(i + 1);
                    pending_impl = ty;
                    i = next;
                }
                Tok::Ident(w) if w == "fn" => {
                    if let Some((item, next, opened)) = self.parse_fn(i) {
                        let mut item = item;
                        item.self_type = impl_stack.last().map(|(t, _)| t.clone());
                        out.push(item);
                        if opened {
                            depth += 1;
                            fn_stack.push((out.len() - 1, depth));
                        }
                        i = next;
                    } else {
                        i += 1;
                    }
                }
                Tok::Ident(w) => {
                    self.body_ident(i, w, fn_stack.last().map(|&(fi, _)| fi), &mut out);
                    i += 1;
                }
                Tok::P('[') => {
                    if let Some(&(fi, _)) = fn_stack.last() {
                        // Index expression: `expr[` where expr ends in an
                        // identifier, `]` or `)`.
                        let indexes = match self.toks.get(i.wrapping_sub(1)) {
                            Some((_, Tok::Ident(id))) => !NON_CALL_KEYWORDS.contains(&id.as_str()),
                            Some((_, Tok::P(']'))) | Some((_, Tok::P(')'))) => true,
                            _ => false,
                        };
                        if indexes {
                            let ln = self.line_of(i) + 1;
                            if out[fi].index_lines.last() != Some(&ln) {
                                out[fi].index_lines.push(ln);
                            }
                        }
                    }
                    i += 1;
                }
                Tok::P(_) => i += 1,
            }
        }
        // Unterminated bodies (truncated file): close at EOF.
        let last_line = self.lines.len().saturating_sub(1);
        for &(fi, _) in &fn_stack {
            out[fi].body_end = last_line;
        }
        model.fns.extend(out);
    }

    /// Parses an `impl` header starting after the `impl` keyword.
    /// Returns the target type and the token index of the opening `{`
    /// (or of whatever stopped the scan).
    fn parse_impl_header(&self, mut i: usize) -> (Option<String>, usize) {
        let mut last_type: Option<String> = None;
        let mut after_for = false;
        while i < self.toks.len() {
            match &self.toks[i].1 {
                Tok::P('{') | Tok::P(';') => break,
                Tok::P('<') => {
                    // Skip balanced generics, tolerating `->` inside.
                    let mut angle = 1usize;
                    i += 1;
                    while i < self.toks.len() && angle > 0 {
                        match self.punct_at(i) {
                            Some('<') => angle += 1,
                            Some('>') if self.punct_at(i.wrapping_sub(1)) != Some('-') => {
                                angle -= 1
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
                Tok::Ident(w) if w == "for" => {
                    after_for = true;
                    last_type = None;
                    i += 1;
                }
                Tok::Ident(w) if w == "where" => {
                    // `impl … where …: no type info past this point.
                    i += 1;
                }
                Tok::Ident(w) => {
                    // Keep the last path segment seen; `a::b::Type`
                    // overwrites as segments go by.
                    if last_type.is_none() || self.is_path_sep(i.wrapping_sub(2)) || !after_for {
                        last_type = Some(w.clone());
                    }
                    i += 1;
                }
                Tok::P(_) => i += 1,
            }
        }
        (last_type, i)
    }

    /// Parses a `fn` item starting at the `fn` keyword token.
    /// Returns `(item, next token index, body_opened)`; when
    /// `body_opened` the index is just past the `{` and the caller owns
    /// pushing the fn onto its stack.
    fn parse_fn(&self, fn_idx: usize) -> Option<(FnItem, usize, bool)> {
        let name = self.ident_at(fn_idx + 1)?.to_string();
        let decl_line = self.line_of(fn_idx);

        // Modifiers: walk backwards over `pub`, `pub(crate)`, `unsafe`, …
        let mut is_pub = false;
        let mut is_unsafe = false;
        let mut j = fn_idx;
        while j > 0 {
            j -= 1;
            match &self.toks[j].1 {
                Tok::Ident(w) if FN_MODIFIERS.contains(&w.as_str()) => {
                    is_pub |= w == "pub";
                    is_unsafe |= w == "unsafe";
                }
                Tok::Ident(w) if w == "crate" || w == "super" || w == "in" || w == "self" => {}
                Tok::P('(') | Tok::P(')') => {}
                _ => break,
            }
        }

        // Signature: optional generics, then the argument parens.
        let mut i = fn_idx + 2;
        if self.punct_at(i) == Some('<') {
            let mut angle = 1usize;
            i += 1;
            while i < self.toks.len() && angle > 0 {
                match self.punct_at(i) {
                    Some('<') => angle += 1,
                    Some('>') if self.punct_at(i.wrapping_sub(1)) != Some('-') => angle -= 1,
                    _ => {}
                }
                i += 1;
            }
        }
        let mut has_self_param = false;
        if self.punct_at(i) == Some('(') {
            let mut paren = 1usize;
            i += 1;
            while i < self.toks.len() && paren > 0 {
                match &self.toks[i].1 {
                    Tok::P('(') => paren += 1,
                    Tok::P(')') => paren -= 1,
                    Tok::Ident(w) if w == "self" && paren == 1 => has_self_param = true,
                    _ => {}
                }
                i += 1;
            }
        }
        // Return type / where clause: skip to the body `{` or a `;`.
        let mut opened = false;
        while i < self.toks.len() {
            match self.punct_at(i) {
                Some('{') => {
                    opened = true;
                    i += 1;
                    break;
                }
                Some(';') => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }

        let body_line = if opened {
            self.line_of(i.saturating_sub(1))
        } else {
            decl_line
        };
        Some((
            FnItem {
                file: self.rel.to_string(),
                name,
                decl_line: decl_line + 1,
                body_start: body_line,
                body_end: body_line,
                is_unsafe,
                is_pub,
                has_self_param,
                target_features: self.features_above(decl_line),
                in_test_region: decl_line >= self.test_start,
                ..FnItem::default()
            },
            i,
            opened,
        ))
    }

    /// Handles an identifier token inside (possibly) a fn body: call /
    /// macro / variant / struct-literal / detection extraction.
    fn body_ident(&self, i: usize, w: &str, fn_of: Option<usize>, out: &mut [FnItem]) {
        let Some(fi) = fn_of else { return };
        let item = &mut out[fi];
        let line = self.line_of(i);
        let lineno = line + 1;
        let prev_dot = self.punct_at(i.wrapping_sub(1)) == Some('.');
        let kw = NON_CALL_KEYWORDS.contains(&w);

        match self.punct_at(i + 1) {
            Some('!') => {
                if w == "is_x86_feature_detected" {
                    if let Some(p) = self.raw[line].find("is_x86_feature_detected") {
                        if let Some(feat) = first_quoted(&self.raw[line][p..]) {
                            item.detects.insert(feat.to_string());
                        }
                    }
                }
                item.macros.push(CallSite {
                    name: w.to_string(),
                    line: lineno,
                    method: false,
                });
            }
            Some('(') if !kw => {
                item.calls.push(CallSite {
                    name: w.to_string(),
                    line: lineno,
                    method: prev_dot,
                });
            }
            Some(':') if self.is_path_sep(i + 1) => {
                // `w::next` — record uppercase variant pairs; turbofish
                // calls (`collect::<T>()`) are attributed to the final
                // segment when the loop reaches it.
                if let Some(next) = self.ident_at(i + 3) {
                    let w_up = w.chars().next().is_some_and(|c| c.is_uppercase());
                    let n_up = next.chars().next().is_some_and(|c| c.is_uppercase());
                    if w_up && n_up {
                        item.variants.insert(format!("{w}::{next}"));
                    }
                }
            }
            Some('{') if !kw => {
                let starts_upper = w.chars().next().is_some_and(|c| c.is_uppercase());
                let prev_excludes = match self.ident_at(i.wrapping_sub(1)) {
                    Some(p) => NON_LITERAL_PRECEDERS.contains(&p),
                    None => false,
                };
                // `Path::Variant { … }` is an enum-variant literal, not
                // a plain struct literal of `Variant`.
                let path_qualified = self.is_path_sep(i.wrapping_sub(2));
                if starts_upper && !prev_excludes && !prev_dot && !path_qualified {
                    item.struct_literals.insert(w.to_string());
                }
            }
            _ => {}
        }
        if w == "Self" && self.punct_at(i + 1) == Some('{') {
            item.struct_literals.insert("Self".to_string());
        }
        // Quoted env-gate mention on this line (string literal in the
        // raw source — comments rarely quote it).
        if !item.mentions_force_gate && self.raw[line].contains("\"FLSA_KERNEL_FORCE\"") {
            item.mentions_force_gate = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(rel: &str, text: &str) -> Model {
        Model::parse(&[(rel.to_string(), text.to_string())])
    }

    fn find<'m>(m: &'m Model, name: &str) -> &'m FnItem {
        m.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn `{name}` not parsed"))
    }

    #[test]
    fn parses_fn_modifiers_and_impl_types() {
        let src = "\
pub struct Kernel { backend: u8 }
impl Kernel {
    pub(crate) fn try_new(b: u8) -> Option<Kernel> {
        Some(Kernel { backend: b })
    }
    pub fn run(&self) -> i32 { self.step() }
    unsafe fn raw(&mut self) {}
}
impl Default for Kernel {
    fn default() -> Kernel { Kernel::scalar() }
}
fn free() {}
";
        let m = parse_one("crates/x/src/lib.rs", src);
        let t = find(&m, "try_new");
        assert_eq!(t.self_type.as_deref(), Some("Kernel"));
        assert!(t.is_pub && !t.is_unsafe && !t.has_self_param);
        assert!(t.struct_literals.contains("Kernel"));
        let r = find(&m, "run");
        assert!(r.has_self_param && r.is_pub);
        assert_eq!(r.calls.len(), 1);
        assert!(r.calls[0].method && r.calls[0].name == "step");
        assert!(find(&m, "raw").is_unsafe);
        let d = find(&m, "default");
        assert_eq!(d.self_type.as_deref(), Some("Kernel"));
        assert!(d.calls.iter().any(|c| c.name == "scalar" && !c.method));
        assert_eq!(find(&m, "free").self_type, None);
    }

    #[test]
    fn multi_line_signatures_and_bodies() {
        let src = "\
pub fn fill(
    top: &[i32],
    left: &[i32],
) -> Vec<i32> {
    let mut v = top.to_vec();
    helper(&mut v);
    v
}
fn helper(v: &mut Vec<i32>) { v.push(0); }
";
        let m = parse_one("crates/x/src/lib.rs", src);
        let f = find(&m, "fill");
        assert_eq!(f.decl_line, 1);
        assert_eq!(f.body_lines(), 4..=8);
        assert!(f.calls.iter().any(|c| c.name == "helper"));
        assert!(f.calls.iter().any(|c| c.name == "to_vec" && c.method));
    }

    #[test]
    fn target_features_detection_and_force_gate() {
        let src = "\
/// # Safety
/// ISA proven by caller.
#[inline]
#[target_feature(enable = \"avx2\")]
pub(crate) unsafe fn row_avx2(x: &mut [i32]) { x[0] = 1; }

pub fn dispatch(x: &mut [i32]) {
    if is_x86_feature_detected!(\"avx2\") {
        // SAFETY: detected above.
        unsafe { row_avx2(x) }
    }
}
pub fn forced() -> Option<String> { std::env::var(\"FLSA_KERNEL_FORCE\").ok() }
";
        let m = parse_one("crates/dp/src/simd/x86.rs", src);
        let k = find(&m, "row_avx2");
        assert_eq!(k.target_features, vec!["avx2"]);
        assert!(k.is_unsafe);
        assert_eq!(k.index_lines, vec![5]);
        let d = find(&m, "dispatch");
        assert!(d.detects.contains("avx2"));
        assert!(d.calls.iter().any(|c| c.name == "row_avx2" && !c.method));
        assert!(find(&m, "forced").mentions_force_gate);
    }

    #[test]
    fn variants_indexes_and_test_region() {
        let src = "\
pub fn pick(b: Backend, v: &[i32]) -> i32 {
    match b {
        Backend::Fast => v[0],
        Backend::Slow => v.get(1).copied().unwrap_or(0),
    }
}
#[cfg(test)]
mod tests {
    fn in_tests() { helper(); }
}
";
        let m = parse_one("crates/x/src/lib.rs", src);
        let p = find(&m, "pick");
        assert!(p.variants.contains("Backend::Fast"));
        assert!(p.variants.contains("Backend::Slow"));
        assert_eq!(p.index_lines, vec![3]);
        assert!(!p.in_test_region);
        assert!(find(&m, "in_tests").in_test_region);
        // `match b {` must not register a struct literal or a call.
        assert!(!p.struct_literals.contains("b"));
        assert!(!p.calls.iter().any(|c| c.name == "match"));
    }

    #[test]
    fn attribute_lines_do_not_register_calls_or_indexes() {
        let src = "\
pub fn f() {
    #[cfg(target_arch = \"x86_64\")]
    inner();
}
";
        let m = parse_one("crates/x/src/lib.rs", src);
        let f = find(&m, "f");
        assert!(!f.calls.iter().any(|c| c.name == "cfg"));
        assert!(f.calls.iter().any(|c| c.name == "inner"));
        assert!(f.index_lines.is_empty());
    }

    #[test]
    fn trait_method_declarations_parse_without_bodies() {
        let src = "\
pub trait Sink {
    fn save(&mut self, blob: &[u8]) -> bool;
    fn flush(&mut self) { self.save(&[]); }
}
";
        let m = parse_one("crates/x/src/lib.rs", src);
        let s = find(&m, "save");
        assert!(s.has_self_param);
        let f = find(&m, "flush");
        assert!(f.calls.iter().any(|c| c.name == "save" && c.method));
    }
}

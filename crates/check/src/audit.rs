//! Semantic workspace audit: three interprocedural passes over the
//! [`crate::parse`] model, strengthening the textual lint rules into
//! structural guarantees.
//!
//! * **R8-panic-reachability** — builds the workspace call graph,
//!   computes the closure reachable from the DP/kernel entry points
//!   (public fns in the R2 hot set, the solver recursion, wavefront
//!   tile execution), and flags any `panic!`/`unwrap`/`expect` inside a
//!   reachable fn of a library crate, reporting the offending call
//!   chain. Intentional invariant panics keep the lint's documented
//!   escape hatches (`// flsa-check: allow(panic)` /
//!   `allow(unwrap)` with a justification). Public fns in hot files
//!   must additionally guard their slice-index expressions with a
//!   release-mode bounds check (`check_boundary` or an `assert!`
//!   family call — `debug_assert!` compiles out exactly where the
//!   optimized kernels run, so it does not count).
//! * **R9-detection-dominance** — proves every call site of a
//!   `#[target_feature]` fn is dominated by a CPU-feature proof, in
//!   one of three tiers: (a) the caller itself carries a superset
//!   `#[target_feature]`, (b) the caller's body checks
//!   `is_x86_feature_detected!` for every needed feature or consults
//!   the `"FLSA_KERNEL_FORCE"` gate, or (c) the caller is a method
//!   whose receiver type admits the guarded variant only through
//!   constructors that prove the features (constructor-admission: a
//!   constructor is any fn building the type with a struct literal;
//!   it is admissible if its transitive call closure detects the
//!   features, consults the force gate, or never names the guarding
//!   enum variant at all).
//! * **R10-overflow-cert** — interval analysis of the DP recurrence:
//!   from the workspace's substitution extrema and gap penalties it
//!   derives the worst-case `i32` score magnitude as a function of the
//!   sequence span (`m + n`), emits a machine-readable certificate,
//!   and checks that the alignment entry points (`align_opts`,
//!   `align_resume`, `align_traced`) reach the runtime overflow guard
//!   (`max_safe_span` / `validate_run`) on their call graph.
//!
//! Name resolution is conservative (identifier-based): the graph
//! over-approximates, so R8 reachability and R9 constructor closures
//! can only err toward *more* checking, never less.

use crate::lint::{
    collect_sources, has_marker, is_hot, Finding, ALLOW_PANIC, ALLOW_UNWRAP, PANIC_TOKENS,
    UNWRAP_EXEMPT_PREFIXES,
};
use crate::parse::{FnItem, Model};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::path::Path;

/// Solver fns treated as DP entry points (the linear-space recursion).
const SOLVER_ENTRIES: &[&str] = &[
    "run",
    "resume",
    "drive",
    "base_case",
    "fill_grid",
    "fill_grid_sequential",
];
const SOLVER_FILE: &str = "crates/core/src/solver.rs";

/// Wavefront fns treated as tile-execution entry points.
const WAVEFRONT_ENTRIES: &[&str] = &["run_wavefront", "run_wavefront_traced"];
const WAVEFRONT_FILE: &str = "crates/wavefront/src/executor.rs";

/// Alignment entry points that must reach the overflow guard (R10).
const OVERFLOW_GUARDED_ENTRIES: &[&str] = &["align_opts", "align_resume", "align_traced"];

/// Fns recognized as the runtime overflow guard (R10).
const OVERFLOW_GUARDS: &[&str] = &["max_safe_span", "validate_run"];

/// Release-mode bounds guards accepted for hot-fn indexing (R8).
const RELEASE_ASSERTS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// The derived overflow certificate (R10), exported as JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Largest |substitution score| found in the baked tables and
    /// `match_mismatch(…)` literals.
    pub sub_abs_max: i64,
    /// Largest |gap penalty| found at `GapModel::linear/affine(…)`
    /// literals (affine counts `|open| + |extend|` per cell).
    pub gap_abs_max: i64,
    /// Per-unit-of-span cell growth: `C = max(S, G)`.
    pub cell_coeff: i64,
    /// Per-unit-of-span intermediate growth including the two-pass
    /// u-domain shift: `C + G`.
    pub unit_cost: i64,
    /// Certified span bound: any `m + n <= max_span` keeps every DP
    /// value and u-domain intermediate within `i32`.
    pub max_span: u64,
    /// Square-input convenience bound: `max_span / 2`.
    pub max_len_square: u64,
    /// Entry fn -> overflow guard reachable on its call graph.
    pub guards: Vec<(String, bool)>,
}

impl Certificate {
    /// Hand-rolled JSON (the workspace vendors no serde).
    pub fn to_json(&self, findings: usize) -> String {
        let mut guards = String::new();
        for (i, (name, ok)) in self.guards.iter().enumerate() {
            if i > 0 {
                guards.push_str(", ");
            }
            guards.push_str(&format!("\"{name}\": {ok}"));
        }
        format!(
            "{{\n  \"version\": 1,\n  \"rule\": \"R10-overflow-cert\",\n  \
             \"sub_abs_max\": {},\n  \"gap_abs_max\": {},\n  \"cell_coeff\": {},\n  \
             \"unit_cost\": {},\n  \"i32_max\": {},\n  \"max_span\": {},\n  \
             \"max_len_square\": {},\n  \"formula\": \"|H(i,j)| <= (i+j)*max(S,G); \
             two-pass u-domain intermediates <= span*(C+G) + G; \
             max_span = (2^31-1)/(C+G) - 1\",\n  \"guards\": {{{}}},\n  \
             \"findings\": {}\n}}\n",
            self.sub_abs_max,
            self.gap_abs_max,
            self.cell_coeff,
            self.unit_cost,
            i32::MAX,
            self.max_span,
            self.max_len_square,
            guards,
            findings,
        )
    }
}

/// Result of a full audit run.
#[derive(Debug)]
pub struct AuditReport {
    pub findings: Vec<Finding>,
    pub certificate: Certificate,
}

/// Audits a set of `(relative path, contents)` sources as one
/// workspace. Pure core — [`audit_workspace`] feeds it from disk,
/// tests feed it inline strings.
pub fn audit_sources(files: &[(String, String)]) -> AuditReport {
    let model = Model::parse(files);
    let graph = Graph::new(&model);
    let mut findings = Vec::new();
    r8_panic_reachability(&model, &graph, &mut findings);
    r9_detection_dominance(&model, &graph, &mut findings);
    let certificate = r10_overflow_cert(&model, &graph, files, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    AuditReport {
        findings,
        certificate,
    }
}

/// Audits the workspace rooted at `root` from disk.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    Ok(audit_sources(&collect_sources(root)?))
}

/// The call graph: conservative identifier-based resolution over the
/// non-test fns of the model.
struct Graph<'m> {
    model: &'m Model,
    /// name -> indices of non-test fns with that name.
    by_name: BTreeMap<&'m str, Vec<usize>>,
}

impl<'m> Graph<'m> {
    fn new(model: &'m Model) -> Self {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in model.fns.iter().enumerate() {
            if !f.in_test_region {
                by_name.entry(&f.name).or_default().push(i);
            }
        }
        Graph { model, by_name }
    }

    fn fns(&self) -> &[FnItem] {
        &self.model.fns
    }

    /// Direct callees of fn `fi` (deduplicated, deterministic order).
    fn callees(&self, fi: usize) -> Vec<usize> {
        let mut out = BTreeSet::new();
        for call in &self.model.fns[fi].calls {
            if let Some(cands) = self.by_name.get(call.name.as_str()) {
                for &c in cands {
                    // Method calls only resolve to fns taking `self`.
                    if !call.method || self.model.fns[c].has_self_param {
                        out.insert(c);
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// BFS closure from `roots`; records the call-chain parent of each
    /// newly reached fn for chain reporting.
    fn closure(&self, roots: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(None);
                queue.push_back(r);
            }
        }
        while let Some(fi) = queue.pop_front() {
            for c in self.callees(fi) {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(c) {
                    e.insert(Some(fi));
                    queue.push_back(c);
                }
            }
        }
        parent
    }

    /// `entry -> … -> fi` chain rendered from a closure's parent map.
    fn chain(&self, parent: &BTreeMap<usize, Option<usize>>, fi: usize) -> String {
        let mut names = vec![self.fns()[fi].name.clone()];
        let mut cur = fi;
        while let Some(Some(p)) = parent.get(&cur) {
            names.push(self.fns()[*p].name.clone());
            cur = *p;
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// True when `rel` belongs to a library crate (R8's universe).
fn is_library(rel: &str) -> bool {
    !UNWRAP_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// Like [`has_marker`], but also accepts the marker anywhere in the
/// contiguous comment block directly above the line — a justification
/// that wraps onto several comment lines still counts.
fn has_marker_block(lines: &[crate::lint::Line], idx: usize, marker: &str) -> bool {
    if has_marker(lines, idx, marker) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if !l.code.trim().is_empty() || l.comment.trim().is_empty() {
            return false;
        }
        if l.comment.contains(marker) {
            return true;
        }
    }
    false
}

/// DP/kernel entry points for R8 reachability.
fn entry_points(model: &Model) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, f) in model.fns.iter().enumerate() {
        if f.in_test_region {
            continue;
        }
        let named = |file: &str, names: &[&str]| f.file == file && names.contains(&f.name.as_str());
        if (is_hot(&f.file) && f.is_pub)
            || named(SOLVER_FILE, SOLVER_ENTRIES)
            || named(WAVEFRONT_FILE, WAVEFRONT_ENTRIES)
        {
            out.push(i);
        }
    }
    out
}

fn r8_panic_reachability(model: &Model, graph: &Graph<'_>, findings: &mut Vec<Finding>) {
    let entries = entry_points(model);
    let reach = graph.closure(&entries);
    let mut reported: BTreeSet<(String, usize)> = BTreeSet::new();

    for &fi in reach.keys() {
        let f = &graph.fns()[fi];
        if !is_library(&f.file) || f.in_test_region {
            continue;
        }
        let Some(lines) = model.lines_of(&f.file) else {
            continue;
        };
        let chain = graph.chain(&reach, fi);
        for idx in f.body_start..=f.body_end.min(lines.len().saturating_sub(1)) {
            for tok in PANIC_TOKENS {
                if lines[idx].code.contains(tok)
                    && !has_marker_block(lines, idx, ALLOW_PANIC)
                    && !has_marker_block(lines, idx, ALLOW_UNWRAP)
                    && reported.insert((f.file.clone(), idx + 1))
                {
                    findings.push(Finding {
                        file: f.file.clone(),
                        line: idx + 1,
                        rule: "R8-panic-reachability",
                        message: format!(
                            "`{tok}` is reachable from a DP/kernel entry point (call chain: \
                             {chain}); return a Result or justify with `// {ALLOW_PANIC}`"
                        ),
                    });
                }
            }
        }
        // Public hot-file fns must bounds-guard their indexing in
        // release builds before the optimizer sees the loop.
        if is_hot(&f.file) && f.is_pub && !f.index_lines.is_empty() {
            let guarded = f.calls.iter().any(|c| c.name == "check_boundary")
                || f.macros
                    .iter()
                    .any(|m| RELEASE_ASSERTS.contains(&m.name.as_str()));
            if !guarded {
                findings.push(Finding {
                    file: f.file.clone(),
                    line: f.index_lines[0],
                    rule: "R8-panic-reachability",
                    message: format!(
                        "pub hot-kernel fn `{}` has {} slice-index expression(s) but no \
                         release-mode bounds guard (`check_boundary` or `assert!` family; \
                         `debug_assert!` compiles out in release)",
                        f.name,
                        f.index_lines.len()
                    ),
                });
            }
        }
    }
}

/// `Type::Variant` mentions (both segments capitalized) in one code line.
fn variants_in(code: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let b: Vec<char> = code.chars().collect();
    let mut i = 0;
    let ident_from = |b: &[char], mut j: usize| -> (String, usize) {
        let s = j;
        while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        (b[s..j].iter().collect(), j)
    };
    while i < b.len() {
        if b[i].is_alphabetic()
            && b[i].is_uppercase()
            && (i == 0 || !crate::lint::is_ident_char(b[i - 1]))
        {
            let (first, j) = ident_from(&b, i);
            if j + 1 < b.len() && b[j] == ':' && b[j + 1] == ':' {
                let (second, k) = ident_from(&b, j + 2);
                if second.chars().next().is_some_and(|c| c.is_uppercase()) {
                    out.insert(format!("{first}::{second}"));
                }
                i = k;
                continue;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

fn r9_detection_dominance(model: &Model, graph: &Graph<'_>, findings: &mut Vec<Finding>) {
    // Kernel fns: carry #[target_feature(enable = "…")].
    let kernels: Vec<usize> = model
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.target_features.is_empty() && !f.in_test_region)
        .map(|(i, _)| i)
        .collect();
    if kernels.is_empty() {
        return;
    }
    let mut closure_cache: BTreeMap<usize, BTreeMap<usize, Option<usize>>> = BTreeMap::new();

    for &ki in &kernels {
        let needed: BTreeSet<&str> = model.fns[ki]
            .target_features
            .iter()
            .map(String::as_str)
            .collect();
        let kname = &model.fns[ki].name;
        for (ci, caller) in model.fns.iter().enumerate() {
            if ci == ki || caller.in_test_region {
                continue;
            }
            let Some(call) = caller
                .calls
                .iter()
                .find(|c| &c.name == kname && (!c.method || model.fns[ki].has_self_param))
            else {
                continue;
            };
            if dominated(model, graph, caller, call.line, &needed, &mut closure_cache) {
                continue;
            }
            findings.push(Finding {
                file: caller.file.clone(),
                line: call.line,
                rule: "R9-detection-dominance",
                message: format!(
                    "call to `#[target_feature(enable = \"{}\")]` fn `{kname}` in `{}` is not \
                     dominated by an `is_x86_feature_detected!` check, the FLSA_KERNEL_FORCE \
                     gate, or a feature-proving constructor",
                    model.fns[ki].target_features.join(","),
                    caller.name
                ),
            });
        }
    }
}

/// The three dominance tiers for one call site (see module docs).
fn dominated(
    model: &Model,
    graph: &Graph<'_>,
    caller: &FnItem,
    call_line: usize,
    needed: &BTreeSet<&str>,
    cache: &mut BTreeMap<usize, BTreeMap<usize, Option<usize>>>,
) -> bool {
    // (a) The caller itself promises a superset ISA.
    let caller_feats: BTreeSet<&str> = caller.target_features.iter().map(String::as_str).collect();
    if needed.iter().all(|f| caller_feats.contains(f)) {
        return true;
    }
    // (b) The caller's own body proves the features or consults the gate.
    if caller.mentions_force_gate || needed.iter().all(|f| caller.detects.contains(*f)) {
        return true;
    }
    // (c) Constructor admission for a guarded method dispatch.
    let (true, Some(ty)) = (caller.has_self_param, caller.self_type.as_deref()) else {
        return false;
    };
    let Some(lines) = model.lines_of(&caller.file) else {
        return false;
    };
    // The match arm guarding this call: nearest `=>` line at or above
    // the call site, still inside the body.
    let mut guards: BTreeSet<String> = BTreeSet::new();
    let mut idx = (call_line - 1).min(lines.len().saturating_sub(1));
    loop {
        let code = &lines[idx].code;
        if code.contains("=>") {
            let pattern = code.split("=>").next().unwrap_or("");
            guards = variants_in(pattern);
            break;
        }
        if idx == caller.body_start || idx == 0 {
            break;
        }
        idx -= 1;
    }
    if guards.is_empty() {
        return false;
    }
    // Every constructor of the receiver type must be admissible.
    let ctors: Vec<usize> = model
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.in_test_region
                && (f.struct_literals.contains(ty)
                    || (f.struct_literals.contains("Self") && f.self_type.as_deref() == Some(ty)))
        })
        .map(|(i, _)| i)
        .collect();
    if ctors.is_empty() {
        return false;
    }
    ctors.iter().all(|&c| {
        let reach = cache
            .entry(c)
            .or_insert_with(|| graph.closure(&[c]))
            .clone();
        let mut detects: BTreeSet<&str> = BTreeSet::new();
        let mut force = false;
        let mut mentions_guard = false;
        for &fi in reach.keys() {
            let f = &model.fns[fi];
            detects.extend(f.detects.iter().map(String::as_str));
            force |= f.mentions_force_gate;
            mentions_guard |= f.variants.iter().any(|v| guards.contains(v));
        }
        force || needed.iter().all(|f| detects.contains(*f)) || !mentions_guard
    })
}

/// Integer literals (with sign) in one lexed code line.
fn int_literals(code: &str) -> Vec<i64> {
    let b: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i].is_ascii_digit() && (i == 0 || !crate::lint::is_ident_char(b[i - 1])) {
            let neg = i > 0 && b[i - 1] == '-';
            let mut v: i64 = 0;
            let mut overflow = false;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == '_') {
                if b[i] != '_' {
                    v = match v
                        .checked_mul(10)
                        .and_then(|x| x.checked_add((b[i] as u8 - b'0') as i64))
                    {
                        Some(x) => x,
                        None => {
                            overflow = true;
                            v
                        }
                    };
                }
                i += 1;
            }
            // Skip type suffixes (`-4i32`).
            while i < b.len() && crate::lint::is_ident_char(b[i]) {
                i += 1;
            }
            if !overflow {
                out.push(if neg { -v } else { v });
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Largest |argument| at `prefix(…)` call sites in `code`, capped to
/// the first `max_args` literals after the opening paren.
fn call_arg_extreme(code: &str, prefix: &str, max_args: usize) -> i64 {
    let mut best = 0i64;
    let mut rest = code;
    while let Some(p) = rest.find(prefix) {
        rest = &rest[p + prefix.len()..];
        let args: String = rest.chars().take_while(|c| *c != ')').collect();
        let mut lits = int_literals(&args);
        lits.truncate(max_args);
        // Affine per-cell worst case pays open + extend on one step.
        let sum: i64 = lits.iter().map(|v| v.abs()).sum();
        best = best.max(sum);
    }
    best
}

fn r10_overflow_cert(
    model: &Model,
    graph: &Graph<'_>,
    files: &[(String, String)],
    findings: &mut Vec<Finding>,
) -> Certificate {
    // Substitution extrema: every literal in the baked score tables,
    // plus match/mismatch constructor arguments anywhere.
    let mut sub_abs = 0i64;
    let mut gap_abs = 0i64;
    for (rel, _) in files {
        let Some(lines) = model.lines_of(rel) else {
            continue;
        };
        let is_tables = rel.ends_with("src/tables.rs");
        for line in lines {
            if is_tables {
                sub_abs = int_literals(&line.code)
                    .iter()
                    .map(|v| v.abs())
                    .fold(sub_abs, i64::max);
            }
            sub_abs = sub_abs.max(call_arg_extreme(&line.code, "match_mismatch(", 2));
            gap_abs = gap_abs.max(call_arg_extreme(&line.code, "GapModel::linear(", 1));
            gap_abs = gap_abs.max(call_arg_extreme(&line.code, "GapModel::affine(", 2));
        }
    }
    let s = sub_abs.max(1);
    let g = gap_abs.max(1);
    let c = s.max(g);
    let unit = c + g;
    let max_span = ((i32::MAX as i64) / unit - 1).max(0) as u64;

    // Guard wiring: each alignment entry point must reach the runtime
    // overflow guard on the call graph.
    let mut guards = Vec::new();
    for entry in OVERFLOW_GUARDED_ENTRIES {
        let roots: Vec<usize> = model
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| &f.name == entry && !f.in_test_region)
            .map(|(i, _)| i)
            .collect();
        if roots.is_empty() {
            continue;
        }
        let reach = graph.closure(&roots);
        let wired = reach
            .keys()
            .any(|&fi| OVERFLOW_GUARDS.contains(&model.fns[fi].name.as_str()));
        if !wired {
            let f = &model.fns[roots[0]];
            findings.push(Finding {
                file: f.file.clone(),
                line: f.decl_line,
                rule: "R10-overflow-cert",
                message: format!(
                    "alignment entry point `{entry}` never reaches the overflow guard \
                     (`max_safe_span` / `validate_run`): an accepted input can overflow \
                     i32 scores beyond span {max_span}"
                ),
            });
        }
        guards.push((entry.to_string(), wired));
    }

    Certificate {
        sub_abs_max: s,
        gap_abs_max: g,
        cell_coeff: c,
        unit_cost: unit,
        max_span,
        max_len_square: max_span / 2,
        guards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(files: &[(&str, &str)]) -> AuditReport {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        audit_sources(&owned)
    }

    fn rules(report: &AuditReport) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn r8_flags_panic_two_calls_deep_with_chain() {
        let kernel = "\
pub fn fill_full(top: &[i32]) -> i32 {
    helper(top)
}
fn helper(top: &[i32]) -> i32 { deep(top) }
fn deep(top: &[i32]) -> i32 { top.first().copied().unwrap() }
";
        let r = audit(&[("crates/dp/src/kernel.rs", kernel)]);
        let f: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == "R8-panic-reachability")
            .collect();
        assert_eq!(f.len(), 1, "{:?}", r.findings);
        assert_eq!(f[0].line, 5);
        assert!(
            f[0].message.contains("fill_full -> helper -> deep"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn r8_honors_allow_markers_and_test_regions() {
        let kernel = "\
pub fn fill_full(top: &[i32]) -> i32 { helper(top) }
fn helper(top: &[i32]) -> i32 {
    // flsa-check: allow(panic) -- boundary validated by check_boundary
    top.first().copied().unwrap()
}
#[cfg(test)]
mod tests {
    fn t() { None::<u32>.unwrap(); }
}
";
        let r = audit(&[("crates/dp/src/kernel.rs", kernel)]);
        assert_eq!(rules(&r), Vec::<&str>::new(), "{:?}", r.findings);
    }

    #[test]
    fn r8_panics_in_unreachable_fns_stay_quiet() {
        let src = "\
pub fn fill_full(top: &[i32]) -> i32 { top.len() as i32 }
fn orphan() { panic!(\"never called from a kernel entry\"); }
";
        let r = audit(&[("crates/dp/src/kernel.rs", src)]);
        assert_eq!(rules(&r), Vec::<&str>::new(), "{:?}", r.findings);
    }

    #[test]
    fn r8_requires_release_guard_for_pub_hot_indexing() {
        let bad = "pub fn fill_row(v: &mut [i32]) { v[0] = 1; }\n";
        let r = audit(&[("crates/dp/src/kernel.rs", bad)]);
        assert_eq!(rules(&r), vec!["R8-panic-reachability"]);
        assert!(r.findings[0].message.contains("bounds guard"));

        let asserted = "pub fn fill_row(v: &mut [i32]) { assert!(!v.is_empty()); v[0] = 1; }\n";
        let r = audit(&[("crates/dp/src/kernel.rs", asserted)]);
        assert_eq!(rules(&r), Vec::<&str>::new(), "{:?}", r.findings);

        // debug_assert! is not a release guard.
        let dbg = "pub fn fill_row(v: &mut [i32]) { debug_assert!(!v.is_empty()); v[0] = 1; }\n";
        let r = audit(&[("crates/dp/src/kernel.rs", dbg)]);
        assert_eq!(rules(&r), vec!["R8-panic-reachability"]);
    }

    #[test]
    fn r9_tier_a_and_b_accept_feature_proofs() {
        let src = "\
/// # Safety
/// Caller proves AVX2.
#[target_feature(enable = \"avx2\")]
pub(crate) unsafe fn inner(x: &mut [i32]) { if !x.is_empty() { x[0] = 1; } }
/// # Safety
/// Same contract, forwarded.
#[target_feature(enable = \"avx2\")]
pub(crate) unsafe fn outer(x: &mut [i32]) {
    // SAFETY: same ISA contract as ours.
    unsafe { inner(x) }
}
pub fn dispatch(x: &mut [i32]) {
    if is_x86_feature_detected!(\"avx2\") {
        // SAFETY: detected above.
        unsafe { outer(x) }
    }
}
";
        let r = audit(&[("crates/dp/src/simd/x86.rs", src)]);
        assert!(
            !rules(&r).contains(&"R9-detection-dominance"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn r9_flags_an_undominated_call() {
        let src = "\
/// # Safety
/// Caller proves AVX2.
#[target_feature(enable = \"avx2\")]
pub(crate) unsafe fn inner(x: &mut [i32]) { x.fill(0); }
pub fn reckless(x: &mut [i32]) {
    // SAFETY: (wrong) assumed AVX2.
    unsafe { inner(x) }
}
";
        let r = audit(&[("crates/dp/src/simd/x86.rs", src)]);
        let f: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == "R9-detection-dominance")
            .collect();
        assert_eq!(f.len(), 1, "{:?}", r.findings);
        assert!(f[0].message.contains("reckless"), "{}", f[0].message);
    }

    #[test]
    fn r9_tier_c_accepts_constructor_admission() {
        let src = "\
pub enum Backend { Scalar, Avx2 }
pub struct Kernel { backend: Backend }
impl Kernel {
    pub fn scalar() -> Kernel { Kernel { backend: Backend::Scalar } }
    pub fn auto() -> Kernel {
        if is_x86_feature_detected!(\"avx2\") {
            return Kernel { backend: Backend::Avx2 };
        }
        Kernel { backend: Backend::Scalar }
    }
    pub fn run(&self, x: &mut [i32]) {
        match self.backend {
            Backend::Scalar => x.fill(0),
            Backend::Avx2 => {
                // SAFETY: Avx2 admitted only by a detecting constructor.
                unsafe { fast(x) }
            }
        }
    }
}
/// # Safety
/// Caller proves AVX2.
#[target_feature(enable = \"avx2\")]
pub(crate) unsafe fn fast(x: &mut [i32]) { x.fill(1); }
";
        let r = audit(&[("crates/dp/src/simd/mod.rs", src)]);
        assert!(
            !rules(&r).contains(&"R9-detection-dominance"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn r9_tier_c_rejects_a_leaky_constructor() {
        // `sneaky` builds the Avx2 variant with no detection anywhere
        // in its closure: constructor admission must fail.
        let src = "\
pub enum Backend { Scalar, Avx2 }
pub struct Kernel { backend: Backend }
impl Kernel {
    pub fn sneaky() -> Kernel { Kernel { backend: Backend::Avx2 } }
    pub fn run(&self, x: &mut [i32]) {
        match self.backend {
            Backend::Scalar => x.fill(0),
            Backend::Avx2 => {
                // SAFETY: (wrong) nothing proved this.
                unsafe { fast(x) }
            }
        }
    }
}
/// # Safety
/// Caller proves AVX2.
#[target_feature(enable = \"avx2\")]
pub(crate) unsafe fn fast(x: &mut [i32]) { x.fill(1); }
";
        let r = audit(&[("crates/dp/src/simd/mod.rs", src)]);
        assert!(
            rules(&r).contains(&"R9-detection-dominance"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn r10_derives_the_span_bound_from_extrema() {
        let files = [
            (
                "crates/scoring/src/tables.rs",
                "pub const T: [i32; 2] = [-11, 10];\n",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn align_opts(m: usize) -> i32 {\n    validate_run(m)\n}\n\
                 fn validate_run(m: usize) -> i32 { m as i32 }\n\
                 fn pick() { let _ = GapModel::linear(-20); }\n",
            ),
        ];
        let r = audit(&files);
        assert_eq!(r.certificate.sub_abs_max, 11);
        assert_eq!(r.certificate.gap_abs_max, 20);
        assert_eq!(r.certificate.cell_coeff, 20);
        assert_eq!(r.certificate.unit_cost, 40);
        assert_eq!(r.certificate.max_span, (i32::MAX as u64) / 40 - 1);
        assert!(
            !rules(&r).contains(&"R10-overflow-cert"),
            "{:?}",
            r.findings
        );
        assert!(r
            .certificate
            .guards
            .contains(&("align_opts".to_string(), true)));
    }

    #[test]
    fn r10_flags_an_unguarded_entry_point() {
        let files = [
            (
                "crates/core/src/lib.rs",
                "pub fn align_opts(m: usize) -> i32 { m as i32 }\n",
            ),
            (
                "crates/scoring/src/tables.rs",
                "pub const T: [i32; 1] = [100_000_000];\n",
            ),
        ];
        let r = audit(&files);
        assert!(rules(&r).contains(&"R10-overflow-cert"), "{:?}", r.findings);
        assert_eq!(r.certificate.sub_abs_max, 100_000_000);
    }

    #[test]
    fn certificate_json_round_trips_the_key_fields() {
        let files = [(
            "crates/scoring/src/tables.rs",
            "pub const T: [i32; 1] = [-7];\n",
        )];
        let r = audit(&files);
        let json = r.certificate.to_json(r.findings.len());
        assert!(json.contains("\"sub_abs_max\": 7"), "{json}");
        assert!(json.contains("\"max_span\""), "{json}");
        assert!(json.contains("\"version\": 1"), "{json}");
    }
}

//! Source-level lint rules for the workspace.
//!
//! A deliberately small, dependency-free scanner: a line-oriented lexer
//! splits each source line into *code* and *comment* halves (string
//! literals are blanked, block comments and raw strings tracked across
//! lines), and the rules below run over the result:
//!
//! * **R1-safety-comment** — every occurrence of the `unsafe` keyword
//!   must be justified by a `// SAFETY:` comment on the same line or in
//!   the comment/attribute block immediately above it (a doc block
//!   containing a `# Safety` section also counts, for `unsafe fn`
//!   declarations).
//! * **R2-no-panic-hot-kernel** — the DP hot kernels
//!   (`dp::kernel`, `dp::affine`, `dp::antidiagonal` and the
//!   `fullmatrix` fill loops) must not contain `.unwrap()`, `.expect(`,
//!   `panic!`, `unreachable!`, `todo!` or `unimplemented!` outside
//!   `#[cfg(test)]` modules. Intentional invariant panics carry a
//!   `// flsa-check: allow(panic)` marker on the same or previous line.
//! * **R3-relaxed-justified** — every `Ordering::Relaxed` must carry a
//!   comment (same line, or a comment line directly above the
//!   contiguous block of `Relaxed` lines) saying why relaxed ordering
//!   suffices; `// flsa-check: allow(relaxed)` also works.
//! * **R4-forbid-unsafe** — a crate whose sources contain no `unsafe`
//!   at all must declare `#![forbid(unsafe_code)]` in every crate root
//!   (`src/lib.rs` / `src/main.rs`) so the property is load-bearing.
//! * **R5-no-unwrap-in-library** — library crates must not call
//!   `.unwrap()` or `.expect(` outside `#[cfg(test)]` modules: the
//!   public API is fallible (`AlignError`), so failures must travel as
//!   `Result`, not as panics. Intentional invariant unwraps carry a
//!   `// flsa-check: allow(unwrap)` marker on the same or previous
//!   line. Binary and dev-tool crates (`crates/cli`, `crates/bench`,
//!   `crates/check`) are exempt, as are the DP hot kernels already
//!   covered by the stricter R2.
//! * **R6-target-feature** — `#[target_feature(enable = "…")]` is the
//!   one attribute that lets callers assume an ISA the build did not
//!   prove, so it is confined to `crates/dp/src/simd/`, the function it
//!   annotates must be `unsafe fn` (callers are forced to prove CPU
//!   support), and every enabled feature must have a matching
//!   `is_x86_feature_detected!("…")` call site somewhere in the scanned
//!   sources. This rule is workspace-global: the detection call site
//!   may live in a different file than the kernel it guards.
//! * **R7-metric-names** — metric registration sites
//!   (`.counter("…")`, `.gauge("…")`, `.histogram("…")`) must not pass
//!   inline string literals: every metric name is a constant in
//!   `flsa_metrics::names`, which keeps the Prometheus namespace
//!   collision-free and greppable. `crates/metrics/src/` itself is
//!   exempt (it defines the API and the names), as are `#[cfg(test)]`
//!   modules; a deliberate dynamic name carries a
//!   `// flsa-check: allow(metric-name)` marker.
//!
//! Scope: production sources only — `src/` trees of the workspace root
//! and every `crates/*` member. Integration tests, benches, fixtures,
//! `target/` and `vendor/` are not scanned. `#[cfg(test)]` modules at
//! the tail of a file are exempt from R2/R3/R5 (but not R1: unsafe in
//! tests still needs a SAFETY story).

use std::fs;
use std::io;
use std::path::Path;

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path of the offending file, relative to the scanned root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `"R1-safety-comment"`.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files whose inner loops are DP hot kernels (rule R2).
pub(crate) const HOT_FILES: &[&str] = &[
    "crates/dp/src/kernel.rs",
    "crates/dp/src/affine.rs",
    "crates/dp/src/antidiagonal.rs",
];

/// Directory prefixes that are hot wholesale (rule R2).
pub(crate) const HOT_PREFIXES: &[&str] = &["crates/fullmatrix/src/", "crates/dp/src/simd/"];

/// The only directory allowed to hold `#[target_feature]` fns (rule R6).
const SIMD_DIR: &str = "crates/dp/src/simd/";

/// Panic-family tokens banned in hot kernels.
pub(crate) const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Panic-carrying calls banned in library crates (rule R5).
const UNWRAP_TOKENS: &[&str] = &[".unwrap()", ".expect("];

/// Crates exempt from R5: binaries and dev tooling whose top level *is*
/// the process, so panicking on a broken invariant is acceptable there.
pub(crate) const UNWRAP_EXEMPT_PREFIXES: &[&str] =
    &["crates/cli/", "crates/bench/", "crates/check/"];

/// Registration calls that must take a `flsa_metrics::names` constant,
/// not an inline literal (rule R7). The lexer blanks string contents but
/// keeps the quote characters, so `.counter("` in lexed code means a
/// literal was passed, while `.counter(names::…` has no quote.
const METRIC_TOKENS: &[&str] = &[".counter(\"", ".gauge(\"", ".histogram(\""];

/// The one directory allowed to spell metric names out: the metrics
/// crate itself, which defines both the API and the names module.
const METRICS_CRATE_PREFIX: &str = "crates/metrics/src/";

pub(crate) const ALLOW_PANIC: &str = "flsa-check: allow(panic)";
const ALLOW_RELAXED: &str = "flsa-check: allow(relaxed)";
pub(crate) const ALLOW_UNWRAP: &str = "flsa-check: allow(unwrap)";
const ALLOW_METRIC_NAME: &str = "flsa-check: allow(metric-name)";

pub(crate) fn is_hot(rel: &str) -> bool {
    HOT_FILES.contains(&rel) || HOT_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// One source line after lexing: executable text with strings blanked,
/// and the concatenated comment text.
#[derive(Clone, Debug, Default)]
pub(crate) struct Line {
    pub(crate) code: String,
    pub(crate) comment: String,
}

/// Lexer state carried across lines: block-comment depth, an open raw
/// string (`Some(n)` = waiting for `"` followed by `n` hashes), and an
/// open ordinary string.
#[derive(Default)]
struct Lexer {
    block_depth: usize,
    raw_hashes: Option<usize>,
    in_string: bool,
}

impl Lexer {
    /// Consumes one physical line and splits it into code and comment.
    fn feed(&mut self, line: &str) -> Line {
        let b: Vec<char> = line.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            if self.block_depth > 0 {
                if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    self.block_depth -= 1;
                    i += 2;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    self.block_depth += 1;
                    i += 2;
                } else {
                    comment.push(b[i]);
                    i += 1;
                }
                continue;
            }
            if let Some(n) = self.raw_hashes {
                if b[i] == '"'
                    && b[i + 1..].len() >= n
                    && b[i + 1..i + 1 + n].iter().all(|c| *c == '#')
                {
                    self.raw_hashes = None;
                    code.push('"');
                    i += 1 + n;
                } else {
                    i += 1;
                }
                continue;
            }
            if self.in_string {
                if b[i] == '\\' {
                    i += 2;
                } else if b[i] == '"' {
                    self.in_string = false;
                    code.push('"');
                    i += 1;
                } else {
                    i += 1;
                }
                continue;
            }
            match b[i] {
                '/' if b.get(i + 1) == Some(&'/') => {
                    comment.push_str(&b[i + 2..].iter().collect::<String>());
                    break;
                }
                '/' if b.get(i + 1) == Some(&'*') => {
                    self.block_depth = 1;
                    i += 2;
                }
                '"' => {
                    self.in_string = true;
                    code.push('"');
                    i += 1;
                }
                'r' | 'b' if !prev_is_ident(&code) => {
                    if let Some(consumed) = raw_string_start(&b, i) {
                        self.raw_hashes = Some(consumed.hashes);
                        code.push('"');
                        i += consumed.len;
                    } else if b[i] == 'b' && b.get(i + 1) == Some(&'"') {
                        // Byte string: same escape rules as an ordinary one.
                        self.in_string = true;
                        code.push('"');
                        i += 2;
                    } else {
                        code.push(b[i]);
                        i += 1;
                    }
                }
                '\'' => {
                    if b.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < b.len() && b[j] != '\'' {
                            j += 1;
                        }
                        i = j + 1;
                    } else if b.get(i + 2) == Some(&'\'') {
                        i += 3;
                    } else {
                        // Lifetime or label: plain code.
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        Line { code, comment }
    }
}

struct RawStart {
    hashes: usize,
    len: usize,
}

/// Recognizes `r"`, `r#"`, `br"` … at position `i`.
fn raw_string_start(b: &[char], i: usize) -> Option<RawStart> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&'"') {
        Some(RawStart {
            hashes,
            len: j + 1 - i,
        })
    } else {
        None
    }
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn prev_is_ident(code: &str) -> bool {
    code.chars().next_back().is_some_and(is_ident_char)
}

/// True when `code` contains `tok` as a standalone identifier (not as a
/// substring of a longer identifier, e.g. `unsafe` inside `unsafe_code`).
pub(crate) fn has_token(code: &str, tok: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(tok) {
        let p = start + pos;
        let e = p + tok.len();
        let before_ok = p == 0 || !code[..p].chars().next_back().is_some_and(is_ident_char);
        let after_ok = !code[e..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = p + 1;
    }
    false
}

pub(crate) fn lex(text: &str) -> Vec<Line> {
    let mut lexer = Lexer::default();
    text.lines().map(|l| lexer.feed(l)).collect()
}

/// Index of the first `#[cfg(test)]` line, i.e. where the trailing test
/// module starts (the workspace convention); lines from there on are
/// exempt from R2/R3.
pub(crate) fn test_region_start(lines: &[Line]) -> usize {
    lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(lines.len())
}

/// R1: the `unsafe` on line `idx` is justified by a SAFETY comment on
/// the same line or in the comment/attribute block directly above (a
/// `# Safety` doc section counts for declarations).
fn r1_satisfied(lines: &[Line], idx: usize) -> bool {
    let justifies = |c: &str| c.contains("SAFETY") || c.contains("# Safety");
    if justifies(&lines[idx].comment) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        if justifies(&lines[j].comment) {
            return true;
        }
        let code = lines[j].code.trim();
        if code.is_empty() || code.starts_with("#[") || code.starts_with("#![") {
            continue;
        }
        return false;
    }
    false
}

/// R2/R3 escape hatch: the marker on the same or the previous line.
pub(crate) fn has_marker(lines: &[Line], idx: usize, marker: &str) -> bool {
    lines[idx].comment.contains(marker) || (idx > 0 && lines[idx - 1].comment.contains(marker))
}

/// R3: the `Relaxed` on line `idx` carries a same-line comment, or a
/// comment line sits directly above the contiguous run of `Relaxed`
/// lines it belongs to.
fn r3_satisfied(lines: &[Line], idx: usize) -> bool {
    if !lines[idx].comment.trim().is_empty() {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.code.trim().is_empty() && !l.comment.trim().is_empty() {
            return true;
        }
        if has_token(&l.code, "Relaxed") {
            continue;
        }
        return false;
    }
    false
}

/// Lints one file's text; appends findings and reports whether the file
/// contains any `unsafe` code (for R4 aggregation).
fn lint_file(rel: &str, text: &str, findings: &mut Vec<Finding>) -> bool {
    let lines = lex(text);
    let test_start = test_region_start(&lines);
    let hot = is_hot(rel);
    let library = !UNWRAP_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p));
    let mut has_unsafe = false;

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if has_token(&line.code, "unsafe") {
            has_unsafe = true;
            if !r1_satisfied(&lines, idx) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "R1-safety-comment",
                    message:
                        "`unsafe` without a `// SAFETY:` comment on this line or the block above"
                            .to_string(),
                });
            }
        }
        if idx >= test_start {
            continue;
        }
        if hot {
            for tok in PANIC_TOKENS {
                if line.code.contains(tok) && !has_marker(&lines, idx, ALLOW_PANIC) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "R2-no-panic-hot-kernel",
                        message: format!(
                            "`{tok}` in a DP hot kernel (mark intentional invariant panics with `// {ALLOW_PANIC}`)"
                        ),
                    });
                }
            }
        }
        if library && !hot {
            for tok in UNWRAP_TOKENS {
                if line.code.contains(tok) && !has_marker(&lines, idx, ALLOW_UNWRAP) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "R5-no-unwrap-in-library",
                        message: format!(
                            "`{tok}` in a library crate: return a Result or mark the \
                             invariant with `// {ALLOW_UNWRAP}`"
                        ),
                    });
                }
            }
        }
        if !rel.starts_with(METRICS_CRATE_PREFIX) {
            for tok in METRIC_TOKENS {
                if line.code.contains(tok) && !has_marker(&lines, idx, ALLOW_METRIC_NAME) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "R7-metric-names",
                        message: format!(
                            "inline metric name at a `{tok}…\")` site: use a \
                             `flsa_metrics::names` constant (or mark with \
                             `// {ALLOW_METRIC_NAME}`)"
                        ),
                    });
                }
            }
        }
        if has_token(&line.code, "Relaxed")
            && !has_marker(&lines, idx, ALLOW_RELAXED)
            && !r3_satisfied(&lines, idx)
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: lineno,
                rule: "R3-relaxed-justified",
                message:
                    "`Ordering::Relaxed` without a comment saying why relaxed ordering suffices"
                        .to_string(),
            });
        }
    }
    has_unsafe
}

/// The first `"…"` literal in `s`, if any.
pub(crate) fn first_quoted(s: &str) -> Option<&str> {
    let open = s.find('"')?;
    let rest = &s[open + 1..];
    let close = rest.find('"')?;
    Some(&rest[..close])
}

/// Feature names with a runtime `is_x86_feature_detected!("…")` call
/// site anywhere in the scanned sources (rule R6). Read from the *raw*
/// text: the feature name is a string literal, which the lexer blanks.
fn detected_features(files: &[(String, String)]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for (_, text) in files {
        for line in text.lines() {
            let mut rest = line;
            while let Some(p) = rest.find("is_x86_feature_detected!") {
                rest = &rest[p + "is_x86_feature_detected!".len()..];
                if let Some(feat) = first_quoted(rest) {
                    out.insert(feat.to_string());
                }
            }
        }
    }
    out
}

/// R6: every `#[target_feature]` attribute must live under [`SIMD_DIR`],
/// annotate an `unsafe fn`, and enable only features that some scanned
/// file runtime-detects. The gate is the lexed code (so mentions in
/// comments or string literals don't count), but the feature names are
/// read from the raw line because the lexer blanks string contents.
fn r6_target_feature(
    rel: &str,
    text: &str,
    detected: &std::collections::BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let raw: Vec<&str> = text.lines().collect();
    let lines = lex(text);
    for idx in 0..lines.len() {
        if !lines[idx].code.contains("#[target_feature") {
            continue;
        }
        let lineno = idx + 1;
        if !rel.starts_with(SIMD_DIR) {
            findings.push(Finding {
                file: rel.to_string(),
                line: lineno,
                rule: "R6-target-feature",
                message: format!(
                    "`#[target_feature]` outside `{SIMD_DIR}`: explicit-ISA kernels are \
                     confined there"
                ),
            });
        }
        // The annotated fn must be `unsafe`: it may share this line or
        // follow after further attribute / comment-only lines.
        let mut decl = None;
        let mut j = idx;
        while j < lines.len() {
            let code = lines[j].code.trim();
            if has_token(code, "fn") {
                decl = Some(j);
                break;
            }
            if j > idx && !(code.is_empty() || code.starts_with("#[") || code.starts_with("#![")) {
                break;
            }
            j += 1;
        }
        if !decl.is_some_and(|d| has_token(&lines[d].code, "unsafe")) {
            findings.push(Finding {
                file: rel.to_string(),
                line: lineno,
                rule: "R6-target-feature",
                message: "`#[target_feature]` on a non-`unsafe fn`: callers must be forced to \
                          prove CPU support at the call site"
                    .to_string(),
            });
        }
        // Every enabled feature needs a runtime-detection call site.
        let Some(p) = raw[idx].find("enable") else {
            continue;
        };
        let Some(csv) = first_quoted(&raw[idx][p..]) else {
            continue;
        };
        for feat in csv.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            if !detected.contains(feat) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "R6-target-feature",
                    message: format!(
                        "feature \"{feat}\" has no `is_x86_feature_detected!(\"{feat}\")` call \
                         site anywhere in the workspace"
                    ),
                });
            }
        }
    }
}

/// Lints a set of `(relative path, contents)` sources as one workspace:
/// runs R1–R3/R5 per file, R6 per file against the workspace-wide
/// detection set, and R4 per crate. This is the pure core —
/// [`lint_workspace`] feeds it from disk, tests feed it inline strings.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let detected = detected_features(files);
    // crate key -> (has_unsafe, root files seen)
    let mut crates: std::collections::BTreeMap<String, (bool, Vec<usize>)> =
        std::collections::BTreeMap::new();

    for (i, (rel, text)) in files.iter().enumerate() {
        let has_unsafe = lint_file(rel, text, &mut findings);
        r6_target_feature(rel, text, &detected, &mut findings);
        let key = crate_key(rel);
        let entry = crates.entry(key).or_default();
        entry.0 |= has_unsafe;
        if is_crate_root(rel) {
            entry.1.push(i);
        }
    }

    for (key, (has_unsafe, roots)) in &crates {
        if *has_unsafe {
            continue;
        }
        for &i in roots {
            let (rel, text) = &files[i];
            let declares = lex(text)
                .iter()
                .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
            if !declares {
                findings.push(Finding {
                    file: rel.clone(),
                    line: 1,
                    rule: "R4-forbid-unsafe",
                    message: format!(
                        "crate `{key}` has no unsafe code but does not declare #![forbid(unsafe_code)]"
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Crate a source file belongs to: `crates/<name>/…` or the workspace
/// root facade.
fn crate_key(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "fastlsa (workspace root)".to_string()
}

/// `src/lib.rs` and `src/main.rs` are crate roots (each is a separate
/// compilation target, so R4 requires the attribute on each).
fn is_crate_root(rel: &str) -> bool {
    rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs")
}

/// Collects the production sources under `root`: `<root>/src/**/*.rs`
/// and `<root>/crates/*/src/**/*.rs`, sorted for determinism.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<_> = fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk(&src, root, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "target" | "vendor" | "fixtures" | ".git") {
                continue;
            }
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root` from disk.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint_sources(&collect_sources(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel: &str, text: &str) -> Vec<Finding> {
        lint_sources(&[(rel.to_string(), text.to_string())])
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn lexer_strips_line_and_block_comments() {
        let lines = lex("let x = 1; // unsafe panic!\n/* unsafe\nstill comment */ let y = 2;");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("unsafe"));
        assert!(!has_token(&lines[1].code, "unsafe"));
        assert_eq!(lines[2].code.trim(), "let y = 2;");
    }

    #[test]
    fn lexer_blanks_strings_and_handles_raw_strings_and_lifetimes() {
        let lines = lex("let s = \"unsafe panic!()\"; let l: &'a str = r#\"Relaxed \" quote\"#;");
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(!lines[0].code.contains("panic!"));
        assert!(!has_token(&lines[0].code, "Relaxed"));
        assert!(lines[0].code.contains("'a str"));
        let lines = lex("let c = '\"'; let d = \"after the char literal\"; panic!();");
        assert!(lines[0].code.contains("panic!"));
        assert!(!lines[0].code.contains("after the char"));
    }

    #[test]
    fn token_matching_respects_identifier_boundaries() {
        assert!(has_token("unsafe { }", "unsafe"));
        assert!(!has_token("#![forbid(unsafe_code)]", "unsafe"));
        assert!(has_token("Ordering::Relaxed", "Relaxed"));
        assert!(!has_token("RelaxedOrdering", "Relaxed"));
    }

    #[test]
    fn r1_accepts_same_line_preceding_block_and_safety_doc_section() {
        let ok = "\
// SAFETY: fine
unsafe { a() }
let x = unsafe { b() }; // SAFETY: also fine
/// # Safety
/// Caller must hold the lock.
pub unsafe fn c() {}
";
        assert_eq!(one("crates/x/src/lib.rs", ok), vec![]);
        let bad = "fn f() {\n    unsafe { a() }\n}\n";
        let f = one("crates/x/src/lib.rs", bad);
        assert_eq!(rules(&f), vec!["R1-safety-comment"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn r2_flags_panics_only_in_hot_files_outside_tests() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n#[cfg(test)]\nmod t { fn g() { panic!(); } }\n";
        assert_eq!(
            rules(&one("crates/dp/src/kernel.rs", src)),
            vec!["R2-no-panic-hot-kernel"]
        );
        // Outside the hot list R2 stays quiet (the unwrap is R5's business).
        assert_eq!(
            rules(&one("crates/dp/src/matrix.rs", src)),
            vec!["R5-no-unwrap-in-library"]
        );
        let marked = "fn f() {\n    // flsa-check: allow(panic)\n    panic!(\"corrupt DPM\");\n}\n";
        assert_eq!(one("crates/fullmatrix/src/nw.rs", marked), vec![]);
    }

    #[test]
    fn r3_accepts_same_line_or_block_comment_above_a_relaxed_run() {
        let ok = "\
fn f(c: &C) {
    c.a.load(Ordering::Relaxed); // Relaxed: monotonic counter
    // Relaxed: snapshot needs no ordering between fields.
    c.b.load(Ordering::Relaxed);
    c.d.load(Ordering::Relaxed);
}
";
        assert_eq!(one("crates/x/src/m.rs", ok), vec![]);
        let bad = "fn f(c: &C) {\n    c.a.load(Ordering::Relaxed);\n}\n";
        assert_eq!(
            rules(&one("crates/x/src/m.rs", bad)),
            vec!["R3-relaxed-justified"]
        );
    }

    #[test]
    fn r4_requires_forbid_only_on_zero_unsafe_crates() {
        let clean = [(
            "crates/clean/src/lib.rs".to_string(),
            "pub fn f() {}\n".to_string(),
        )];
        assert_eq!(rules(&lint_sources(&clean)), vec!["R4-forbid-unsafe"]);
        let declared = [(
            "crates/clean/src/lib.rs".to_string(),
            "#![forbid(unsafe_code)]\npub fn f() {}\n".to_string(),
        )];
        assert_eq!(lint_sources(&declared), vec![]);
        let has_unsafe = [(
            "crates/raw/src/lib.rs".to_string(),
            "// SAFETY: test\npub fn f() { unsafe { g() } }\n".to_string(),
        )];
        assert_eq!(lint_sources(&has_unsafe), vec![]);
    }

    #[test]
    fn r5_flags_unwrap_in_library_crates_but_not_tools_or_tests() {
        let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n\
                   #[cfg(test)]\nmod t { fn g(o: Option<u32>) { o.unwrap(); } }\n";
        assert_eq!(
            rules(&one("crates/core/src/solver.rs", src)),
            vec!["R5-no-unwrap-in-library"]
        );
        // Binaries and dev tooling may unwrap at top level.
        assert_eq!(one("crates/cli/src/args.rs", src), vec![]);
        assert_eq!(one("crates/bench/src/experiments.rs", src), vec![]);
        assert_eq!(one("crates/check/src/model.rs", src), vec![]);
        // Hot kernels are covered by the stricter R2, not double-reported.
        let f = one("crates/dp/src/kernel.rs", src);
        assert_eq!(rules(&f), vec!["R2-no-panic-hot-kernel"]);
    }

    #[test]
    fn r5_accepts_the_allow_unwrap_marker_and_expects_are_covered() {
        let marked = "pub fn f(o: Option<u32>) -> u32 {\n\
                      \x20   // flsa-check: allow(unwrap) -- len checked above\n\
                      \x20   o.unwrap()\n}\n";
        assert_eq!(one("crates/core/src/grid.rs", marked), vec![]);
        let expect = "pub fn f(o: Option<u32>) -> u32 { o.expect(\"set\") }\n";
        assert_eq!(
            rules(&one("crates/wavefront/src/pool.rs", expect)),
            vec!["R5-no-unwrap-in-library"]
        );
    }

    #[test]
    fn r6_accepts_confined_unsafe_and_detected_kernels() {
        let kernel = "\
/// # Safety
/// Caller must have proven AVX2 support at runtime.
#[target_feature(enable = \"avx2\")]
pub(crate) unsafe fn f() {}
";
        // The detection call site lives in a *different* file — R6 is
        // workspace-global, mirroring the real dispatch layout.
        let dispatch = "pub fn up() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n";
        let files = [
            ("crates/dp/src/simd/x86.rs".to_string(), kernel.to_string()),
            (
                "crates/dp/src/simd/mod.rs".to_string(),
                dispatch.to_string(),
            ),
        ];
        assert_eq!(lint_sources(&files), vec![]);
    }

    #[test]
    fn r6_flags_escaped_safe_and_undetected_target_feature_fns() {
        // Outside the simd dir, on a safe fn, feature never detected:
        // three distinct findings anchored to the attribute line.
        let bad = "#[target_feature(enable = \"avx512vnni\")]\npub fn f() {}\n";
        let f = one("crates/core/src/fast.rs", bad);
        assert_eq!(rules(&f), vec!["R6-target-feature"; 3]);
        assert!(f.iter().all(|x| x.line == 1));

        // Confined and detected, but the fn is safe: exactly one finding.
        let safe_fn = "#[target_feature(enable = \"avx2\")]\nfn f() {}\n\
                       pub fn d() -> bool { is_x86_feature_detected!(\"avx2\") }\n";
        let f = one("crates/dp/src/simd/k.rs", safe_fn);
        assert_eq!(rules(&f), vec!["R6-target-feature"]);
    }

    #[test]
    fn r6_checks_each_enabled_feature_against_detection_sites() {
        let src = "\
/// # Safety
/// ISA proven by the dispatcher.
#[target_feature(enable = \"avx2,bmi2\")]
pub unsafe fn f() {}
pub fn d() -> bool { is_x86_feature_detected!(\"avx2\") }
";
        let f = one("crates/dp/src/simd/k.rs", src);
        assert_eq!(rules(&f), vec!["R6-target-feature"]);
        assert!(f[0].message.contains("bmi2"), "{}", f[0].message);
    }

    #[test]
    fn r6_ignores_mentions_in_comments_and_strings() {
        let src = "// `#[target_feature(enable = \"avx2\")]` stays in the simd dir.\n\
                   pub fn f() -> &'static str { \"#[target_feature]\" }\n";
        assert_eq!(one("crates/core/src/doc.rs", src), vec![]);
    }

    #[test]
    fn doc_comment_examples_do_not_trip_r2() {
        let src = "/// ```\n/// let x = v.unwrap();\n/// ```\npub fn f() {}\n";
        assert_eq!(one("crates/dp/src/kernel.rs", src), vec![]);
    }

    #[test]
    fn r7_flags_inline_metric_names_but_not_names_constants() {
        let inline = "pub fn f(reg: &Registry) { reg.counter(\"flsa_cells_total\").inc(); }\n";
        let f = one("crates/core/src/metrics.rs", inline);
        assert_eq!(rules(&f), vec!["R7-metric-names"]);
        assert!(
            f[0].message.contains("flsa_metrics::names"),
            "{}",
            f[0].message
        );
        let constant = "pub fn f(reg: &Registry) { reg.counter(names::CELLS_TOTAL).inc(); }\n";
        assert_eq!(one("crates/core/src/metrics.rs", constant), vec![]);
    }

    #[test]
    fn r7_covers_all_three_instruments() {
        let src = "fn f(r: &Registry) {\n    r.gauge(\"g\").set(1);\n    r.histogram(\"h\").record(2);\n}\n";
        assert_eq!(
            rules(&one("crates/wavefront/src/pool.rs", src)),
            vec!["R7-metric-names"; 2]
        );
    }

    #[test]
    fn r7_exempts_the_metrics_crate_tests_and_marked_sites() {
        let src = "pub fn f(reg: &Registry) { reg.counter(\"x\").inc(); }\n";
        // The metrics crate defines the API and the names module.
        assert_eq!(one("crates/metrics/src/registry.rs", src), vec![]);
        let in_tests = "#[cfg(test)]\nmod t { fn g(r: &Registry) { r.counter(\"x\"); } }\n";
        assert_eq!(one("crates/core/src/metrics.rs", in_tests), vec![]);
        let marked = "fn f(r: &Registry, name: &'static str) {\n\
                      \x20   // flsa-check: allow(metric-name) -- caller-chosen name\n\
                      \x20   r.counter(\"prefix\");\n}\n";
        assert_eq!(one("crates/core/src/metrics.rs", marked), vec![]);
    }
}

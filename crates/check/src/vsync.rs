//! Instrumented implementations of the `flsa-wavefront` sync traits.
//!
//! [`VirtSync`] is the checked counterpart of
//! [`flsa_wavefront::sync::StdSync`]: the same [`SyncModel`] surface, but
//! every operation is a visible step of the deterministic scheduler in
//! [`crate::exec`], and every ordering argument is *interpreted* — only
//! `Acquire`/`Release`-class orderings move vector-clock state, so a
//! too-weak ordering in the protocol shows up as a detected race instead
//! of silently working on strongly-ordered hardware.
//!
//! Plus [`RaceCell`], a plain (non-atomic) cell with vector-clock race
//! detection, used by model scenarios to stand in for the unsynchronized
//! data the real protocol protects (DP buffers, the pool's borrowed work
//! closure).
//!
//! Everything here must be used *inside* a [`crate::exec::run_schedule`]
//! body — the primitives find their runtime through thread-local context
//! and panic otherwise.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;

use flsa_wavefront::sync::{AtomicInt, Monitor, SyncModel};

use crate::exec::ctx;

/// The model-checked [`SyncModel`]: virtual monitors and atomics driven
/// by the deterministic scheduler.
pub struct VirtSync;

impl SyncModel for VirtSync {
    type Monitor<T: Send + 'static> = VirtMonitor<T>;
    type AtomicU32 = VirtAtomicU32;
    type AtomicUsize = VirtAtomicUsize;
}

/// [`Monitor`] on a virtual mutex + condvar pair.
///
/// The value itself lives in a real `std::sync::Mutex` purely as storage
/// with compiler-visible exclusivity; contention never happens on it
/// because the virtual runtime admits one owner at a time (FIFO hand-off),
/// so every inner `lock()` is uncontended by construction.
pub struct VirtMonitor<T> {
    mid: usize,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`VirtMonitor`]; releasing it is a visible operation.
pub struct VirtGuard<'a, T: Send + 'static> {
    mon: &'a VirtMonitor<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: Send + 'static> VirtMonitor<T> {
    fn storage(&self) -> std::sync::MutexGuard<'_, T> {
        // A panicking virtual thread may poison the storage mutex while
        // unwinding with the guard held; the poison itself is meaningless
        // here (exclusivity comes from the virtual runtime).
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Send + 'static> Monitor<T> for VirtMonitor<T> {
    type Guard<'a>
        = VirtGuard<'a, T>
    where
        T: 'a;

    fn new(value: T) -> Self {
        let (exec, _) = ctx();
        VirtMonitor {
            mid: exec.register_monitor(),
            inner: std::sync::Mutex::new(value),
        }
    }

    fn lock(&self) -> Self::Guard<'_> {
        let (exec, tid) = ctx();
        exec.mutex_lock(tid, self.mid);
        VirtGuard {
            mon: self,
            inner: Some(self.storage()),
        }
    }

    fn wait<'a>(&'a self, guard: &mut Self::Guard<'a>) {
        let (exec, tid) = ctx();
        // Release the storage before the virtual unlock so the next
        // virtual owner finds it free, then re-take it once the virtual
        // lock is re-acquired.
        guard.inner = None;
        exec.cond_wait(tid, self.mid);
        guard.inner = Some(self.storage());
    }

    fn notify_one(&self) {
        let (exec, tid) = ctx();
        exec.notify_one(tid, self.mid);
    }

    fn notify_all(&self) {
        let (exec, tid) = ctx();
        exec.notify_all(tid, self.mid);
    }
}

impl<T: Send + 'static> Deref for VirtGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the storage lock")
    }
}

impl<T: Send + 'static> DerefMut for VirtGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the storage lock")
    }
}

impl<T: Send + 'static> Drop for VirtGuard<'_, T> {
    fn drop(&mut self) {
        let (exec, tid) = ctx();
        self.inner = None;
        exec.mutex_unlock(tid, self.mon.mid);
    }
}

macro_rules! virt_atomic {
    ($name:ident, $value:ty, $doc:literal) => {
        #[doc = $doc]
        pub struct $name {
            aid: usize,
        }

        impl AtomicInt<$value> for $name {
            fn new(v: $value) -> Self {
                let (exec, _) = ctx();
                $name {
                    aid: exec.register_atomic(v as u64),
                }
            }

            fn load(&self, order: Ordering) -> $value {
                let (exec, tid) = ctx();
                exec.atomic_access(tid, self.aid, order, |_| None) as $value
            }

            fn store(&self, v: $value, order: Ordering) {
                let (exec, tid) = ctx();
                exec.atomic_access(tid, self.aid, order, |_| Some(v as u64));
            }

            fn fetch_sub(&self, v: $value, order: Ordering) -> $value {
                let (exec, tid) = ctx();
                // Wrap in the value's own width, as the real atomic would.
                exec.atomic_access(tid, self.aid, order, |old| {
                    Some((old as $value).wrapping_sub(v) as u64)
                }) as $value
            }

            fn compare_exchange(
                &self,
                current: $value,
                new: $value,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$value, $value> {
                let (exec, tid) = ctx();
                exec.atomic_cas(tid, self.aid, current as u64, new as u64, success, failure)
                    .map(|v| v as $value)
                    .map_err(|v| v as $value)
            }
        }
    };
}

virt_atomic!(
    VirtAtomicU32,
    u32,
    "Virtual atomic `u32` under the deterministic scheduler."
);
virt_atomic!(
    VirtAtomicUsize,
    usize,
    "Virtual atomic `usize` under the deterministic scheduler."
);

/// A plain, unsynchronized cell with vector-clock race detection.
///
/// Accesses are *not* scheduling points (their placement between the
/// surrounding sync operations cannot influence the interleaving); they
/// only check and update the happens-before bookkeeping. A read that is
/// not ordered after the last write — or a write not ordered after every
/// previous access — panics with a "data race" message, failing the
/// schedule.
pub struct RaceCell<T> {
    cid: usize,
    value: UnsafeCell<T>,
}

// SAFETY: the deterministic runtime executes exactly one virtual thread
// at any moment (token passing over parked OS threads), so two `value`
// accesses can never overlap physically; *logical* races are what
// `cell_read`/`cell_write` detect and report.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    /// A race-checked cell holding `v`. Must be created inside a
    /// schedule (registers with the running scheduler).
    pub fn new(v: T) -> Self {
        let (exec, _) = ctx();
        RaceCell {
            cid: exec.register_cell(),
            value: UnsafeCell::new(v),
        }
    }

    /// Plain read; panics on a detected read-after-unordered-write race.
    pub fn get(&self) -> T {
        let (exec, tid) = ctx();
        exec.cell_read(tid, self.cid);
        // SAFETY: physical exclusivity per the `Sync` impl above; the
        // race check just ran, so the read is also logically ordered.
        unsafe { *self.value.get() }
    }

    /// Plain write; panics on a detected unordered-write race.
    pub fn set(&self, v: T) {
        let (exec, tid) = ctx();
        exec.cell_write(tid, self.cid);
        // SAFETY: physical exclusivity per the `Sync` impl above; the
        // race check just ran, so the write is also logically ordered.
        unsafe { *self.value.get() = v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_schedule;
    use crate::explore::SchedPolicy;

    #[test]
    fn monitor_guards_a_counter_across_vthreads() {
        let out = run_schedule(SchedPolicy::random(11, 60, 10), |scope| {
            let m = std::sync::Arc::new(<VirtSync as SyncModel>::Monitor::<u64>::new(0));
            for _ in 0..2 {
                let m = std::sync::Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..5 {
                        *m.lock() += 1;
                    }
                });
            }
            for _ in 0..5 {
                *m.lock() += 1;
            }
        });
        assert!(out.deadlock.is_none());
        assert!(out.real_panics().is_empty(), "{:?}", out.real_panics());
    }

    #[test]
    fn release_acquire_pair_publishes_racecell_writes() {
        let out = run_schedule(SchedPolicy::random(13, 60, 0), |scope| {
            let flag = std::sync::Arc::new(<VirtSync as SyncModel>::AtomicU32::new(0));
            let data = std::sync::Arc::new(RaceCell::new(0u64));
            {
                let flag = std::sync::Arc::clone(&flag);
                let data = std::sync::Arc::clone(&data);
                scope.spawn(move || {
                    data.set(42);
                    flag.store(1, Ordering::Release);
                });
            }
            // Bounded poll: each load is a scheduling point, so the
            // writer gets scheduled; Acquire imports its clock.
            for _ in 0..200 {
                if flag.load(Ordering::Acquire) == 1 {
                    assert_eq!(data.get(), 42);
                    return;
                }
            }
        });
        assert!(out.deadlock.is_none());
        assert!(out.real_panics().is_empty(), "{:?}", out.real_panics());
    }

    #[test]
    fn relaxed_publication_is_reported_as_a_race() {
        // Same shape, but the flag moves with Relaxed: the value arrives,
        // the happens-before edge does not — some schedule must report a
        // race on the plain cell.
        let mut raced = false;
        for seed in 0..50 {
            let out = run_schedule(SchedPolicy::random(seed, 60, 0), |scope| {
                let flag = std::sync::Arc::new(<VirtSync as SyncModel>::AtomicU32::new(0));
                let data = std::sync::Arc::new(RaceCell::new(0u64));
                {
                    let flag = std::sync::Arc::clone(&flag);
                    let data = std::sync::Arc::clone(&data);
                    scope.spawn(move || {
                        data.set(42);
                        flag.store(1, Ordering::Relaxed);
                    });
                }
                for _ in 0..200 {
                    if flag.load(Ordering::Relaxed) == 1 {
                        data.get();
                        return;
                    }
                }
            });
            if out.real_panics().iter().any(|m| m.contains("data race")) {
                raced = true;
                break;
            }
        }
        assert!(raced, "no schedule detected the Relaxed-publication race");
    }
}

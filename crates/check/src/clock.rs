//! Vector clocks for happens-before tracking.
//!
//! Every virtual thread carries a [`VClock`]; monitors and atomics carry
//! "release clocks" that accumulate the clocks of releasing threads and
//! flow into acquiring threads. A plain (non-atomic) access is data-race
//! free iff the previous conflicting access happens-before it, i.e. the
//! accessor's clock dominates the recorded access epoch — the classic
//! vector-clock race-detection argument (FastTrack, simplified: the
//! thread count here is tiny, so full clocks are cheap).

/// A grow-on-demand vector clock indexed by virtual-thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    ticks: Vec<u32>,
}

impl VClock {
    /// The zero clock.
    pub fn new() -> Self {
        VClock::default()
    }

    /// Component for thread `tid` (0 when never ticked).
    pub fn get(&self, tid: usize) -> u32 {
        self.ticks.get(tid).copied().unwrap_or(0)
    }

    /// Advances this thread's own component by one.
    pub fn inc(&mut self, tid: usize) {
        if self.ticks.len() <= tid {
            self.ticks.resize(tid + 1, 0);
        }
        self.ticks[tid] += 1;
    }

    /// Component-wise maximum: after `a.join(b)`, everything that
    /// happened-before `b` also happens-before `a`.
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (s, &o) in self.ticks.iter_mut().zip(other.ticks.iter()) {
            *s = (*s).max(o);
        }
    }

    /// True when the event epoch `(tid, tick)` happens-before this clock.
    pub fn dominates(&self, tid: usize, tick: u32) -> bool {
        self.get(tid) >= tick
    }

    /// Raises component `tid` to at least `tick` (epoch recording).
    pub fn record(&mut self, tid: usize, tick: u32) {
        if self.ticks.len() <= tid {
            self.ticks.resize(tid + 1, 0);
        }
        self.ticks[tid] = self.ticks[tid].max(tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_takes_component_maximum() {
        let mut a = VClock::new();
        a.inc(0);
        a.inc(0);
        let mut b = VClock::new();
        b.inc(1);
        b.inc(2);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (2, 1, 1));
    }

    #[test]
    fn dominates_tracks_epochs() {
        let mut a = VClock::new();
        a.inc(1);
        assert!(a.dominates(1, 1));
        assert!(!a.dominates(1, 2));
        assert!(a.dominates(5, 0));
    }
}

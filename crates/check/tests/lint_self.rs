//! The lint must pass on this workspace and fail on the seeded fixture,
//! through both the library API and the `lint` binary's exit code.

use std::path::{Path, PathBuf};
use std::process::Command;

use flsa_check::lint::lint_workspace;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/badrepo")
}

#[test]
fn workspace_sources_are_lint_clean() {
    let findings = lint_workspace(&repo_root()).expect("scan the workspace");
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let findings = lint_workspace(&fixture_root()).expect("scan the fixture");
    for rule in [
        "R1-safety-comment",
        "R2-no-panic-hot-kernel",
        "R3-relaxed-justified",
        "R4-forbid-unsafe",
        "R5-no-unwrap-in-library",
        "R6-target-feature",
        "R7-metric-names",
    ] {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "fixture did not trip {rule}; findings: {findings:?}"
        );
    }
    // The AVX-512 seed specifically: an avx512f kernel with no
    // `is_x86_feature_detected!("avx512f")` call site must fail R6.
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "R6-target-feature" && f.message.contains("avx512f")),
        "fixture did not trip R6 on the unguarded avx512f kernel; findings: {findings:?}"
    );
}

#[test]
fn lint_binary_exit_codes_gate_on_findings() {
    let clean = Command::new(env!("CARGO_BIN_EXE_lint"))
        .arg(repo_root())
        .output()
        .expect("run lint on the workspace");
    assert!(
        clean.status.success(),
        "lint on the workspace failed:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    let dirty = Command::new(env!("CARGO_BIN_EXE_lint"))
        .arg(fixture_root())
        .output()
        .expect("run lint on the fixture");
    assert_eq!(
        dirty.status.code(),
        Some(1),
        "lint on the seeded fixture must exit 1:\n{}",
        String::from_utf8_lossy(&dirty.stdout)
    );
}

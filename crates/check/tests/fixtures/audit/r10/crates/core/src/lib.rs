//! R10 fixture: an alignment entry point that validates structure but
//! never reaches the i32-overflow guard (`max_safe_span` /
//! `validate_run`), so a pathological span would wrap cell scores.

pub fn align_opts(m: usize, n: usize) -> Result<usize, String> {
    validate(m, n)?;
    Ok(m + n)
}

fn validate(m: usize, n: usize) -> Result<(), String> {
    if m == 0 || n == 0 {
        return Err("empty problem".to_string());
    }
    Ok(())
}

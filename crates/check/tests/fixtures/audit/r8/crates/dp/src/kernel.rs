//! R8 fixture: a public hot-kernel fn indexes its slices with no
//! release-mode bounds guard (only a debug_assert, which compiles out).

pub fn fill_row(prev: &[i32], cur: &mut [i32], gap: i32) {
    debug_assert!(prev.len() == cur.len());
    for j in 1..cur.len() {
        cur[j] = prev[j - 1].max(cur[j - 1]) + gap;
    }
}

//! R8 fixture: a solver entry point reaches a panic through two hops —
//! the regex lint cannot see this, the call-graph closure must.

pub fn run(input: &[i32]) -> i32 {
    helper(input)
}

fn helper(input: &[i32]) -> i32 {
    deepest(input)
}

fn deepest(input: &[i32]) -> i32 {
    *input.first().unwrap()
}

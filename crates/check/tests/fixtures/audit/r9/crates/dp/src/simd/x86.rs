//! R9 fixture: a `#[target_feature]` fn called with no dominating
//! feature proof — no caller attribute, no `is_x86_feature_detected!`,
//! no force-gate consultation, no guarded constructor.

#[target_feature(enable = "avx2")]
pub unsafe fn row_update_avx2(cur: &mut [i32]) {
    let _ = cur;
}

pub fn dispatch(cur: &mut [i32]) {
    unsafe { row_update_avx2(cur) }
}

// Same shape at 512-bit width: an avx512f kernel invoked from a plain
// safe fn with no dominating detection — the call site the v2 kernel
// layer's dispatcher must never emit.
#[target_feature(enable = "avx512f")]
pub unsafe fn row_update_avx512(cur: &mut [i32]) {
    let _ = cur;
}

pub fn dispatch_avx512(cur: &mut [i32]) {
    unsafe { row_update_avx512(cur) }
}

//! R9 fixture: a `#[target_feature]` fn called with no dominating
//! feature proof — no caller attribute, no `is_x86_feature_detected!`,
//! no force-gate consultation, no guarded constructor.

#[target_feature(enable = "avx2")]
pub unsafe fn row_update_avx2(cur: &mut [i32]) {
    let _ = cur;
}

pub fn dispatch(cur: &mut [i32]) {
    unsafe { row_update_avx2(cur) }
}

// Seeded R2 violation: a panic-family call in a DP hot-kernel file.
pub fn cell(v: Option<i32>) -> i32 {
    v.unwrap()
}

// Seeded R6 violation, AVX-512 edition: an avx512f kernel outside
// crates/dp/src/simd/, on a safe fn, with no runtime feature-detection
// call site for avx512f anywhere in the fixture — the unguarded shape
// the v2 kernel layer must never regress to.
#[target_feature(enable = "avx512f")]
pub fn turbo_sum_avx512(xs: &[i32]) -> i32 {
    xs.iter().sum()
}

// Seeded R6 violation: a #[target_feature] kernel outside
// crates/dp/src/simd/, on a safe fn, with no runtime-detection call
// site anywhere in the fixture.
#[target_feature(enable = "avx2")]
pub fn turbo_sum(xs: &[i32]) -> i32 {
    xs.iter().sum()
}

// Seeded R4 violation: no unsafe anywhere, but no forbid(unsafe_code).
pub fn noop() {}

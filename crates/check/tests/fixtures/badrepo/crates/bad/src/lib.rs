// Seeded violations: R1 (unsafe without a SAFETY comment) and, in
// `load` below, R3 (an unjustified Ordering::Relaxed — note that no
// comment may sit on or directly above that line).
pub fn read(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn load(a: &std::sync::atomic::AtomicU32) -> u32 {
    let x = ();
    a.load(std::sync::atomic::Ordering::Relaxed)
}

// Seeded R5 violation: an unmarked unwrap in a library crate.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

// Seeded R7 violation: an inline metric name at a record site instead
// of a `flsa_metrics::names` constant.
pub fn observe(reg: &flsa_metrics::Registry) {
    reg.counter("flsa_inline_total").inc();
}

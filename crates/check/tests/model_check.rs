//! Model-checking suite for the wavefront pool protocol.
//!
//! Every test replays the *real* `JobCore` code (monomorphized over the
//! virtual sync primitives) under controlled interleavings and asserts
//! the protocol invariants documented in `flsa_wavefront::protocol` —
//! exactly-once, dependency order, quiescence, no deadlock / lost
//! wakeups, happens-before publication, and panic abort.

use std::collections::HashSet;

use flsa_check::explore::{DfsExplorer, SchedPolicy};
use flsa_check::model::{check_schedule, ModelSpec};

/// Exhaustively explores `spec` under `bound` preemptions, checking the
/// invariants on every schedule; returns the distinct-schedule hashes.
fn explore_exhaustive(spec: &ModelSpec, bound: u32, cap: u64) -> HashSet<u64> {
    let mut dfs = DfsExplorer::new(bound);
    let mut distinct = HashSet::new();
    let mut n = 0u64;
    while let Some(policy) = dfs.next_policy() {
        let out = check_schedule(policy, spec)
            .unwrap_or_else(|e| panic!("schedule {n} (bound {bound}): {e}"));
        distinct.insert(out.schedule_hash);
        dfs.advance(out.policy.trace());
        n += 1;
        assert!(n <= cap, "DFS exceeded the expected schedule budget");
    }
    assert!(dfs.exhausted());
    distinct
}

/// Runs `seeds` random schedules of `spec`, checking invariants; returns
/// the distinct hashes.
fn explore_random(
    spec: &ModelSpec,
    seeds: std::ops::Range<u64>,
    spurious_pct: u32,
) -> HashSet<u64> {
    let mut distinct = HashSet::new();
    for seed in seeds {
        let out = check_schedule(SchedPolicy::random(seed, 40, spurious_pct), spec)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        distinct.insert(out.schedule_hash);
    }
    distinct
}

#[test]
fn dense_2x2_two_participants_exhaustive_one_preemption() {
    // Small enough to eyeball: every schedule with at most one voluntary
    // preemption, all invariants hold, every schedule distinct.
    let spec = ModelSpec::dense(2, 2, 2);
    let distinct = explore_exhaustive(&spec, 1, 500);
    assert!(
        distinct.len() >= 40,
        "expected a non-trivial schedule tree, got {}",
        distinct.len()
    );
}

#[test]
fn dense_2x2_two_participants_exhaustive_two_preemptions() {
    let spec = ModelSpec::dense(2, 2, 2);
    let distinct = explore_exhaustive(&spec, 2, 5_000);
    assert!(distinct.len() >= 800, "got {}", distinct.len());
}

#[test]
fn dense_2x2_three_participants_exhaustive() {
    let spec = ModelSpec::dense(2, 2, 3);
    let distinct = explore_exhaustive(&spec, 1, 5_000);
    assert!(distinct.len() >= 500, "got {}", distinct.len());
}

#[test]
fn ten_thousand_distinct_schedules_of_3x3_hold_all_invariants() {
    // The acceptance bar: ≥ 10_000 distinct interleavings of a 3×3 pool
    // job, every one passing every invariant. Bounded-exhaustive DFS
    // (preemption bound 2) supplies systematic coverage near the
    // sequential schedule; seeded random schedules (with spurious condvar
    // wakeups) cover the wilder interleavings.
    let spec = ModelSpec::dense(3, 3, 2);
    let mut distinct = explore_exhaustive(&spec, 2, 10_000);
    let dfs_count = distinct.len();
    assert!(dfs_count >= 3_000, "DFS explored only {dfs_count}");
    let mut seed = 0u64;
    while distinct.len() < 10_000 {
        let out = check_schedule(SchedPolicy::random(seed, 40, 10), &spec)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        distinct.insert(out.schedule_hash);
        seed += 1;
        assert!(
            seed < 40_000,
            "random exploration stalled at {} distinct schedules",
            distinct.len()
        );
    }
    assert!(distinct.len() >= 10_000);
}

#[test]
fn skip_block_grid_holds_invariants_exhaustive_and_random() {
    // The FastLSA Fig. 13 shape: bottom-right block of tiles skipped.
    let spec = ModelSpec::dense(3, 3, 2).with_skip_block(2, 2);
    explore_exhaustive(&spec, 1, 2_000);
    explore_random(&spec, 0..300, 10);
}

#[test]
fn injected_tile_panic_always_poisons_and_never_deadlocks() {
    // Invariant 6 under systematic exploration: whichever participant
    // runs the panicking tile, on whatever schedule, the job poisons,
    // every thread drains, and quiescence is still reached before the
    // modeled closure is dropped.
    for (r, c) in [(0, 0), (0, 1), (1, 1)] {
        let spec = ModelSpec::dense(2, 2, 2).with_panic_at(r, c);
        explore_exhaustive(&spec, 1, 1_000);
        explore_random(&spec, 0..200, 10);
    }
}

#[test]
fn cancellation_at_any_tile_drains_and_never_deadlocks() {
    // Invariant 7 under systematic exploration: whichever participant
    // observes the cancellation, on whatever schedule, the job reports
    // cancelled, the cancelled tile's work is skipped, and every thread
    // still drains to quiescence.
    for (r, c) in [(0, 0), (0, 1), (1, 1)] {
        let spec = ModelSpec::dense(2, 2, 2).with_cancel_at(r, c);
        explore_exhaustive(&spec, 1, 1_000);
        explore_random(&spec, 0..200, 10);
    }
}

#[test]
fn spurious_wakeups_are_harmless() {
    // Crank the spurious-wakeup probability: predicate re-check loops
    // must absorb them without double-runs or lost work.
    let spec = ModelSpec::dense(2, 3, 2);
    explore_random(&spec, 0..400, 40);
}

#[test]
fn single_participant_schedules_degenerate_to_sequential() {
    let spec = ModelSpec::dense(3, 3, 1);
    // With one participant there is exactly one schedule per policy
    // regardless of seed: no preemption choices exist.
    let hashes = explore_random(&spec, 0..20, 0);
    assert_eq!(hashes.len(), 1, "sequential execution must be unique");
}

#[test]
fn replaying_a_dfs_trace_reproduces_the_schedule() {
    // Determinism spot-check on the full model: re-running a DFS prefix
    // yields the identical schedule hash (what makes failures debuggable).
    let spec = ModelSpec::dense(2, 2, 2);
    let mut dfs = DfsExplorer::new(2);
    let mut replayed = 0;
    while let Some(policy) = dfs.next_policy() {
        let prefix: Vec<u32> = match &policy {
            SchedPolicy::Dfs { prefix, .. } => prefix.clone(),
            SchedPolicy::Random { .. } => unreachable!(),
        };
        let out = check_schedule(policy, &spec).expect("schedule holds invariants");
        let again =
            check_schedule(SchedPolicy::dfs(prefix, 2), &spec).expect("replay holds invariants");
        assert_eq!(out.schedule_hash, again.schedule_hash, "replay diverged");
        dfs.advance(out.policy.trace());
        replayed += 1;
        if replayed >= 25 {
            break;
        }
    }
}

// ---- invariant 8: checkpoint capture is a consistent, resumable cut ----

use fastlsa_core::{CheckpointState, FastLsaConfig, FrameState, GridState};
use flsa_check::model::check_checkpoint_schedule;

/// Exhaustively explores `spec` under `bound` preemptions through the
/// checkpoint-capture scenario; returns the distinct captured cuts.
fn explore_checkpoint_exhaustive(spec: &ModelSpec, bound: u32, cap: u64) -> HashSet<Vec<bool>> {
    let mut dfs = DfsExplorer::new(bound);
    let mut cuts = HashSet::new();
    let mut n = 0u64;
    while let Some(policy) = dfs.next_policy() {
        let (out, cut) = check_checkpoint_schedule(policy, spec)
            .unwrap_or_else(|e| panic!("schedule {n} (bound {bound}): {e}"));
        cuts.insert(cut);
        dfs.advance(out.policy.trace());
        n += 1;
        assert!(n <= cap, "DFS exceeded the expected schedule budget");
    }
    assert!(dfs.exhausted());
    cuts
}

/// Maps a captured tile cut onto the `CheckpointState` the solver would
/// persist at that point: a root frame over the DP rectangle the tile
/// grid covers, gridded along the tile boundaries, with the head at the
/// frontier's staircase corner. `check_checkpoint_schedule` has already
/// proven the cut down-closed, which is exactly what makes this frame
/// geometry well-formed.
fn state_from_cut(rows: usize, cols: usize, cut: &[bool]) -> CheckpointState {
    const TILE: usize = 4; // DP cells per tile edge
    let (m, n) = (rows * TILE, cols * TILE);
    let full_rows = (0..rows)
        .take_while(|&r| (0..cols).all(|c| cut[r * cols + c]))
        .count();
    let next_row_done = if full_rows < rows {
        (0..cols).take_while(|&c| cut[full_rows * cols + c]).count()
    } else {
        0
    };
    CheckpointState {
        config: FastLsaConfig::new(rows.max(cols).max(2), 64),
        blocks_done: cut.iter().filter(|&&d| d).count() as u64,
        generation: 0,
        rev_moves: Vec::new(),
        frames: vec![FrameState {
            r0: 0,
            c0: 0,
            rows: m,
            cols: n,
            head: (full_rows * TILE, next_row_done * TILE),
            top: vec![0; n + 1],
            left: vec![0; m + 1],
            grid: Some(GridState {
                row_bounds: (0..=rows).map(|r| r * TILE).collect(),
                col_bounds: (0..=cols).map(|c| c * TILE).collect(),
                rows_cache: vec![vec![0; n + 1]; rows - 1],
                cols_cache: vec![vec![0; m + 1]; cols - 1],
            }),
        }],
    }
}

#[test]
fn checkpoint_cut_exhaustive_cancel_preemption_yields_resumable_snapshots() {
    // Invariant 8, the interesting case: a 2-worker wavefront cancelled
    // mid-flight at tile (1,0). Exhaustively preempting around the
    // capture varies *which* tiles are in the snapshot; every captured
    // cut must be down-closed (checked inside check_checkpoint_schedule)
    // and must decode to a CheckpointState that validates against the
    // problem dimensions — i.e. a resume could rebuild the frontier.
    let spec = ModelSpec::dense(2, 2, 2).with_cancel_at(1, 0);
    let cuts = explore_checkpoint_exhaustive(&spec, 2, 10_000);
    assert!(
        cuts.len() >= 2,
        "preemption should vary the captured cut, got {cuts:?}"
    );
    for cut in &cuts {
        // Tile (1,0) in the 2-wide grid is index 2.
        assert!(!cut[2], "cancelled tile captured as done: {cut:?}");
        let state = state_from_cut(2, 2, cut);
        state
            .validate(2 * 4, 2 * 4)
            .unwrap_or_else(|e| panic!("cut {cut:?} produced an unresumable state: {e}"));
    }
}

#[test]
fn checkpoint_cut_exhaustive_panic_preemption_yields_resumable_snapshots() {
    // Same bar with a poisoned (crashed) run: whatever the interleaving
    // around the panic at (0,1), the post-drain snapshot stays a
    // consistent cut and decodes to a resumable state.
    let spec = ModelSpec::dense(2, 2, 2).with_panic_at(0, 1);
    let cuts = explore_checkpoint_exhaustive(&spec, 1, 2_000);
    for cut in &cuts {
        let state = state_from_cut(2, 2, cut);
        state
            .validate(2 * 4, 2 * 4)
            .unwrap_or_else(|e| panic!("cut {cut:?} produced an unresumable state: {e}"));
    }
}

#[test]
fn checkpoint_cut_clean_runs_capture_the_full_grid() {
    // Without a fault the capture must be the complete grid on every
    // interleaving — a partial "checkpoint" of a finished job would
    // make the resume re-run work.
    let spec = ModelSpec::dense(2, 2, 2);
    let cuts = explore_checkpoint_exhaustive(&spec, 1, 2_000);
    assert_eq!(
        cuts.len(),
        1,
        "clean runs must all capture the same (full) cut"
    );
    assert!(cuts.iter().next().unwrap().iter().all(|&d| d));
    let full = state_from_cut(2, 2, cuts.iter().next().unwrap());
    assert!(full.validate(8, 8).is_ok());
    assert_eq!(full.blocks_done, 4);
}
